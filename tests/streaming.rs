//! Integration tests for streaming ingestion across the full pipeline: a
//! jittered event stream feeds a bounded-memory deployment whose query
//! answers stay close to the batch-built exact system.

use rand::{Rng, SeedableRng};
use stq::core::prelude::*;
use stq::forms::{snapshot_count, CountSource, FormStore};
use stq::learned::RegressorKind;

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 200,
        mix: WorkloadMix { random_waypoint: 25, commuter: 20, transit: 10 },
        seed: 4242,
        ..Default::default()
    })
}

/// The workload's crossings with simulated network delivery jitter.
fn jittered_stream(s: &Scenario, jitter: f64, seed: u64) -> Vec<Crossing> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(f64, Crossing)> = s
        .trajectories
        .iter()
        .flat_map(|t| crossings_of(&s.sensing, t))
        .map(|c| (c.time + rng.gen_range(0.0..jitter), c))
        .collect();
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    arrivals.into_iter().map(|(_, c)| c).collect()
}

#[test]
fn streamed_exact_store_equals_batch_everywhere() {
    let s = scenario();
    let mut tracker = StreamTracker::new(30.0);
    let mut store = FormStore::new(s.sensing.num_edges());
    let mut count = 0usize;
    for ev in jittered_stream(&s, 29.0, 7) {
        for r in tracker.offer(ev).expect("jitter within skew") {
            store.record(r.edge, r.forward, r.time);
            count += 1;
        }
    }
    for r in tracker.finish() {
        store.record(r.edge, r.forward, r.time);
        count += 1;
    }
    assert_eq!(count, s.tracked.num_crossings);

    // Arbitrary region snapshots match the batch store exactly.
    for (q, t0, _) in s.make_queries(10, 0.15, 500.0, 3) {
        let b = s.sensing.boundary_of(&q.junctions, None);
        assert_eq!(snapshot_count(&store, &b, t0), snapshot_count(&s.tracked.store, &b, t0));
    }
}

#[test]
fn streaming_learned_store_answers_queries() {
    let s = scenario();
    let mut tracker = StreamTracker::new(30.0);
    let mut store =
        StreamingLearnedStore::new(s.sensing.num_edges(), RegressorKind::PiecewiseLinear(32), 64);
    for ev in jittered_stream(&s, 29.0, 9) {
        for r in tracker.offer(ev).unwrap() {
            store.record(r);
        }
    }
    for r in tracker.finish() {
        store.record(r);
    }
    assert_eq!(store.total_events(), s.tracked.num_crossings);

    // Bounded memory: per edge-direction at most buffer + model.
    let per_edge = store.storage_bytes() as f64 / s.sensing.num_edges() as f64;
    assert!(per_edge < 2.0 * (64.0 * 8.0 + 600.0), "per-edge {per_edge}");

    // Aggregate accuracy: total absolute deviation from the exact store
    // over a query batch stays a modest fraction of the exact mass.
    let g = SampledGraph::unsampled(&s.sensing);
    let mut num = 0.0;
    let mut den = 0.0;
    for (q, t0, _) in s.make_queries(15, 0.2, 500.0, 5) {
        let kind = QueryKind::Snapshot(t0);
        let exact = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Lower);
        let streamed = answer(&s.sensing, &g, &store, &q, kind, Approximation::Lower);
        num += (exact.value - streamed.value).abs();
        den += exact.value.abs();
    }
    assert!(den > 0.0);
    assert!(num / den < 1.0, "streamed store deviates {num}/{den}");
}

#[test]
fn late_events_are_surfaced_not_silently_dropped() {
    let s = scenario();
    let mut tracker = StreamTracker::new(1.0); // very tight skew
    let mut late = 0usize;
    let mut ok = 0usize;
    for ev in jittered_stream(&s, 50.0, 11) {
        match tracker.offer(ev) {
            Ok(rel) => ok += rel.len(),
            Err(_) => late += 1,
        }
    }
    ok += tracker.finish().len();
    assert_eq!(ok + late, s.tracked.num_crossings);
    assert!(late > 0, "50s jitter against 1s skew must reject something");
}

#[test]
fn streaming_store_usable_through_count_source_trait() {
    let s = scenario();
    let mut store = StreamingLearnedStore::new(s.sensing.num_edges(), RegressorKind::Linear, 16);
    let mut events: Vec<Crossing> =
        s.trajectories.iter().flat_map(|t| crossings_of(&s.sensing, t)).collect();
    events.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
    for ev in events {
        store.record(ev);
    }
    let src: &dyn CountSource = &store;
    let (q, t0, t1) = s.make_queries(1, 0.25, 800.0, 13).remove(0);
    let b = s.sensing.boundary_of(&q.junctions, None);
    for kind in [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1)] {
        let v = stq::core::query::evaluate(src, &b, kind);
        assert!(v.is_finite());
    }
}
