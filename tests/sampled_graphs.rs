//! Structural integration tests on sampled sensing graphs: planarity,
//! face/component duality, connectivity variants, and k-NN vs triangulation.

use std::collections::HashSet;

use stq::core::prelude::*;
use stq::sampling::{sample, SamplingMethod};

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 220,
        mix: WorkloadMix { random_waypoint: 10, commuter: 5, transit: 5 },
        seed: 123,
        ..Default::default()
    })
}

fn pick(s: &Scenario, frac: f64, seed: u64) -> Vec<usize> {
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * frac) as usize).max(3);
    sample(SamplingMethod::Uniform, &cands, m, seed).into_iter().map(|x| x as usize).collect()
}

/// The sampled graph is a subgraph of the sensing graph, so its monitored
/// edge set plus the component structure must satisfy planar duality:
/// components = connected pieces of the road graph cut along monitored
/// edges, and every component boundary is fully monitored.
#[test]
fn sampled_graph_duality_invariants() {
    let s = scenario();
    for conn in [Connectivity::Triangulation, Connectivity::Knn(4)] {
        let g = SampledGraph::from_sensors(&s.sensing, &pick(&s, 0.15, 5), conn);
        let emb = s.sensing.road().embedding();
        // (1) Unmonitored edges never straddle components.
        for (e, &(u, v)) in emb.edges().iter().enumerate() {
            if !g.monitored()[e] {
                assert_eq!(g.component_of(u), g.component_of(v), "edge {e} leaks");
            }
        }
        // (2) Each component's boundary is fully monitored.
        for comp in g.components() {
            let set: HashSet<usize> = comp.iter().copied().collect();
            let b = s.sensing.boundary_of(&set, None);
            for be in b {
                assert!(g.monitored()[be.edge]);
            }
        }
        // (3) Components partition all vertices.
        let total: usize = g.components().iter().map(|c| c.len()).sum();
        assert_eq!(total, emb.num_vertices());
    }
}

/// Euler-formula check on the materialized subgraph: the number of faces of
/// `G̃` computed by union-find on the primal side must match `E − V + 1 + C`
/// on the dual side (Euler for a planar graph with `C` connected components,
/// counting the outer face once).
#[test]
fn subgraph_face_count_matches_euler() {
    let s = scenario();
    let g = SampledGraph::from_sensors(&s.sensing, &pick(&s, 0.2, 9), Connectivity::Triangulation);
    // Build the dual-side subgraph: vertices = faces of G touched by
    // monitored edges, edges = monitored sensing links.
    let mut verts: HashSet<usize> = HashSet::new();
    let mut edge_count = 0usize;
    let mut uf_size = s.sensing.num_faces();
    let mut uf = stq::planar::UnionFind::new(uf_size);
    for (e, &m) in g.monitored().iter().enumerate() {
        if !m {
            continue;
        }
        let (a, b) = s.sensing.dual().edge_faces[e];
        verts.insert(a);
        verts.insert(b);
        if a != b {
            uf.union(a, b);
        }
        edge_count += 1;
    }
    // Components among touched dual vertices.
    let mut roots: HashSet<usize> = HashSet::new();
    for &v in &verts {
        roots.insert(uf.find(v));
    }
    uf_size = roots.len();
    let v = verts.len() as i64;
    let e = edge_count as i64;
    let c = uf_size as i64;
    // Euler: F = E − V + 1 + C (faces including the single outer face).
    let expected_faces = e - v + 1 + c;
    assert_eq!(g.components().len() as i64, expected_faces);
}

/// k-NN with growing k monitors more and converges towards triangulation's
/// coverage (Fig. 14a/b premise).
#[test]
fn knn_granularity_ordering() {
    let s = scenario();
    let sensors = pick(&s, 0.15, 3);
    let tri = SampledGraph::from_sensors(&s.sensing, &sensors, Connectivity::Triangulation);
    let mut prev_edges = 0;
    for k in [2, 4, 8] {
        let g = SampledGraph::from_sensors(&s.sensing, &sensors, Connectivity::Knn(k));
        assert!(g.num_monitored_edges() >= prev_edges, "k={k} shrank coverage");
        prev_edges = g.num_monitored_edges();
    }
    // k-NN at moderate k produces roughly as many (smaller) faces as
    // triangulation — the property that helps small queries (§5.7). Face
    // counts depend on the sampled geometry, so require the k-NN count to
    // reach at least three quarters of the triangulation's rather than an
    // absolute gap.
    let knn5 = SampledGraph::from_sensors(&s.sensing, &sensors, Connectivity::Knn(5));
    assert!(
        knn5.components().len() * 4 >= tri.components().len() * 3,
        "k-NN(5) faces {} vs triangulation {}",
        knn5.components().len(),
        tri.components().len()
    );
}

/// Sampled answers converge to exact as the graph approaches full size.
#[test]
fn convergence_to_unsampled() {
    let s = scenario();
    let queries = s.make_queries(15, 0.15, 1_000.0, 7);
    let cands = s.sensing.sensor_candidates();
    let all: Vec<usize> = cands.iter().map(|&(_, id)| id as usize).collect();
    let g = SampledGraph::from_sensors(&s.sensing, &all, Connectivity::Triangulation);
    let mut total_abs_gap = 0.0;
    for (q, t0, _) in &queries {
        let kind = QueryKind::Snapshot(*t0);
        let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
        let est = answer(&s.sensing, &g, &s.tracked.store, q, kind, Approximation::Lower);
        assert!(est.value <= truth + 1e-9);
        total_abs_gap += truth - est.value;
    }
    // With every sensor selected the graph is near-complete; tiny gaps may
    // remain where shortest paths skip an edge, but on average the answers
    // must be very close.
    assert!(
        total_abs_gap / queries.len() as f64 <= 2.0,
        "mean gap {} too large",
        total_abs_gap / queries.len() as f64
    );
}

/// Deterministic construction under fixed seeds.
#[test]
fn sampled_graph_deterministic() {
    let s = scenario();
    let a = SampledGraph::from_sensors(&s.sensing, &pick(&s, 0.1, 77), Connectivity::Knn(3));
    let b = SampledGraph::from_sensors(&s.sensing, &pick(&s, 0.1, 77), Connectivity::Knn(3));
    assert_eq!(a.monitored(), b.monitored());
    assert_eq!(a.components().len(), b.components().len());
}

/// Submodular graphs with increasing budget refine monotonically in utility:
/// a larger budget never covers fewer historical junctions.
#[test]
fn submodular_budget_monotone_coverage() {
    let s = scenario();
    let historical = s.historical_regions(25, 0.1, 55);
    let hist_junctions: HashSet<usize> =
        historical.iter().flat_map(|h| h.iter().copied()).collect();
    let mut prev_cov = 0usize;
    for budget in [30.0, 120.0, 500.0] {
        let g = SampledGraph::from_submodular(&s.sensing, &historical, budget);
        // Covered = historical junctions inside components fully contained
        // in the historical union.
        let cov = hist_junctions
            .iter()
            .filter(|&&j| {
                g.components()[g.component_of(j)].iter().all(|v| hist_junctions.contains(v))
            })
            .count();
        assert!(cov >= prev_cov, "budget {budget} reduced coverage {prev_cov} → {cov}");
        prev_cov = cov;
    }
    assert!(prev_cov > 0);
}
