//! Accuracy-trend integration tests: the qualitative shapes of the paper's
//! evaluation (§5.2–§5.6) must hold on small instances.

use stq::core::prelude::*;
use stq::sampling::{sample, SamplingMethod};

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 300,
        mix: WorkloadMix { random_waypoint: 40, commuter: 30, transit: 15 },
        seed,
        ..Default::default()
    })
}

fn mean_lower_error(s: &Scenario, g: &SampledGraph, queries: &[(QueryRegion, f64, f64)]) -> f64 {
    let mut errs = Vec::new();
    for (q, t0, _) in queries {
        let kind = QueryKind::Snapshot(*t0);
        let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
        let est = answer(&s.sensing, g, &s.tracked.store, q, kind, Approximation::Lower);
        if let Some(e) = relative_error(truth, est.value) {
            errs.push(e);
        }
    }
    assert!(!errs.is_empty(), "need queries with non-zero ground truth");
    errs.iter().sum::<f64>() / errs.len() as f64
}

fn sampled(s: &Scenario, frac: f64, method: SamplingMethod, seed: u64) -> SampledGraph {
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * frac) as usize).max(3);
    let ids = sample(method, &cands, m, seed);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation)
}

/// Fig. 11a/12a shape: error decreases as the sampled graph grows.
#[test]
fn error_decreases_with_graph_size() {
    let s = scenario(1);
    let queries = s.make_queries(40, 0.1, 1_500.0, 5);
    let small = mean_lower_error(&s, &sampled(&s, 0.05, SamplingMethod::QuadTree, 3), &queries);
    let large = mean_lower_error(&s, &sampled(&s, 0.5, SamplingMethod::QuadTree, 3), &queries);
    assert!(
        large < small,
        "error must shrink with more sensors: 5% → {small:.3}, 50% → {large:.3}"
    );
    // The unsampled graph is exact.
    let exact = mean_lower_error(&s, &SampledGraph::unsampled(&s.sensing), &queries);
    assert!(exact < 1e-12);
}

/// Fig. 11b/12b shape: error decreases as the query region grows.
#[test]
fn error_decreases_with_query_size() {
    let s = scenario(2);
    let g = sampled(&s, 0.12, SamplingMethod::KdTree, 7);
    let small_q = s.make_queries(40, 0.03, 1_500.0, 9);
    let large_q = s.make_queries(40, 0.3, 1_500.0, 9);
    let e_small = mean_lower_error(&s, &g, &small_q);
    let e_large = mean_lower_error(&s, &g, &large_q);
    assert!(e_large < e_small, "bigger queries are easier: 3% → {e_small:.3}, 30% → {e_large:.3}");
}

/// Fig. 13 shape: lower ≤ truth ≤ upper, and upper error also shrinks with
/// size.
#[test]
fn bounds_bracket_truth() {
    let s = scenario(3);
    let g = sampled(&s, 0.2, SamplingMethod::QuadTree, 5);
    let mut checked = 0;
    for (q, t0, _) in s.make_queries(30, 0.12, 1_000.0, 17) {
        let kind = QueryKind::Snapshot(t0);
        let truth = ground_truth(&s.sensing, &s.tracked.store, &q, kind);
        let lo = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Lower);
        let hi = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Upper);
        if !lo.miss {
            assert!(lo.value <= truth + 1e-9, "lower bound violated");
        }
        if !hi.miss {
            assert!(hi.value + 1e-9 >= truth, "upper bound violated: {} < {truth}", hi.value);
            checked += 1;
        }
    }
    assert!(checked > 0);
}

/// Fig. 13a,b shape: query misses vanish as graph or query size grows.
#[test]
fn misses_shrink_with_size() {
    let s = scenario(4);
    let queries = s.make_queries(40, 0.05, 1_000.0, 23);
    let miss_rate = |g: &SampledGraph, qs: &[(QueryRegion, f64, f64)]| {
        qs.iter()
            .filter(|(q, t0, _)| {
                answer(
                    &s.sensing,
                    g,
                    &s.tracked.store,
                    q,
                    QueryKind::Snapshot(*t0),
                    Approximation::Lower,
                )
                .miss
            })
            .count() as f64
            / qs.len() as f64
    };
    let sparse = sampled(&s, 0.03, SamplingMethod::Uniform, 3);
    let dense = sampled(&s, 0.4, SamplingMethod::Uniform, 3);
    assert!(miss_rate(&dense, &queries) <= miss_rate(&sparse, &queries));
    // Larger queries miss less on the same sparse graph.
    let big_queries = s.make_queries(40, 0.35, 1_000.0, 23);
    assert!(miss_rate(&sparse, &big_queries) <= miss_rate(&sparse, &queries));
}

/// §5.2: the query-adaptive submodular method beats oblivious uniform
/// sampling at equal monitored-edge budget on in-distribution queries.
#[test]
fn submodular_beats_uniform_on_known_distribution() {
    let s = scenario(5);
    let historical = s.historical_regions(60, 0.1, 41);
    let uniform = sampled(&s, 0.1, SamplingMethod::Uniform, 13);
    let budget = uniform.num_monitored_edges() as f64;
    let adaptive = SampledGraph::from_submodular(&s.sensing, &historical, budget);
    // Evaluate on fresh queries from the same spatial distribution.
    let queries = s.make_queries(40, 0.1, 1_000.0, 41);
    let e_uniform = mean_lower_error(&s, &uniform, &queries);
    let e_adaptive = mean_lower_error(&s, &adaptive, &queries);
    assert!(
        e_adaptive <= e_uniform + 0.05,
        "adaptive {e_adaptive:.3} should not lose to uniform {e_uniform:.3}"
    );
}

/// §5.4: perimeter-based sampled queries touch far fewer sensors than
/// flooding the region, and the gap widens with query area.
#[test]
fn communication_savings_grow_with_area() {
    let s = scenario(6);
    let g = sampled(&s, 0.1, SamplingMethod::QuadTree, 19);
    let mut ratios = Vec::new();
    for frac in [0.05, 0.35] {
        let queries = s.make_queries(20, frac, 1_000.0, 29);
        let mut perimeter = 0usize;
        let mut flood = 0usize;
        for (q, t0, _) in &queries {
            let out = answer(
                &s.sensing,
                &g,
                &s.tracked.store,
                q,
                QueryKind::Snapshot(*t0),
                Approximation::Lower,
            );
            perimeter += out.nodes_accessed;
            flood += s.sensing.sensors_in_rect(&q.rect).len();
        }
        ratios.push(perimeter as f64 / flood.max(1) as f64);
    }
    assert!(ratios[1] < ratios[0], "savings must grow with area: {ratios:?}");
    assert!(ratios[1] < 1.0);
}
