//! End-to-end pipeline integration: city generation → workload → tracking →
//! sampling → query answering, across every workspace crate.

use std::collections::HashSet;

use stq::core::prelude::*;
use stq::sampling::{sample, SamplingMethod};

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 250,
        mix: WorkloadMix { random_waypoint: 25, commuter: 20, transit: 10 },
        seed: 99,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_produces_consistent_answers() {
    let s = scenario();
    let sensing = &s.sensing;

    // Every sampling method builds a working sampled graph end to end.
    let cands = sensing.sensor_candidates();
    let m = cands.len() / 5;
    let queries = s.make_queries(10, 0.08, 2_000.0, 5);
    for method in SamplingMethod::ALL {
        let ids = sample(method, &cands, m, 11);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(sensing, &faces, Connectivity::Triangulation);
        assert!(g.num_monitored_edges() > 0, "{method:?}");
        for (q, t0, t1) in &queries {
            let out = answer(
                sensing,
                &g,
                &s.tracked.store,
                q,
                QueryKind::Transient(*t0, *t1),
                Approximation::Lower,
            );
            assert!(out.value.is_finite());
            if !out.miss {
                assert!(out.nodes_accessed > 0);
                assert!(out.edges_accessed > 0);
            }
        }
    }
}

#[test]
fn unsampled_graph_is_exact_for_all_query_kinds() {
    let s = scenario();
    let sensing = &s.sensing;
    let g = SampledGraph::unsampled(sensing);
    for (q, t0, t1) in s.make_queries(15, 0.1, 1_500.0, 13) {
        let inside = |j: usize| q.junctions.contains(&j);
        let snap = answer(
            sensing,
            &g,
            &s.tracked.store,
            &q,
            QueryKind::Snapshot(t0),
            Approximation::Lower,
        );
        assert_eq!(snap.value, s.tracked.oracle.snapshot_count(&inside, t0) as f64);

        let tr = answer(
            sensing,
            &g,
            &s.tracked.store,
            &q,
            QueryKind::Transient(t0, t1),
            Approximation::Lower,
        );
        assert_eq!(tr.value, s.tracked.oracle.transient_count(&inside, t0, t1) as f64);

        let st = answer(
            sensing,
            &g,
            &s.tracked.store,
            &q,
            QueryKind::Static(t0, t1),
            Approximation::Lower,
        );
        let exact_static = s.tracked.oracle.static_interval_count(&inside, t0, t1) as f64;
        assert!(st.value + 1e-9 >= exact_static, "static estimator upper-bounds the oracle");
    }
}

#[test]
fn submodular_pipeline_end_to_end() {
    let s = scenario();
    let sensing = &s.sensing;
    let historical = s.historical_regions(30, 0.08, 21);
    let g = SampledGraph::from_submodular(sensing, &historical, 300.0);
    assert!(g.num_monitored_edges() > 0);
    assert!(g.num_monitored_edges() <= 300);

    // Queries drawn from the same distribution as the historical regions
    // should mostly resolve (low miss rate).
    let queries = s.make_queries(30, 0.08, 1_000.0, 21); // same seed → same regions
    let misses = queries
        .iter()
        .filter(|(q, t0, _)| {
            answer(sensing, &g, &s.tracked.store, q, QueryKind::Snapshot(*t0), Approximation::Lower)
                .miss
        })
        .count();
    assert!(
        misses <= queries.len() / 2,
        "submodular graph missed {misses}/30 in-distribution queries"
    );
}

#[test]
fn network_simulator_agrees_with_query_engine() {
    // The perimeter sensors the query engine reports can actually be
    // contacted in the communication topology within reasonable cost.
    let s = scenario();
    let sensing = &s.sensing;
    let cands = sensing.sensor_candidates();
    let ids = sample(SamplingMethod::QuadTree, &cands, cands.len() / 4, 3);
    let faces: Vec<usize> = ids.iter().map(|&x| x as usize).collect();
    let g = SampledGraph::from_sensors(sensing, &faces, Connectivity::Triangulation);

    // Communication topology: one node per sensing face, links = monitored
    // sensing edges between faces.
    let links: Vec<(usize, usize)> = g
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(e, _)| sensing.dual().edge_faces[e])
        .filter(|&(a, b)| a != b)
        .collect();
    let net = stq::net::Network::new(sensing.num_faces(), &links);

    let (q, t0, _) = s.make_queries(1, 0.2, 1_000.0, 31).remove(0);
    let covered = g.resolve_lower(&q.junctions);
    if covered.is_empty() {
        return;
    }
    let boundary = sensing.boundary_of(&covered, Some(g.monitored()));
    let perimeter = sensing.boundary_sensors(&boundary);
    assert!(!perimeter.is_empty());

    let walk = net.perimeter_traversal(perimeter[0], &perimeter);
    assert!(walk.nodes_contacted >= perimeter.len() / 2, "perimeter should be mostly reachable");
    let _ =
        answer(sensing, &g, &s.tracked.store, &q, QueryKind::Snapshot(t0), Approximation::Lower);
    // Energy accounting is finite and positive.
    let e = stq::net::EnergyModel::default().energy(&walk);
    assert!(e >= 0.0 && e.is_finite());
}

#[test]
fn map_matched_gps_reproduces_counts() {
    // Render trajectories to noisy GPS, map-match them back (§5.1.3), and
    // check the query counts stay close to the ground-truth workload's.
    // Enough objects that the central-region population is a real statistic
    // rather than a handful of objects (tiny counts make the relative-slack
    // check degenerate to its absolute floor).
    let s = Scenario::build(ScenarioConfig {
        junctions: 150,
        mix: WorkloadMix { random_waypoint: 24, commuter: 12, transit: 0 },
        seed: 7,
        ..Default::default()
    });
    let sensing = &s.sensing;
    let mut rematched = Vec::new();
    for traj in &s.trajectories {
        let fixes = stq::mobility::matching::to_gps(sensing.road(), traj, 2.0, 0.2, traj.id);
        if fixes.is_empty() {
            continue;
        }
        let m = stq::mobility::matching::map_match(sensing.road(), &fixes, traj.id);
        assert!(m.validate(sensing.road()));
        rematched.push(m);
    }
    assert!(!rematched.is_empty());
    // Both workloads yield populations of the same magnitude in a large
    // central region (map matching loses entry walks, so allow slack).
    let tracked2 = ingest(sensing, &rematched);
    let (q, t0, _) = s.make_queries(1, 0.5, 1_000.0, 3).remove(0);
    let orig: f64 = {
        let region: HashSet<usize> = q.junctions.iter().copied().collect();
        s.tracked.oracle.snapshot_count(&|j| region.contains(&j), t0) as f64
    };
    let b = sensing.boundary_of(&q.junctions, None);
    let matched = stq::forms::snapshot_count(&tracked2.store, &b, t0);
    assert!(
        (orig - matched).abs() <= (orig * 0.5).max(4.0),
        "matched {matched} vs original {orig}"
    );
}
