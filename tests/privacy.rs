//! Integration tests for the differential-privacy extension across the full
//! pipeline: private releases compose with sampled graphs and learned
//! stores, and the accuracy predictor tracks reality.

use stq::core::prelude::*;
use stq::forms::{CountSource, PrivateCounts};
use stq::learned::RegressorKind;
use stq::sampling::{sample, SamplingMethod};

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 220,
        mix: WorkloadMix { random_waypoint: 30, commuter: 20, transit: 10 },
        seed: 808,
        ..Default::default()
    })
}

fn sampled(s: &Scenario) -> SampledGraph {
    let cands = s.sensing.sensor_candidates();
    let ids = sample(SamplingMethod::QuadTree, &cands, cands.len() / 4, 5);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation)
}

#[test]
fn private_answers_track_exact_within_predicted_noise() {
    let s = scenario();
    let g = sampled(&s);
    let private = PrivateCounts::new(s.tracked.store.clone(), 2.0, 1.0, 500.0, 77);
    let mut checked = 0;
    for (q, t0, _) in s.make_queries(20, 0.1, 1_000.0, 3) {
        let kind = QueryKind::Snapshot(t0);
        let exact = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Lower);
        if exact.miss {
            continue;
        }
        let noisy = answer(&s.sensing, &g, &private, &q, kind, Approximation::Lower);
        let sd = private.expected_query_sd(exact.edges_accessed);
        // 8-sigma bound over 20 queries: effectively never flaky.
        assert!(
            (noisy.value - exact.value).abs() <= 8.0 * sd + 1e-9,
            "noise {} exceeds 8sd={}",
            (noisy.value - exact.value).abs(),
            8.0 * sd
        );
        checked += 1;
    }
    assert!(checked > 5, "need enough answered queries");
}

#[test]
fn privacy_composes_with_learned_store() {
    // The paper's two approximations stack: model inference + Laplace noise.
    let s = scenario();
    let g = sampled(&s);
    let learned = LearnedStore::fit(
        &s.tracked.store,
        Some(g.monitored()),
        RegressorKind::PiecewiseLinear(32),
    );
    let private = PrivateCounts::new(learned, 1.0, 1.0, 500.0, 13);
    let (q, t0, t1) = s.make_queries(1, 0.2, 1_000.0, 9).remove(0);
    for kind in [QueryKind::Snapshot(t0), QueryKind::Static(t0, t1), QueryKind::Transient(t0, t1)] {
        let out = answer(&s.sensing, &g, &private, &q, kind, Approximation::Lower);
        assert!(out.value.is_finite());
    }
    // Storage accounting passes through to the wrapped store.
    assert!(private.storage_bytes() > 0);
    assert_eq!(private.storage_bytes(), private.inner().storage_bytes());
}

#[test]
fn repeated_queries_see_identical_noise() {
    // No averaging attack: the same release returns the same value.
    let s = scenario();
    let g = sampled(&s);
    let private = PrivateCounts::new(s.tracked.store.clone(), 0.5, 1.0, 500.0, 21);
    let (q, t0, _) = s.make_queries(1, 0.15, 1_000.0, 11).remove(0);
    let kind = QueryKind::Snapshot(t0);
    let a = answer(&s.sensing, &g, &private, &q, kind, Approximation::Lower);
    let b = answer(&s.sensing, &g, &private, &q, kind, Approximation::Lower);
    // The noise draws are identical; only float summation order over the
    // boundary may differ between calls.
    assert!((a.value - b.value).abs() < 1e-9, "{} vs {}", a.value, b.value);
}

#[test]
fn tighter_epsilon_means_noisier_answers() {
    let s = scenario();
    let g = sampled(&s);
    let queries = s.make_queries(15, 0.12, 1_000.0, 17);
    let err_at = |eps: f64| -> f64 {
        let private = PrivateCounts::new(s.tracked.store.clone(), eps, 1.0, 500.0, 31);
        let mut total = 0.0;
        for (q, t0, _) in &queries {
            let kind = QueryKind::Snapshot(*t0);
            let exact = answer(&s.sensing, &g, &s.tracked.store, q, kind, Approximation::Lower);
            if exact.miss {
                continue;
            }
            let noisy = answer(&s.sensing, &g, &private, q, kind, Approximation::Lower);
            total += (noisy.value - exact.value).abs();
        }
        total
    };
    let loose = err_at(20.0);
    let tight = err_at(0.2);
    assert!(tight > loose * 3.0, "tight {tight} vs loose {loose}");
}
