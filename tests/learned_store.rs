//! Integration tests for the learned edge stores: model-backed query
//! answers vs exact logs across the full pipeline (paper §4.8, Fig. 14c,d
//! and Fig. 11e).

use stq::core::prelude::*;
use stq::forms::CountSource;
use stq::learned::RegressorKind;
use stq::sampling::{sample, SamplingMethod};

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 250,
        mix: WorkloadMix { random_waypoint: 30, commuter: 25, transit: 10 },
        seed: 555,
        ..Default::default()
    })
}

fn sampled(s: &Scenario) -> SampledGraph {
    let cands = s.sensing.sensor_candidates();
    let ids = sample(SamplingMethod::QuadTree, &cands, cands.len() / 5, 5);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation)
}

/// Fig. 14c,d: the model-induced extra error (vs explicit storage on the
/// same sampled graph) stays small for every standard regressor.
#[test]
fn model_error_overhead_is_small() {
    let s = scenario();
    let g = sampled(&s);
    let queries = s.make_queries(25, 0.12, 1_500.0, 3);
    for kind in RegressorKind::standard_set() {
        let learned = LearnedStore::fit(&s.tracked.store, Some(g.monitored()), kind);
        let mut abs = Vec::new();
        let mut edges = Vec::new();
        for (q, t0, t1) in &queries {
            for qk in [QueryKind::Snapshot(*t0), QueryKind::Transient(*t0, *t1)] {
                let exact = answer(&s.sensing, &g, &s.tracked.store, q, qk, Approximation::Lower);
                let model = answer(&s.sensing, &g, &learned, q, qk, Approximation::Lower);
                if exact.miss {
                    continue;
                }
                // Error relative to the explicit-storage answer, NOT the
                // unsampled truth — isolating the model's contribution.
                abs.push((exact.value - model.value).abs());
                edges.push(exact.edges_accessed as f64);
            }
        }
        assert!(!abs.is_empty());
        // The model error accumulates along the boundary: it must stay a
        // small fraction of an event *per boundary edge* (the paper's query
        // counts are large, making this a small relative penalty; this tiny
        // workload has single-digit counts, so absolute error is the stable
        // metric).
        let mean_abs = abs.iter().sum::<f64>() / abs.len() as f64;
        let mean_edges = edges.iter().sum::<f64>() / edges.len() as f64;
        let per_edge = mean_abs / mean_edges.max(1.0);
        assert!(
            per_edge < 0.35,
            "{kind:?}: {mean_abs:.2} mean abs error over {mean_edges:.0} boundary edges \
             ({per_edge:.3} per edge) — too much"
        );
    }
}

/// Fig. 11e: constant-size models slash storage relative to explicit logs,
/// and the footprint is independent of the event count.
#[test]
fn storage_reduction_and_constancy() {
    let s = scenario();
    let g = sampled(&s);
    let exact_bytes: usize = g
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(e, _)| s.tracked.store.form(e).storage_bytes())
        .sum();
    let learned = LearnedStore::fit(&s.tracked.store, Some(g.monitored()), RegressorKind::Linear);
    assert!(
        learned.storage_bytes() * 2 < exact_bytes,
        "models {} vs logs {exact_bytes}",
        learned.storage_bytes()
    );
    // Per-edge model cost is bounded by a constant (linear: ~56 bytes + 8
    // overhead per direction pair).
    let per_edge = learned.storage_bytes() as f64 / learned.num_modelled() as f64;
    assert!(per_edge < 200.0);

    // A workload with 4x the objects: the exact logs grow with the event
    // count, while the learned store stays bounded by a constant per edge
    // (it can grow only where previously-silent edges gained a model).
    let s_big = Scenario::build(ScenarioConfig {
        junctions: 250,
        mix: WorkloadMix { random_waypoint: 120, commuter: 100, transit: 40 },
        seed: 555,
        ..Default::default()
    });
    let exact_big: usize = g
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(e, _)| s_big.tracked.store.form(e).storage_bytes())
        .sum();
    let learned_big =
        LearnedStore::fit(&s_big.tracked.store, Some(g.monitored()), RegressorKind::Linear);
    let per_edge_big = learned_big.storage_bytes() as f64 / learned_big.num_modelled() as f64;
    assert!(per_edge_big < 200.0, "per-edge model cost must stay constant");
    assert!(exact_big > exact_bytes, "bigger workload grows the exact logs");
    let ratio_small = exact_bytes as f64 / learned.storage_bytes() as f64;
    let ratio_big = exact_big as f64 / learned_big.storage_bytes() as f64;
    assert!(
        ratio_big > ratio_small,
        "the learned store's advantage must widen with data: {ratio_small:.1}x → {ratio_big:.1}x"
    );
}

/// Learned counts respect physical bounds after boundary integration: never
/// wildly negative, never above the total event count.
#[test]
fn learned_counts_physically_plausible() {
    let s = scenario();
    let g = SampledGraph::unsampled(&s.sensing);
    let learned = LearnedStore::fit(&s.tracked.store, None, RegressorKind::PiecewiseLinear(8));
    let n_objects = s.trajectories.len() as f64;
    for (q, t0, _) in s.make_queries(15, 0.2, 500.0, 9) {
        let out =
            answer(&s.sensing, &g, &learned, &q, QueryKind::Snapshot(t0), Approximation::Lower);
        assert!(
            out.value > -n_objects && out.value < 2.0 * n_objects,
            "implausible learned count {}",
            out.value
        );
    }
}

/// The streaming buffer variant keeps bounded storage while staying close to
/// the exact counts on a real edge's event stream.
#[test]
fn buffered_series_on_real_edge_stream() {
    use stq::learned::BufferedSeries;
    let s = scenario();
    // The busiest edge of the workload.
    let busiest =
        (0..s.sensing.num_edges()).max_by_key(|&e| s.tracked.store.form(e).total(true)).unwrap();
    let ts = s.tracked.store.form(busiest).timestamps(true);
    assert!(ts.len() > 20, "need a busy edge for this test");
    let mut series = BufferedSeries::new(RegressorKind::PiecewiseLinear(16), 24);
    for &t in ts {
        series.push(t);
    }
    assert_eq!(series.total(), ts.len());
    assert!(series.size_bytes() < 24 * 8 + 600);
    // Mid-stream estimate within 25% of truth.
    let mid = ts[ts.len() / 2];
    let truth = (ts.len() / 2 + 1) as f64;
    let est = series.count_until(mid);
    assert!((est - truth).abs() <= truth * 0.25 + 4.0, "buffered estimate {est} vs truth {truth}");
}

/// Learned stores slot into every query kind through the common
/// `CountSource` trait (one code path for exact and learned — §4.8's goal).
#[test]
fn trait_object_compatibility() {
    let s = scenario();
    let g = sampled(&s);
    let learned = LearnedStore::fit(&s.tracked.store, Some(g.monitored()), RegressorKind::Step(16));
    let sources: Vec<&dyn CountSource> = vec![&s.tracked.store, &learned];
    let (q, t0, t1) = s.make_queries(1, 0.15, 1_000.0, 11).remove(0);
    for src in sources {
        for kind in
            [QueryKind::Snapshot(t0), QueryKind::Static(t0, t1), QueryKind::Transient(t0, t1)]
        {
            let covered = g.resolve_lower(&q.junctions);
            if covered.is_empty() {
                continue;
            }
            let b = s.sensing.boundary_of(&covered, Some(g.monitored()));
            let v = stq::core::query::evaluate(src, &b, kind);
            assert!(v.is_finite());
        }
    }
}
