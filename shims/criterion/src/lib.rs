//! Offline stand-in for the subset of [`criterion` 0.5](https://docs.rs/criterion)
//! this workspace uses: `criterion_group!` / `criterion_main!`, benchmark
//! groups with `sample_size`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, and `black_box`.
//!
//! Measurement is deliberately simple — per sample, one warm-up batch then a
//! timed batch sized to ~5 ms, reporting min/median/max of the per-iteration
//! time — with none of upstream's outlier analysis or HTML reports. Good
//! enough to compare orders of magnitude and track regressions by eye.

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter (upstream's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, filled by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and size the batch so one sample spans ~5 ms.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(25));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.times.push(start.elapsed() / batch);
        }
    }
}

fn report(label: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{label:<40} time: [{:>12?} {:>12?} {:>12?}]",
        times[0],
        median,
        times[times.len() - 1]
    );
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &mut b.times);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &mut b.times);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored in this shim).
    pub fn configure_from_args(mut self) -> Self {
        if self.sample_size == 0 {
            self.sample_size = 20;
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 { 20 } else { self.sample_size };
        BenchmarkGroup { name: name.into(), sample_size, parent: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.sample_size == 0 { 20 } else { self.sample_size };
        let mut b = Bencher { samples, times: Vec::new() };
        f(&mut b);
        report(&id.name, &mut b.times);
        self
    }
}

/// Declares a group of benchmark functions as one runnable unit.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (for `harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("spin");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("top_level", |b| b.iter(|| black_box(21) * 2));
    }
}
