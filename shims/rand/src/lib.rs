//! Offline stand-in for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no registry access (see CONTRIBUTING.md), so
//! the workspace's `rand` dependency points here. The generator is
//! SplitMix64-seeded xoshiro256++ — not the real `StdRng` (ChaCha12), so
//! streams differ from upstream `rand`, but every use in this workspace only
//! requires a deterministic, well-mixed seeded source.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface: only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
///
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] `T`, mirroring upstream `rand` — the single blanket
/// impl (rather than one impl per concrete range type) is what lets type
/// inference unify the literal `0.0..1.0` with the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Types with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                ((lo as i128) + draw) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                let draw = (rng.next_u64() as u128 % span) as i128;
                ((lo as i128) + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 state expansion (not upstream's ChaCha12 — streams differ
    /// from the real `rand`, determinism and mixing quality do not).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize =
            (0..64).filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40)).count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
            let z = rng.gen_range(3u32..=3);
            assert_eq!(z, 3);
            let w = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn float_distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo_half = 0usize;
        for _ in 0..1000 {
            if rng.gen_range(0.0f64..1.0) < 0.5 {
                lo_half += 1;
            }
        }
        assert!((350..650).contains(&lo_half));
    }
}
