//! The shim's deterministic test RNG.

/// SplitMix64 generator seeded from the test name (plus an optional
/// `PROPTEST_SEED` environment override), so every run of a given test
/// explores the same case sequence and failures reproduce.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash), mixed with `PROPTEST_SEED` if
    /// that environment variable holds an integer.
    pub fn from_test_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Seeds directly from a state word (reproducing a reported failure).
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The current state word (printed on failure for reproduction).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_test_name("x");
        let mut b = TestRng::from_test_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_test_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::from_test_name("unit");
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
