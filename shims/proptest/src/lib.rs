//! Offline stand-in for the subset of [`proptest` 1.x](https://docs.rs/proptest)
//! this workspace uses.
//!
//! Provided: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`], [`option::of`], and the `prop_assert*` macros.
//!
//! Not provided: shrinking. A failing case panics with the generating seed
//! and case number so it can be reproduced (the per-test RNG is seeded from
//! the test name, so runs are deterministic), but the input is not
//! minimized. This trades debugging convenience for a zero-dependency build
//! in the offline environment (see CONTRIBUTING.md).

pub mod test_runner;

use test_runner::TestRng;

/// How many random draws a filtering strategy may make before giving up.
const MAX_FILTER_TRIES: usize = 4096;

/// Per-proptest-block configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier scenario-building
        // suites affordable while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (shrinking-free).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy it
    /// maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, reason: reason.into() }
    }

    /// Maps values through `f`, discarding `None`s (bounded retries).
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason: reason.into() }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted {MAX_FILTER_TRIES} tries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted {MAX_FILTER_TRIES} tries: {}", self.reason);
    }
}

/// The strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                ((self.start as i128) + draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 % span) as i128;
                ((lo as i128) + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical unconstrained strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy adapter for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Admissible length specification for [`vec()`]: an exact length, a
    /// half-open range, or an inclusive range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: Some with probability 3/4.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// A rejected or failed test case (only constructed by user code in this
/// shim; `prop_assert*` panics instead of returning it).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test.
///
/// Unlike upstream (which records the failure and shrinks), this shim
/// panics immediately; the enclosing [`proptest!`] harness reports the case
/// number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a normal `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_test_name(stringify!($name));
                for __case in 0..cfg.cases {
                    let __case_seed = rng.state();
                    // The closure returns Result so bodies may `return Ok(())`
                    // early, like upstream proptest's test runner.
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        Ok(())
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    let payload: Box<dyn std::any::Any + Send> = match outcome {
                        Ok(Ok(())) => continue,
                        Ok(Err(e)) => Box::new(format!("test case error: {e}")),
                        Err(p) => p,
                    };
                    {
                        eprintln!(
                            "proptest case {}/{} failed (test {}, rng state {:#x})",
                            __case + 1,
                            cfg.cases,
                            stringify!($name),
                            __case_seed,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::test_runner::TestRng::from_test_name("compose");
        let strat = (0usize..10, 0.0f64..1.0)
            .prop_map(|(n, x)| (n * 2, x))
            .prop_filter("even", |(n, _)| n % 2 == 0);
        for _ in 0..100 {
            let (n, x) = strat.generate(&mut rng);
            assert!(n < 20 && n % 2 == 0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_runner::TestRng::from_test_name("vec_len");
        let strat = crate::collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_rng() {
        let mut rng = crate::test_runner::TestRng::from_test_name("flat");
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n..=n));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            let n = v.len();
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(a in 0usize..50, (lo, hi) in (0.0f64..1.0, 2.0f64..3.0)) {
            prop_assert!(a < 50);
            prop_assert!(lo < hi, "{lo} vs {hi}");
            prop_assert_eq!(a, a);
        }

        #[test]
        fn option_of_mixes(x in crate::option::of(1u32..10)) {
            if let Some(v) = x {
                prop_assert!((1..10).contains(&v));
            }
        }

        #[test]
        fn just_and_any(flag in any::<bool>(), k in Just(7usize)) {
            prop_assert_eq!(k, 7);
            prop_assert!(usize::from(flag) <= 1);
        }
    }
}
