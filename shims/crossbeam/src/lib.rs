//! Offline stand-in for the subset of
//! [`crossbeam` 0.8](https://docs.rs/crossbeam/0.8) this workspace uses:
//! [`scope`]d threads and MPMC [`channel`]s (bounded and unbounded, with
//! timeouts and disconnection semantics).
//!
//! `scope` delegates to `std::thread::scope`; the channels are a
//! Mutex + Condvar ring implementing the crossbeam semantics the runtime
//! relies on — cloneable senders *and* receivers, `recv_timeout`, and
//! "channel disconnects when the other side is fully dropped".

pub mod channel;

/// Scoped-thread environment handed to the [`scope`] closure.
///
/// A thin wrapper over [`std::thread::Scope`], kept `Copy` so spawned
/// closures can themselves spawn (crossbeam passes the scope to each child).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl Clone for Scope<'_, '_> {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for Scope<'_, '_> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The child receives the scope, so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let child = *self;
        self.inner.spawn(move || f(&child))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before `scope` returns. Returns `Err` if any
/// spawned thread panicked (matching `crossbeam::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, mirroring the real crate layout.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1, 2, 3];
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let sum: usize = data.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 24);
    }

    #[test]
    fn nested_spawn() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn panics_reported_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }
}
