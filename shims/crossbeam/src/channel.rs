//! MPMC channels with crossbeam semantics: cloneable senders and receivers,
//! bounded backpressure, timeouts, and disconnect-on-last-drop.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]; carries the unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Sender::send_timeout`]; carries the unsent message
/// back.
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// No capacity freed up before the deadline.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> std::fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// The sending half; cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// while full. `cap = 0` is treated as capacity 1 (this shim has no
/// rendezvous mode; nothing in the workspace uses one).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (or every receiver is gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: enqueues immediately or reports why it cannot.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for a capacity slot.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                    let (guard, _) = self.shared.not_full.wait_timeout(st, deadline - now).unwrap();
                    st = guard;
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives (or every sender is gone).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.shared.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            "sent"
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_send_rejects_when_full_or_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.len(), 1);
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn send_timeout_times_out_then_succeeds() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, SendTimeoutError::Timeout(2));
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let v = rx.recv().unwrap();
            (v, rx) // keep the receiver alive past the sender's retry
        });
        assert_eq!(tx.send_timeout(2, Duration::from_secs(5)), Ok(()));
        let (v, rx) = t.join().unwrap();
        assert_eq!(v, 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_consumes_everything_once() {
        let (tx, rx) = bounded(8);
        let n = 1000;
        let counted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            let counted = counted.clone();
            consumers.push(std::thread::spawn(move || {
                while rx.recv().is_ok() {
                    counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }));
        }
        drop(rx);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..n {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), 4 * n);
    }
}
