//! Offline stand-in for the subset of
//! [`parking_lot` 0.12](https://docs.rs/parking_lot/0.12) this workspace
//! uses: poison-free `Mutex` and `RwLock` with guard-returning `lock` /
//! `read` / `write` and `into_inner`.
//!
//! Backed by `std::sync`; lock poisoning is swallowed (a poisoned lock hands
//! back the inner guard), which matches `parking_lot`'s no-poisoning
//! semantics for the ways this workspace uses it.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
