//! # stq-sampling
//!
//! Query-oblivious sensor selection (paper §4.3): given the candidate sensor
//! locations (the nodes of the sensing graph `G`) and a budget `m`, pick the
//! communication sensors.
//!
//! Five methods, matching the paper exactly:
//!
//! - **Uniform random** — biases towards dense regions,
//! - **Systematic** — a virtual grid, one node per cell,
//! - **Stratified** — per-stratum uniform draws with weighted allocation,
//! - **kd-tree** — one node per kd-tree leaf,
//! - **QuadTree** — one node per quadtree leaf.
//!
//! Every method returns exactly `min(m, n)` *distinct* candidate ids, is
//! deterministic under the given seed, and has a weighted variant hook (the
//! paper's "query adaptive" weighting by historical query hits).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq_geom::{Point, Rect};
use stq_spatial::{KdTree, QuadTree};

/// Candidate sensor: position plus an opaque id.
pub type Candidate = (Point, u32);

/// The query-oblivious selection methods of §4.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SamplingMethod {
    /// Uniform random sampling without replacement.
    Uniform,
    /// Systematic sampling on a virtual grid (closest to each cell centre).
    Systematic,
    /// Stratified sampling with strata from a coarse district grid and
    /// area-proportional allocation.
    Stratified,
    /// One representative per kd-tree leaf.
    KdTree,
    /// One representative per quadtree leaf.
    QuadTree,
}

impl SamplingMethod {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [SamplingMethod; 5] = [
        SamplingMethod::Uniform,
        SamplingMethod::Systematic,
        SamplingMethod::Stratified,
        SamplingMethod::KdTree,
        SamplingMethod::QuadTree,
    ];

    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            SamplingMethod::Uniform => "uniform",
            SamplingMethod::Systematic => "systematic",
            SamplingMethod::Stratified => "stratified",
            SamplingMethod::KdTree => "kd-tree",
            SamplingMethod::QuadTree => "quadtree",
        }
    }
}

/// Selects `m` candidates with the given method. Returns distinct ids;
/// if `m >= candidates.len()`, all ids are returned.
pub fn sample(method: SamplingMethod, candidates: &[Candidate], m: usize, seed: u64) -> Vec<u32> {
    let n = candidates.len();
    if m >= n {
        return candidates.iter().map(|&(_, id)| id).collect();
    }
    if m == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match method {
        SamplingMethod::Uniform => uniform(candidates, m, &mut rng),
        SamplingMethod::Systematic => systematic(candidates, m, &mut rng),
        SamplingMethod::Stratified => stratified_grid(candidates, m, &mut rng),
        SamplingMethod::KdTree => kdtree(candidates, m, &mut rng),
        SamplingMethod::QuadTree => quadtree(candidates, m, &mut rng),
    }
}

/// Failover re-selection: re-picks `m` sensors after some died.
///
/// Surviving members of `previous` are kept — a replacement deployment
/// should move as few sensors as possible — and the shortfall is topped up
/// from a fresh `method` sample over the surviving candidates only (`dead`
/// ids are excluded entirely). Deterministic per seed; returns at most
/// `min(m, survivors)` distinct ids, never a dead one.
pub fn resample_surviving(
    method: SamplingMethod,
    candidates: &[Candidate],
    previous: &[u32],
    dead: &[u32],
    m: usize,
    seed: u64,
) -> Vec<u32> {
    let dead: std::collections::HashSet<u32> = dead.iter().copied().collect();
    let survivors: Vec<Candidate> =
        candidates.iter().copied().filter(|(_, id)| !dead.contains(id)).collect();
    let mut keep: Vec<u32> = previous.iter().copied().filter(|id| !dead.contains(id)).collect();
    keep.sort_unstable();
    keep.dedup();
    keep.truncate(m);
    if keep.len() == m || keep.len() == survivors.len() {
        return keep;
    }
    // Top up from a spatially sound sample of the survivors; over-asking by
    // the kept count guarantees enough fresh ids even on full overlap.
    let kept: std::collections::HashSet<u32> = keep.iter().copied().collect();
    let fresh = sample(method, &survivors, (m + keep.len()).min(survivors.len()), seed);
    keep.extend(fresh.into_iter().filter(|id| !kept.contains(id)).take(m - keep.len()));
    keep
}

/// Uniform sampling without replacement (partial Fisher–Yates).
pub fn uniform(candidates: &[Candidate], m: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    for i in 0..m.min(idx.len()) {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..m.min(candidates.len())].iter().map(|&i| candidates[i].1).collect()
}

/// Weighted sampling without replacement: at each draw, a candidate is
/// selected with probability proportional to its weight. The paper suggests
/// weighting nodes "by the number of times each node appeared in previous
/// queries" to make the oblivious methods query adaptive.
pub fn weighted(candidates: &[Candidate], weights: &[f64], m: usize, rng: &mut StdRng) -> Vec<u32> {
    assert_eq!(candidates.len(), weights.len(), "one weight per candidate");
    assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
    let mut w = weights.to_vec();
    let mut out = Vec::with_capacity(m.min(candidates.len()));
    for _ in 0..m.min(candidates.len()) {
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut x = rng.gen_range(0.0..total);
        let mut pick = w.len() - 1;
        for (i, &wi) in w.iter().enumerate() {
            x -= wi;
            if x <= 0.0 && wi > 0.0 {
                pick = i;
                break;
            }
        }
        out.push(candidates[pick].1);
        w[pick] = 0.0;
    }
    out
}

/// Systematic sampling: impose a virtual grid with ~`m` cells, select the
/// candidate closest to each cell centre, then reconcile to exactly `m`.
fn systematic(candidates: &[Candidate], m: usize, rng: &mut StdRng) -> Vec<u32> {
    let pts: Vec<Point> = candidates.iter().map(|c| c.0).collect();
    let bbox = Rect::bounding(&pts).expect("non-empty candidates");
    let aspect = (bbox.width() / bbox.height().max(1e-9)).max(1e-9);
    let ny = ((m as f64 / aspect).sqrt().ceil() as usize).max(1);
    let nx = m.div_ceil(ny).max(1);
    let cw = bbox.width() / nx as f64;
    let ch = bbox.height() / ny as f64;

    let mut best: Vec<Option<(f64, usize)>> = vec![None; nx * ny];
    for (i, &(p, _)) in candidates.iter().enumerate() {
        let ix = (((p.x - bbox.min.x) / cw.max(1e-300)) as usize).min(nx - 1);
        let iy = (((p.y - bbox.min.y) / ch.max(1e-300)) as usize).min(ny - 1);
        let centre =
            Point::new(bbox.min.x + (ix as f64 + 0.5) * cw, bbox.min.y + (iy as f64 + 0.5) * ch);
        let d = p.dist2(centre);
        let cell = &mut best[iy * nx + ix];
        if cell.map(|(bd, _)| d < bd).unwrap_or(true) {
            *cell = Some((d, i));
        }
    }
    let mut chosen: Vec<usize> = best.into_iter().flatten().map(|(_, i)| i).collect();
    reconcile(candidates, &mut chosen, m, rng);
    chosen.into_iter().map(|i| candidates[i].1).collect()
}

/// Stratified sampling with strata from a coarse `s × s` district grid
/// (`s ≈ ∜n`), allocating draws proportionally to stratum *area* (cell area
/// is constant here, so proportional to cell count with occupancy), as the
/// paper's default allocation function.
fn stratified_grid(candidates: &[Candidate], m: usize, rng: &mut StdRng) -> Vec<u32> {
    let pts: Vec<Point> = candidates.iter().map(|c| c.0).collect();
    let bbox = Rect::bounding(&pts).expect("non-empty candidates");
    let s = ((candidates.len() as f64).powf(0.25).ceil() as usize).clamp(2, 16);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); s * s];
    for (i, &(p, _)) in candidates.iter().enumerate() {
        let ix = (((p.x - bbox.min.x) / bbox.width().max(1e-300)) * s as f64)
            .min(s as f64 - 1.0)
            .max(0.0) as usize;
        let iy = (((p.y - bbox.min.y) / bbox.height().max(1e-300)) * s as f64)
            .min(s as f64 - 1.0)
            .max(0.0) as usize;
        strata[iy * s + ix].push(i);
    }
    let strata: Vec<Vec<usize>> = strata.into_iter().filter(|st| !st.is_empty()).collect();
    stratified(candidates, &strata, &vec![1.0; strata.len()], m, rng)
}

/// General stratified sampling: `strata[k]` lists candidate indices of
/// stratum `k`, sampled uniformly within; `allocation` weights (e.g. district
/// areas) decide how many draws each stratum receives.
pub fn stratified(
    candidates: &[Candidate],
    strata: &[Vec<usize>],
    allocation: &[f64],
    m: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    assert_eq!(strata.len(), allocation.len(), "one allocation weight per stratum");
    let total_alloc: f64 = allocation.iter().sum();
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    for (st, &alloc) in strata.iter().zip(allocation) {
        if st.is_empty() {
            continue;
        }
        let quota = (((m as f64) * alloc / total_alloc.max(1e-300)).round() as usize).min(st.len());
        let mut idx = st.clone();
        for i in 0..quota.min(idx.len()) {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        chosen.extend_from_slice(&idx[..quota]);
    }
    reconcile(candidates, &mut chosen, m, rng);
    chosen.into_iter().map(|i| candidates[i].1).collect()
}

/// kd-tree sampling: build a tree whose leaf count is ≈ `m`, then draw one
/// random representative per leaf.
fn kdtree(candidates: &[Candidate], m: usize, rng: &mut StdRng) -> Vec<u32> {
    let leaf_cap = candidates.len().div_ceil(m).max(1);
    let tree = KdTree::build(candidates, leaf_cap);
    let mut chosen: Vec<usize> = Vec::new();
    let id_to_index: std::collections::HashMap<u32, usize> =
        candidates.iter().enumerate().map(|(i, &(_, id))| (id, i)).collect();
    for leaf in tree.leaves() {
        let e = leaf[rng.gen_range(0..leaf.len())];
        chosen.push(id_to_index[&e.id]);
    }
    reconcile(candidates, &mut chosen, m, rng);
    chosen.into_iter().map(|i| candidates[i].1).collect()
}

/// QuadTree sampling: analogous to kd-tree sampling over quadtree leaves.
fn quadtree(candidates: &[Candidate], m: usize, rng: &mut StdRng) -> Vec<u32> {
    let leaf_cap = candidates.len().div_ceil(m).max(1);
    let tree = QuadTree::build(candidates, leaf_cap);
    let mut chosen: Vec<usize> = Vec::new();
    let id_to_index: std::collections::HashMap<u32, usize> =
        candidates.iter().enumerate().map(|(i, &(_, id))| (id, i)).collect();
    for (_, leaf) in tree.leaves() {
        let e = leaf[rng.gen_range(0..leaf.len())];
        chosen.push(id_to_index[&e.id]);
    }
    reconcile(candidates, &mut chosen, m, rng);
    chosen.into_iter().map(|i| candidates[i].1).collect()
}

/// Trims or tops up `chosen` (candidate indices) to exactly `m` distinct
/// entries: random removal when over, uniform top-up when under.
fn reconcile(candidates: &[Candidate], chosen: &mut Vec<usize>, m: usize, rng: &mut StdRng) {
    chosen.sort_unstable();
    chosen.dedup();
    while chosen.len() > m {
        let j = rng.gen_range(0..chosen.len());
        chosen.swap_remove(j);
    }
    if chosen.len() < m {
        let have: std::collections::HashSet<usize> = chosen.iter().copied().collect();
        let mut rest: Vec<usize> = (0..candidates.len()).filter(|i| !have.contains(i)).collect();
        for i in 0..rest.len() {
            let j = rng.gen_range(i..rest.len());
            rest.swap(i, j);
        }
        chosen.extend(rest.into_iter().take(m - chosen.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Candidate> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| (Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)), i as u32))
            .collect()
    }

    #[test]
    fn every_method_returns_exactly_m_distinct() {
        let cands = cloud(500, 1);
        for method in SamplingMethod::ALL {
            for &m in &[1usize, 7, 50, 200] {
                let s = sample(method, &cands, m, 42);
                assert_eq!(s.len(), m, "{method:?} m={m}");
                let mut d = s.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), m, "{method:?} returned duplicates");
                assert!(s.iter().all(|&id| (id as usize) < 500));
            }
        }
    }

    #[test]
    fn m_zero_and_m_all() {
        let cands = cloud(20, 2);
        for method in SamplingMethod::ALL {
            assert!(sample(method, &cands, 0, 1).is_empty());
            assert_eq!(sample(method, &cands, 20, 1).len(), 20);
            assert_eq!(sample(method, &cands, 100, 1).len(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cands = cloud(300, 3);
        for method in SamplingMethod::ALL {
            let a = sample(method, &cands, 40, 7);
            let b = sample(method, &cands, 40, 7);
            assert_eq!(a, b, "{method:?} not deterministic");
        }
    }

    #[test]
    fn systematic_spreads_spatially() {
        // Two dense clusters + sparse background: systematic sampling must
        // not put everything in the clusters.
        let mut rng = StdRng::seed_from_u64(5);
        let mut cands = Vec::new();
        for i in 0..400u32 {
            let p = if i < 180 {
                Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0))
            } else if i < 360 {
                Point::new(rng.gen_range(90.0..100.0), rng.gen_range(90.0..100.0))
            } else {
                Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
            };
            cands.push((p, i));
        }
        let sys = sample(SamplingMethod::Systematic, &cands, 40, 11);
        let uni = sample(SamplingMethod::Uniform, &cands, 40, 11);
        let mid_count = |ids: &[u32]| {
            ids.iter()
                .filter(|&&id| {
                    let p = cands[id as usize].0;
                    p.x > 15.0 && p.x < 85.0 && p.y > 15.0 && p.y < 85.0
                })
                .count()
        };
        assert!(
            mid_count(&sys) > mid_count(&uni),
            "systematic should cover the sparse middle better"
        );
    }

    #[test]
    fn weighted_prefers_heavy_candidates() {
        let cands = cloud(100, 9);
        let mut weights = vec![0.001; 100];
        for w in weights.iter_mut().take(10) {
            *w = 1000.0;
        }
        let mut rng = StdRng::seed_from_u64(13);
        let s = weighted(&cands, &weights, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let heavy = s.iter().filter(|&&id| id < 10).count();
        assert!(heavy >= 8, "expected mostly heavy picks, got {heavy}");
    }

    #[test]
    fn weighted_zero_total_stops() {
        let cands = cloud(5, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let s = weighted(&cands, &[0.0; 5], 3, &mut rng);
        assert!(s.is_empty());
    }

    #[test]
    fn stratified_respects_allocation() {
        let cands = cloud(200, 17);
        // Two strata: left/right half.
        let left: Vec<usize> = (0..200).filter(|&i| cands[i].0.x < 50.0).collect();
        let right: Vec<usize> = (0..200).filter(|&i| cands[i].0.x >= 50.0).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let s = stratified(&cands, &[left, right], &[3.0, 1.0], 40, &mut rng);
        assert_eq!(s.len(), 40);
        let left_n = s.iter().filter(|&&id| cands[id as usize].0.x < 50.0).count();
        // 3:1 allocation → roughly 30 from the left (tolerate reconcile noise).
        assert!(left_n >= 24, "left got {left_n}");
    }

    #[test]
    fn resample_keeps_survivors_and_excludes_dead() {
        let cands = cloud(300, 21);
        for method in SamplingMethod::ALL {
            let previous = sample(method, &cands, 60, 9);
            // Kill every fifth previously chosen sensor plus some bystanders.
            let dead: Vec<u32> =
                previous.iter().copied().step_by(5).chain([200, 201, 202]).collect();
            let next = resample_surviving(method, &cands, &previous, &dead, 60, 9);
            assert_eq!(next.len(), 60, "{method:?}");
            let mut d = next.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 60, "{method:?} returned duplicates");
            assert!(next.iter().all(|id| !dead.contains(id)), "{method:?} kept a dead sensor");
            for id in &previous {
                if !dead.contains(id) {
                    assert!(next.contains(id), "{method:?} dropped surviving sensor {id}");
                }
            }
            // Deterministic per seed.
            assert_eq!(next, resample_surviving(method, &cands, &previous, &dead, 60, 9));
        }
    }

    #[test]
    fn resample_with_few_survivors_returns_them_all() {
        let cands = cloud(10, 4);
        let previous: Vec<u32> = vec![0, 1, 2];
        let dead: Vec<u32> = (0..8).collect();
        let next = resample_surviving(SamplingMethod::Uniform, &cands, &previous, &dead, 5, 1);
        let mut sorted = next.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 9], "only the two survivors remain");
    }

    #[test]
    #[should_panic(expected = "one weight per candidate")]
    fn weighted_length_mismatch_panics() {
        let cands = cloud(3, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = weighted(&cands, &[1.0], 2, &mut rng);
    }
}
