//! Property tests: every sampling method returns exactly the requested
//! number of distinct, valid candidates, deterministically per seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stq_geom::Point;
use stq_sampling::{sample, stratified, weighted, SamplingMethod};

fn candidates() -> impl Strategy<Value = Vec<(Point, u32)>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..150).prop_map(|pts| {
        pts.into_iter().enumerate().map(|(i, (x, y))| (Point::new(x, y), i as u32 * 3)).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exactly_m_distinct_valid(cands in candidates(), m in 0usize..200, seed in 0u64..50) {
        let ids: std::collections::HashSet<u32> = cands.iter().map(|&(_, id)| id).collect();
        for method in SamplingMethod::ALL {
            let sel = sample(method, &cands, m, seed);
            prop_assert_eq!(sel.len(), m.min(cands.len()), "{:?}", method);
            let mut d = sel.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), sel.len(), "{:?} returned duplicates", method);
            for id in &sel {
                prop_assert!(ids.contains(id), "{:?} invented id {}", method, id);
            }
        }
    }

    #[test]
    fn deterministic_per_seed(cands in candidates(), m in 1usize..50, seed in 0u64..50) {
        for method in SamplingMethod::ALL {
            let a = sample(method, &cands, m, seed);
            let b = sample(method, &cands, m, seed);
            prop_assert_eq!(a, b, "{:?} not deterministic", method);
        }
    }

    #[test]
    fn weighted_returns_distinct(cands in candidates(), m in 1usize..50, seed in 0u64..50) {
        let weights: Vec<f64> = cands.iter().map(|&(_, id)| (id % 7) as f64 + 0.5).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = weighted(&cands, &weights, m, &mut rng);
        prop_assert_eq!(sel.len(), m.min(cands.len()));
        let mut d = sel.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), sel.len());
    }

    #[test]
    fn stratified_covers_all_strata_given_budget(cands in candidates(), seed in 0u64..50) {
        if cands.len() < 4 { return Ok(()); }
        // Two strata split by index parity; equal allocation.
        let even: Vec<usize> = (0..cands.len()).step_by(2).collect();
        let odd: Vec<usize> = (1..cands.len()).step_by(2).collect();
        let m = (cands.len() / 2).max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = stratified(&cands, &[even.clone(), odd.clone()], &[1.0, 1.0], m, &mut rng);
        prop_assert_eq!(sel.len(), m);
        // With equal weights and enough budget, both strata contribute.
        if m >= 4 && !odd.is_empty() {
            let id_to_idx: std::collections::HashMap<u32, usize> =
                cands.iter().enumerate().map(|(i, &(_, id))| (id, i)).collect();
            let even_n = sel.iter().filter(|&&id| id_to_idx[&id] % 2 == 0).count();
            prop_assert!(even_n > 0 && even_n < sel.len(),
                "one stratum was starved: {even_n}/{}", sel.len());
        }
    }
}
