//! Property tests: with full sampling and fine buckets the Euler-histogram
//! baseline is exact; partial sampling only ever undercounts present
//! populations.

use proptest::prelude::*;
use std::collections::HashSet;
use stq_baseline::BaselineIndex;
use stq_mobility::Trajectory;

/// Random stay-then-hop object histories over `cells` cells.
fn world() -> impl Strategy<Value = (usize, Vec<Trajectory>)> {
    (4usize..12).prop_flat_map(|cells| {
        let trajs = proptest::collection::vec(
            (0..cells, proptest::collection::vec((0..cells, 0.5f64..5.0), 0..12)),
            1..8,
        );
        (Just(cells), trajs).prop_map(|(cells, specs)| {
            let trajectories = specs
                .into_iter()
                .enumerate()
                .map(|(id, (start, hops))| {
                    let mut t = 0.0;
                    let mut visits = vec![(t, start)];
                    for (cell, dwell) in hops {
                        t += dwell;
                        visits.push((t, cell));
                    }
                    Trajectory { id: id as u64, visits }
                })
                .collect();
            (cells, trajectories)
        })
    })
}

fn oracle_present(trajs: &[Trajectory], region: &HashSet<usize>, t: f64) -> i64 {
    trajs
        .iter()
        .filter(|traj| {
            let idx = traj.visits.partition_point(|&(ts, _)| ts <= t);
            idx > 0 && region.contains(&traj.visits[idx - 1].1)
        })
        .count() as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_sampling_fine_buckets_is_exact((cells, trajs) in world(),
                                           probe in 0.1f64..60.0, mask in 1u32..4096) {
        let universe: Vec<usize> = (0..cells).collect();
        let idx = BaselineIndex::build(&universe, &trajs, 1.0, 1e-3, 7);
        let region: HashSet<usize> =
            (0..cells).filter(|&c| mask & (1 << (c % 12)) != 0).collect();
        // Avoid probing exactly at event times (bucket boundaries).
        let t = probe + 1e-4;
        let est = idx.snapshot(&region, t);
        let truth = oracle_present(&trajs, &region, t) as f64;
        prop_assert!((est - truth).abs() < 1e-9, "est {est} truth {truth}");
    }

    #[test]
    fn transient_is_snapshot_difference((cells, trajs) in world(),
                                        a in 0.1f64..30.0, d in 0.1f64..30.0) {
        let universe: Vec<usize> = (0..cells).collect();
        let idx = BaselineIndex::build(&universe, &trajs, 1.0, 1e-3, 7);
        let region: HashSet<usize> = (0..cells / 2).collect();
        let (t0, t1) = (a + 1e-4, a + d + 2e-4);
        let net = idx.transient(&region, t0, t1);
        let diff = idx.snapshot(&region, t1) - idx.snapshot(&region, t0);
        prop_assert!((net - diff).abs() < 1e-9);
    }

    #[test]
    fn partial_sampling_never_overcounts_snapshot((cells, trajs) in world(),
                                                  frac in 0.1f64..0.9, seed in 0u64..50,
                                                  probe in 0.1f64..60.0) {
        let universe: Vec<usize> = (0..cells).collect();
        let idx = BaselineIndex::build(&universe, &trajs, frac, 1e-3, seed);
        let region: HashSet<usize> = (0..cells).collect();
        let t = probe + 1e-4;
        let est = idx.snapshot(&region, t);
        let truth = oracle_present(&trajs, &region, t) as f64;
        prop_assert!(est <= truth + 1e-9, "sampled {est} exceeds truth {truth}");
        prop_assert!(est >= 0.0);
    }

    #[test]
    fn nodes_accessed_counts_sampled_cells((cells, trajs) in world(), frac in 0.1f64..1.0,
                                           seed in 0u64..50) {
        let universe: Vec<usize> = (0..cells).collect();
        let idx = BaselineIndex::build(&universe, &trajs, frac, 1.0, seed);
        let region: HashSet<usize> = (0..cells).collect();
        prop_assert_eq!(idx.nodes_accessed(&region), idx.sampled().len());
        let empty: HashSet<usize> = HashSet::new();
        prop_assert_eq!(idx.nodes_accessed(&empty), 0);
    }
}
