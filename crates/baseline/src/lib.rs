//! # stq-baseline
//!
//! The paper's combined baseline (§5.1.2): **Euler histograms** [15, 19]
//! counting objects per face of the sensing graph `G`, with **uniform random
//! face sampling** [14, 29] deciding which faces are materialized.
//!
//! Per sampled face (junction cell) the histogram stores time-bucketed
//! arrival and departure counts — aggregates, no identifiers. A query sums
//! the counts of the sampled faces inside the region: coverage is capped by
//! whichever faces happened to be sampled ("the area of the sampled faces
//! predetermines the maximum coverage", §5.3), and every sampled face inside
//! the query region must be contacted, so communication grows linearly with
//! the query area (§5.4) — the two weaknesses the paper's framework removes.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq_mobility::{Time, Trajectory};

/// Per-cell Euler histogram: bucketed arrival/departure counts.
#[derive(Clone, Debug, Default)]
struct CellHist {
    /// `(bucket, count)` pairs, sorted by bucket.
    arrivals: Vec<(u32, u32)>,
    departures: Vec<(u32, u32)>,
}

impl CellHist {
    fn bump(seq: &mut Vec<(u32, u32)>, bucket: u32) {
        match seq.last_mut() {
            Some((b, c)) if *b == bucket => *c += 1,
            _ => seq.push((bucket, 1)),
        }
    }

    fn cum(seq: &[(u32, u32)], bucket: u32) -> u32 {
        let idx = seq.partition_point(|&(b, _)| b <= bucket);
        seq[..idx].iter().map(|&(_, c)| c).sum()
    }

    fn bytes(&self) -> usize {
        (self.arrivals.len() + self.departures.len()) * 8
    }
}

/// The baseline index: histograms for a uniformly sampled subset of faces.
#[derive(Clone, Debug)]
pub struct BaselineIndex {
    /// Time-bucket width.
    bucket: Time,
    t_origin: Time,
    /// Histograms, only for sampled cells.
    cells: HashMap<usize, CellHist>,
    sampled: HashSet<usize>,
}

impl BaselineIndex {
    /// Builds the baseline over a workload.
    ///
    /// `cells` is the universe of junction cells; `fraction` of them are
    /// uniformly sampled (at least one). Events are bucketed at `bucket`
    /// seconds — the temporal resolution real Euler-histogram deployments
    /// trade storage against.
    pub fn build(
        cells: &[usize],
        trajectories: &[Trajectory],
        fraction: f64,
        bucket: Time,
        seed: u64,
    ) -> Self {
        assert!(bucket > 0.0, "bucket width must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let m = ((cells.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize)
            .clamp(1, cells.len());
        let mut idx: Vec<usize> = (0..cells.len()).collect();
        for i in 0..m {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let sampled: HashSet<usize> = idx[..m].iter().map(|&i| cells[i]).collect();

        let t_origin = trajectories
            .iter()
            .filter_map(|t| t.visits.first().map(|&(t0, _)| t0))
            .fold(f64::INFINITY, f64::min)
            .min(0.0);

        let mut hists: HashMap<usize, CellHist> = HashMap::new();
        let to_bucket = |t: Time| ((t - t_origin) / bucket).floor().max(0.0) as u32;
        // Collect events globally sorted so per-cell sequences stay ordered.
        let mut events: Vec<(Time, usize, bool)> = Vec::new(); // (t, cell, is_arrival)
        for traj in trajectories {
            for (i, &(t, j)) in traj.visits.iter().enumerate() {
                if sampled.contains(&j) {
                    events.push((t, j, true));
                    if let Some(&(t_next, _)) = traj.visits.get(i + 1) {
                        events.push((t_next, j, false));
                    }
                }
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, cell, arr) in events {
            let h = hists.entry(cell).or_default();
            let b = to_bucket(t);
            if arr {
                CellHist::bump(&mut h.arrivals, b);
            } else {
                CellHist::bump(&mut h.departures, b);
            }
        }
        BaselineIndex { bucket, t_origin, cells: hists, sampled }
    }

    fn bucket_of(&self, t: Time) -> u32 {
        ((t - self.t_origin) / self.bucket).floor().max(0.0) as u32
    }

    /// The sampled faces.
    pub fn sampled(&self) -> &HashSet<usize> {
        &self.sampled
    }

    /// Present count in one sampled cell at time `t` (0 for unsampled).
    fn present(&self, cell: usize, t: Time) -> i64 {
        match self.cells.get(&cell) {
            Some(h) => {
                let b = self.bucket_of(t);
                CellHist::cum(&h.arrivals, b) as i64 - CellHist::cum(&h.departures, b) as i64
            }
            None => 0,
        }
    }

    /// Snapshot estimate: objects in the region at `t`, summed over sampled
    /// faces inside the region.
    pub fn snapshot(&self, region: &HashSet<usize>, t: Time) -> f64 {
        self.covered(region).map(|c| self.present(c, t)).sum::<i64>() as f64
    }

    /// Transient estimate over `(t0, t1]`: net arrivals − departures.
    pub fn transient(&self, region: &HashSet<usize>, t0: Time, t1: Time) -> f64 {
        let (b0, b1) = (self.bucket_of(t0), self.bucket_of(t1));
        self.covered(region)
            .filter_map(|c| self.cells.get(&c))
            .map(|h| {
                let arr =
                    CellHist::cum(&h.arrivals, b1) as i64 - CellHist::cum(&h.arrivals, b0) as i64;
                let dep = CellHist::cum(&h.departures, b1) as i64
                    - CellHist::cum(&h.departures, b0) as i64;
                arr - dep
            })
            .sum::<i64>() as f64
    }

    /// Static interval estimate: `min(snapshot(t0), snapshot(t1))`, the same
    /// aggregate estimator family as the framework's (see
    /// `stq_forms::static_interval_count`).
    pub fn static_interval(&self, region: &HashSet<usize>, t0: Time, t1: Time) -> f64 {
        self.snapshot(region, t0).min(self.snapshot(region, t1)).max(0.0)
    }

    /// Sampled faces inside the region — every one must be contacted to
    /// answer a query (the linear communication cost of Fig. 11c).
    pub fn nodes_accessed(&self, region: &HashSet<usize>) -> usize {
        self.covered(region).count()
    }

    fn covered<'a>(&'a self, region: &'a HashSet<usize>) -> impl Iterator<Item = usize> + 'a {
        region.iter().copied().filter(move |c| self.sampled.contains(c))
    }

    /// Storage footprint of all histograms.
    pub fn storage_bytes(&self) -> usize {
        self.cells.values().map(|h| h.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: u64, visits: &[(f64, usize)]) -> Trajectory {
        Trajectory { id, visits: visits.to_vec() }
    }

    /// With fraction 1.0 and a fine bucket, the baseline is exact.
    #[test]
    fn full_sampling_fine_buckets_exact() {
        let cells: Vec<usize> = (0..10).collect();
        let trajs = vec![
            traj(1, &[(0.0, 9), (1.0, 2), (5.0, 3), (9.0, 9)]),
            traj(2, &[(2.0, 2), (4.0, 4)]),
        ];
        let idx = BaselineIndex::build(&cells, &trajs, 1.0, 0.1, 7);
        let region: HashSet<usize> = [2, 3].into_iter().collect();
        assert_eq!(idx.snapshot(&region, 1.5), 1.0); // object 1 at cell 2
        assert_eq!(idx.snapshot(&region, 2.5), 2.0); // both
        assert_eq!(idx.snapshot(&region, 4.5), 1.0); // object 2 left to 4
        assert_eq!(idx.snapshot(&region, 6.0), 1.0); // object 1 at 3
        assert_eq!(idx.snapshot(&region, 9.5), 0.0);
        assert_eq!(idx.transient(&region, 1.5, 2.5), 1.0);
        assert_eq!(idx.transient(&region, 2.5, 9.5), -2.0);
    }

    #[test]
    fn partial_sampling_undercounts() {
        let cells: Vec<usize> = (0..50).collect();
        // 10 objects parked in 10 distinct cells.
        let trajs: Vec<Trajectory> =
            (0..10).map(|i| traj(i as u64, &[(0.0, i as usize)])).collect();
        let idx = BaselineIndex::build(&cells, &trajs, 0.3, 1.0, 3);
        let region: HashSet<usize> = (0..10).collect();
        let est = idx.snapshot(&region, 5.0);
        assert!(est <= 10.0);
        assert!(est >= 0.0);
        // nodes accessed = sampled cells inside the region only.
        assert_eq!(
            idx.nodes_accessed(&region),
            region.iter().filter(|c| idx.sampled().contains(c)).count()
        );
    }

    #[test]
    fn coarse_buckets_blur_time() {
        let cells: Vec<usize> = (0..4).collect();
        let trajs = vec![traj(1, &[(0.0, 1), (10.0, 2)])];
        // Bucket of 100s: both events land in bucket 0.
        let idx = BaselineIndex::build(&cells, &trajs, 1.0, 100.0, 1);
        let region: HashSet<usize> = [1].into_iter().collect();
        // Anywhere in the first bucket the arrival AND departure both count.
        assert_eq!(idx.snapshot(&region, 5.0), 0.0);
        // A fine bucket resolves it.
        let fine = BaselineIndex::build(&cells, &trajs, 1.0, 0.5, 1);
        assert_eq!(fine.snapshot(&region, 5.0), 1.0);
    }

    #[test]
    fn static_interval_lower_bound() {
        let cells: Vec<usize> = (0..5).collect();
        let trajs = vec![
            traj(1, &[(0.0, 2)]),           // stays forever
            traj(2, &[(0.0, 2), (5.0, 3)]), // leaves cell 2 at t=5
        ];
        let idx = BaselineIndex::build(&cells, &trajs, 1.0, 0.1, 1);
        let region: HashSet<usize> = [2].into_iter().collect();
        assert_eq!(idx.static_interval(&region, 1.0, 10.0), 1.0);
        assert_eq!(idx.static_interval(&region, 1.0, 2.0), 2.0);
    }

    #[test]
    fn deterministic_sampling() {
        let cells: Vec<usize> = (0..100).collect();
        let a = BaselineIndex::build(&cells, &[], 0.2, 1.0, 9);
        let b = BaselineIndex::build(&cells, &[], 0.2, 1.0, 9);
        assert_eq!(a.sampled(), b.sampled());
        assert_eq!(a.sampled().len(), 20);
    }

    #[test]
    fn storage_grows_with_events() {
        let cells: Vec<usize> = (0..5).collect();
        let few = vec![traj(1, &[(0.0, 1), (1.0, 2)])];
        let many: Vec<Trajectory> = (0..50)
            .map(|i| traj(i, &[(i as f64, 1), (i as f64 + 0.5, 2), (i as f64 + 0.7, 3)]))
            .collect();
        let a = BaselineIndex::build(&cells, &few, 1.0, 0.1, 1);
        let b = BaselineIndex::build(&cells, &many, 1.0, 0.1, 1);
        assert!(b.storage_bytes() > a.storage_bytes());
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_bucket_rejected() {
        let _ = BaselineIndex::build(&[0], &[], 1.0, 0.0, 1);
    }
}
