//! End-to-end tests of the sharded serving runtime: exact parity with the
//! synchronous query path, fault recovery, degradation, and metrics.

use std::sync::OnceLock;
use std::time::Duration;

use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_forms::FormStore;
use stq_runtime::{CrashWindow, FaultPlan, QuerySpec, Runtime, RuntimeConfig, ServedAnswer};

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let scenario = Scenario::build(ScenarioConfig {
            junctions: 180,
            mix: WorkloadMix { random_waypoint: 20, commuter: 12, transit: 6 },
            seed: 41,
            ..Default::default()
        });
        let cands = scenario.sensing.sensor_candidates();
        let ids = stq_sampling::sample(
            stq_sampling::SamplingMethod::QuadTree,
            &cands,
            cands.len() / 4,
            7,
        );
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let sampled =
            SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
        Fixture { scenario, sampled }
    })
}

fn store(f: &Fixture) -> &FormStore {
    &f.scenario.tracked.store
}

fn runtime(f: &Fixture, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(f.scenario.sensing.clone(), f.sampled.clone(), store(f), cfg)
}

/// The value the runtime must reproduce when coverage is complete: the
/// synchronous resolve → boundary → evaluate path.
fn sync_value(f: &Fixture, spec: &QuerySpec) -> Option<f64> {
    let covered = match spec.approx {
        Approximation::Lower => f.sampled.resolve_lower(&spec.region.junctions),
        Approximation::Upper => f.sampled.resolve_upper(&spec.region.junctions),
    };
    if covered.is_empty() {
        return None;
    }
    let boundary = f.scenario.sensing.boundary_of(&covered, Some(f.sampled.monitored()));
    Some(evaluate(store(f), &boundary, spec.kind))
}

fn specs(f: &Fixture, n: usize, frac: f64, seed: u64) -> Vec<QuerySpec> {
    f.scenario
        .make_queries(n, frac, 1_500.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1), QueryKind::Static(t0, t1)]
                .into_iter()
                .map(move |kind| QuerySpec {
                    region: region.clone(),
                    kind,
                    approx: Approximation::Lower,
                    deadline: None,
                })
        })
        .collect()
}

#[test]
fn fault_free_answers_are_bit_identical_to_sync_path() {
    let f = fixture();
    for shards in [1, 3, 5] {
        let rt = runtime(
            f,
            RuntimeConfig { num_shards: shards, dispatchers: 2, ..RuntimeConfig::default() },
        );
        for spec in specs(f, 8, 0.15, 17) {
            let served = rt.query(spec.clone());
            match sync_value(f, &spec) {
                None => assert!(served.miss),
                Some(exact) => {
                    assert!(!served.miss);
                    assert_eq!(served.coverage, 1.0);
                    assert!(!served.degraded);
                    assert_eq!(
                        served.value.to_bits(),
                        exact.to_bits(),
                        "shards={shards} kind={:?}: {} vs sync {exact}",
                        spec.kind,
                        served.value
                    );
                    assert_eq!(served.lower.to_bits(), served.upper.to_bits());
                }
            }
        }
        rt.shutdown();
    }
}

#[test]
fn concurrent_submissions_all_complete() {
    let f = fixture();
    let rt =
        runtime(f, RuntimeConfig { num_shards: 4, dispatchers: 3, ..RuntimeConfig::default() });
    let all = specs(f, 10, 0.12, 29);
    let expected: Vec<Option<f64>> = all.iter().map(|s| sync_value(f, s)).collect();
    let pending: Vec<_> = all.iter().cloned().map(|s| rt.submit(s)).collect();
    let answers: Vec<ServedAnswer> = pending.into_iter().map(|p| p.wait()).collect();
    for (a, e) in answers.iter().zip(&expected) {
        match e {
            None => assert!(a.miss),
            Some(exact) => assert_eq!(a.value.to_bits(), exact.to_bits()),
        }
    }
    // Distinct ids, all traced, all counted.
    let mut ids: Vec<u64> = answers.iter().map(|a| a.query_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), all.len());
    let report = rt.metrics().report();
    assert_eq!(report.queries, all.len() as u64);
    assert_eq!(report.degraded, 0);
    assert!(report.shard_requests >= report.queries - report.misses);
    assert_eq!(rt.metrics().latency.len(), all.len() as u64);
}

#[test]
fn crashed_shard_degrades_with_sound_bounds() {
    let f = fixture();
    let cfg = RuntimeConfig {
        num_shards: 3,
        dispatchers: 2,
        shard_timeout: Duration::from_millis(4),
        max_retries: 1,
        fault: FaultPlan::none().with_crash(CrashWindow {
            node: 0,
            after_messages: 0,
            lasts_messages: u64::MAX,
        }),
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let mut degraded_seen = 0;
    for spec in specs(f, 8, 0.2, 13) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, &spec) else {
            assert!(served.miss);
            continue;
        };
        assert!(
            served.lower <= exact + 1e-12 && exact <= served.upper + 1e-12,
            "bounds [{}, {}] must bracket sync value {exact} (coverage {})",
            served.lower,
            served.upper,
            served.coverage
        );
        if served.degraded {
            degraded_seen += 1;
            assert!(served.coverage < 1.0);
            assert!(served.retries >= 1, "crashed shard must trigger the retry budget");
        } else {
            assert_eq!(served.value.to_bits(), exact.to_bits());
        }
    }
    assert!(degraded_seen > 0, "shard 0 is down; some queries must degrade");
    let report = rt.metrics().report();
    assert!(report.crash_dropped > 0);
    assert!(report.timeouts > 0);
    assert_eq!(report.degraded, degraded_seen);
}

#[test]
fn retries_recover_from_message_drops() {
    let f = fixture();
    let cfg = RuntimeConfig {
        num_shards: 4,
        dispatchers: 2,
        shard_timeout: Duration::from_millis(4),
        max_retries: 4,
        fault: FaultPlan::lossy(99, 0.4, 0.0, 0.1, 0),
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let mut complete = 0usize;
    let mut total = 0usize;
    for spec in specs(f, 8, 0.15, 23) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, &spec) else {
            continue;
        };
        total += 1;
        assert!(served.lower <= exact + 1e-12 && exact <= served.upper + 1e-12);
        if served.coverage == 1.0 {
            complete += 1;
            assert_eq!(served.value.to_bits(), exact.to_bits());
        }
    }
    // With a 40% drop rate and 4 retries the chance a shard stays silent
    // through all 5 attempts is ~1%, so the vast majority must complete.
    assert!(complete * 10 >= total * 8, "only {complete}/{total} complete under retries");
    let report = rt.metrics().report();
    assert!(report.dropped > 0, "the plan must actually drop messages");
    assert!(report.retries > 0, "drops must trigger retries");
    assert!(report.duplicated > 0, "the plan must duplicate some responses");
}

#[test]
fn poisoned_payloads_surface_as_failed_responses() {
    // poison_p = 1.0: every shard computation panics on a corrupted edge id.
    // Regression: before the panic guard, the first poisoned request killed
    // the worker thread, every later query to that shard hung out its full
    // timeout, and nothing was ever reported. Now each panic comes back as a
    // failed response: queries finish fast (no timeout waits), degraded,
    // with sound worst-case bounds, and the workers survive to serve the
    // whole batch.
    let f = fixture();
    let cfg = RuntimeConfig {
        num_shards: 3,
        dispatchers: 2,
        shard_timeout: Duration::from_secs(2),
        max_retries: 1,
        fault: FaultPlan::none().with_poison(1.0),
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let start = std::time::Instant::now();
    let mut served_any = 0;
    for spec in specs(f, 6, 0.15, 19) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, &spec) else {
            assert!(served.miss);
            continue;
        };
        served_any += 1;
        assert!(served.degraded, "all payloads poisoned: nothing can be exact");
        assert_eq!(served.coverage, 0.0);
        assert!(
            served.lower <= exact + 1e-12 && exact <= served.upper + 1e-12,
            "bounds [{}, {}] must bracket sync value {exact}",
            served.lower,
            served.upper
        );
    }
    assert!(served_any > 0);
    // The early-abort on all-shards-panicked must beat even one 2 s timeout
    // window; without it this loop would take minutes.
    assert!(start.elapsed() < Duration::from_secs(2), "panics must not wait out timeouts");
    let report = rt.metrics().report();
    assert!(report.shard_panics > 0, "the guard must have caught panics");
    assert_eq!(report.shard_served, 0);
}

#[test]
fn quarantined_edges_are_refused_and_widen_bounds() {
    // Quarantine every monitored edge: each shard still holds the forms but
    // must refuse them, so every covered query degrades to its worst-case
    // interval — which still brackets the synchronous fold over the store.
    let f = fixture();
    let quarantined: Vec<usize> =
        (0..f.scenario.sensing.num_edges()).filter(|&e| f.sampled.monitored()[e]).collect();
    let rt = Runtime::with_quarantine(
        f.scenario.sensing.clone(),
        f.sampled.clone(),
        store(f),
        RuntimeConfig { num_shards: 3, dispatchers: 2, ..RuntimeConfig::default() },
        &quarantined,
    );
    let mut refused_total = 0usize;
    for spec in specs(f, 6, 0.15, 37) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, &spec) else {
            assert!(served.miss);
            continue;
        };
        refused_total += served.quarantined;
        if served.quarantined > 0 {
            assert!(served.degraded);
            assert!(served.coverage < 1.0);
            assert!(
                served.lower <= exact + 1e-12 && exact <= served.upper + 1e-12,
                "bounds [{}, {}] must bracket sync value {exact}",
                served.lower,
                served.upper
            );
        }
    }
    assert!(refused_total > 0, "some boundary edges must have been refused");
    let report = rt.metrics().report();
    assert_eq!(report.quarantine_refusals, refused_total as u64);
    assert_eq!(report.shard_panics, 0);
}

#[test]
fn trace_ring_records_recent_queries() {
    let f = fixture();
    let rt = runtime(f, RuntimeConfig { num_shards: 2, ..RuntimeConfig::default() });
    let all = specs(f, 4, 0.15, 31);
    let n = all.len();
    for spec in all {
        let _ = rt.query(spec);
    }
    let traces = rt.metrics().recent_traces();
    assert_eq!(traces.len(), n);
    assert!(traces.iter().all(|t| t.latency_us > 0 || t.miss || t.coverage == 1.0));
}

#[test]
fn degraded_mode_escalation_upgrades_quarantined_answers() {
    // Quarantine every 7th monitored edge and turn the degraded-mode
    // answerer on: quarantine-degraded answers must escalate past the
    // worst-case-totals bracket, report which strategy certified them, and
    // stay sound against the oracle (the certified paths only read healthy
    // logs, which are clean here).
    let f = fixture();
    let quarantined: Vec<usize> = (0..f.scenario.sensing.num_edges())
        .filter(|&e| f.sampled.monitored()[e])
        .step_by(7)
        .collect();
    let rt = Runtime::with_quarantine(
        f.scenario.sensing.clone(),
        f.sampled.clone(),
        store(f),
        RuntimeConfig {
            num_shards: 3,
            dispatchers: 2,
            degraded: Some(DegradedPolicy::default()),
            ..RuntimeConfig::default()
        },
        &quarantined,
    );
    let all = specs(f, 8, 0.15, 43);
    let mut upgraded = 0u64;
    for spec in &all {
        let served = rt.query(spec.clone());
        if served.miss {
            continue;
        }
        assert!((0.0..=1.0).contains(&served.confidence));
        if served.strategy != DegradedStrategy::None {
            upgraded += 1;
            assert!(served.degraded, "a degraded strategy implies a degraded answer");
            let inside = |j: usize| spec.region.junctions.contains(&j);
            let truth = match spec.kind {
                QueryKind::Snapshot(t) => {
                    f.scenario.tracked.oracle.snapshot_count(&inside, t) as f64
                }
                QueryKind::Transient(a, b) => {
                    f.scenario.tracked.oracle.transient_count(&inside, a, b) as f64
                }
                QueryKind::Static(a, b) => {
                    f.scenario.tracked.oracle.static_interval_count(&inside, a, b) as f64
                }
            };
            assert!(
                served.lower <= truth + 1e-9 && truth <= served.upper + 1e-9,
                "{:?} [{}]: oracle {truth} outside [{}, {}]",
                spec.kind,
                served.strategy.label(),
                served.lower,
                served.upper
            );
            assert!(
                served.value >= served.lower - 1e-9 && served.value <= served.upper + 1e-9,
                "point value must sit inside the certified bracket"
            );
        }
    }
    assert!(upgraded > 0, "some quarantine-degraded answer must have escalated");
    let r = rt.metrics().report();
    assert_eq!(r.quarantined_edges, quarantined.len() as u64);
    assert_eq!(
        r.degraded_demoted + r.degraded_detour + r.degraded_imputed + r.degraded_learned,
        upgraded,
        "per-strategy counters must add up to the upgraded answers"
    );
    assert!(rt.metrics().recent_traces().iter().any(|t| t.strategy != "none"));

    // Ingesting a single event invalidates the snapshot-certified brackets:
    // every later answer falls back to the classic worst-case degradation.
    rt.ingest(Crossing { time: 10_000.0, edge: quarantined[0], forward: true }).expect("ingest");
    rt.flush_ingest();
    for spec in &all {
        let served = rt.query(spec.clone());
        assert_eq!(
            served.strategy,
            DegradedStrategy::None,
            "degraded-mode consults must stop after ingest"
        );
    }
    rt.shutdown();
}
