//! Crash-recovery tests of the supervised runtime: a shard worker killed
//! mid-ingest (kill -9 semantics, torn WAL tail included) must come back
//! with **byte-identical** tracking-form state, queries against a
//! recovering shard must keep returning sound brackets, and workers that
//! panic repeatedly must escalate to the supervisor and heal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_core::tracker::Crossing;
use stq_forms::FormStore;
use stq_runtime::{
    CrashWindow, DurabilityConfig, DurabilityFaultPlan, FaultPlan, QuerySpec, Runtime,
    RuntimeConfig, ShardHealth,
};

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let scenario = Scenario::build(ScenarioConfig {
            junctions: 140,
            mix: WorkloadMix { random_waypoint: 14, commuter: 8, transit: 4 },
            seed: 53,
            ..Default::default()
        });
        let cands = scenario.sensing.sensor_candidates();
        let ids = stq_sampling::sample(
            stq_sampling::SamplingMethod::QuadTree,
            &cands,
            cands.len() / 4,
            5,
        );
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let sampled =
            SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
        Fixture { scenario, sampled }
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "stq-rt-rec-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A deterministic ingest stream: event `i` crosses edge `i % num_edges` at
/// a time far past everything the scenario pre-recorded, so the oracle
/// store can absorb it with plain `record` (strictly monotone everywhere).
fn stream(num_edges: usize, n: usize) -> Vec<Crossing> {
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.25,
            edge: i % num_edges,
            forward: i % 3 != 0,
        })
        .collect()
}

fn runtime(f: &Fixture, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(f.scenario.sensing.clone(), f.sampled.clone(), &f.scenario.tracked.store, cfg)
}

fn durable_cfg(dir: &std::path::Path, faults: DurabilityFaultPlan) -> Option<DurabilityConfig> {
    Some(DurabilityConfig {
        wal_dir: dir.to_path_buf(),
        snapshot_every: 64,
        sync_every: 16,
        faults,
    })
}

fn specs(f: &Fixture, n: usize, seed: u64) -> Vec<QuerySpec> {
    f.scenario
        .make_queries(n, 0.15, 1_500.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            // Also query *inside* the ingested era so the new events matter.
            [
                QueryKind::Snapshot(t0),
                QueryKind::Snapshot(10_500.0),
                QueryKind::Transient(t0, 11_000.0),
                QueryKind::Static(t1, 10_800.0),
            ]
            .into_iter()
            .map(move |kind| QuerySpec {
                region: region.clone(),
                kind,
                approx: Approximation::Lower,
                deadline: None,
            })
        })
        .collect()
}

/// The synchronous oracle over an explicitly maintained store.
fn sync_value(f: &Fixture, oracle: &FormStore, spec: &QuerySpec) -> Option<f64> {
    let covered = match spec.approx {
        Approximation::Lower => f.sampled.resolve_lower(&spec.region.junctions),
        Approximation::Upper => f.sampled.resolve_upper(&spec.region.junctions),
    };
    if covered.is_empty() {
        return None;
    }
    let boundary = f.scenario.sensing.boundary_of(&covered, Some(f.sampled.monitored()));
    Some(evaluate(oracle, &boundary, spec.kind))
}

#[test]
fn kill_mid_ingest_recovers_byte_identical_state() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let events = stream(ne, 900);
    let ns = 3;

    // Reference run: same stream, no faults, no durability — its final
    // shard digests are the uninterrupted truth.
    let rt_ref = runtime(f, RuntimeConfig { num_shards: ns, ..RuntimeConfig::default() });
    for &c in &events {
        rt_ref.ingest(c).expect("ingest");
    }
    rt_ref.flush_ingest();
    let want = rt_ref.shard_digests();
    rt_ref.shutdown();

    // Killed run: durability on, two scheduled kill -9s on shard 0 — one
    // mid-batch, one after a flush barrier so it provably fires live.
    let dir = tmpdir("kill");
    let faults = DurabilityFaultPlan::killing(0xfeed_beef, &[(0, 50), (0, 220)]);
    let rt = runtime(
        f,
        RuntimeConfig {
            num_shards: ns,
            durability: durable_cfg(&dir, faults),
            ..RuntimeConfig::default()
        },
    );
    let (first, rest) = events.split_at(events.len() / 2);
    for &c in first {
        rt.ingest(c).expect("ingest");
    }
    // Barrier: the respawned worker answers the flush, so this both proves
    // the first kill was survived and lines the lanes up for the second.
    let applied = rt.flush_ingest();
    assert_eq!(applied.iter().sum::<u64>(), first.len() as u64);
    for &c in rest {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();

    assert_eq!(rt.shard_digests(), want, "recovered state must be byte-identical");
    assert!(
        rt.shard_health().iter().all(|h| *h == ShardHealth::Healthy),
        "all shards re-admitted after recovery"
    );
    let report = rt.metrics().report();
    assert!(report.shard_respawns >= 2, "both scheduled kills must fire: {report}");
    assert!(report.wal_replayed + report.redo_replayed > 0, "recovery must replay something");
    assert_eq!(report.recovering, 0);
    // Live ingests plus redo replays cover the stream (they overlap on the
    // events the dead worker applied past the durable floor) and dedup
    // keeps live ingests from exceeding it.
    assert!(report.ingested <= events.len() as u64);
    assert!(report.ingested + report.redo_replayed >= events.len() as u64);
    assert!(report.snapshots_taken > 0, "stream is long enough to roll snapshots");
    rt.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_restart_from_disk_matches_memory() {
    // No faults at all: durable state written by one runtime equals the
    // in-memory truth record for record (covers WAL + snapshot + replay on
    // the happy path, through the public API).
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let events = stream(ne, 300);
    let dir = tmpdir("clean");
    let rt = runtime(
        f,
        RuntimeConfig {
            num_shards: 2,
            durability: durable_cfg(&dir, DurabilityFaultPlan::none()),
            ..RuntimeConfig::default()
        },
    );
    for &c in &events {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();
    let want = rt.shard_digests();
    rt.shutdown();

    for (shard, &live) in want.iter().enumerate() {
        let rec = stq_durability::recover_shard(&dir, shard, 64, 16).unwrap();
        assert_eq!(rec.digest(), live, "disk state must equal the live shard digest");
        assert!(!rec.report.torn_tail && !rec.report.seq_break);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn post_recovery_answers_bracket_the_oracle() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let events = stream(ne, 600);

    let mut oracle = f.scenario.tracked.store.clone();
    for c in &events {
        oracle.record(c.edge, c.forward, c.time);
    }

    let dir = tmpdir("bracket");
    let faults = DurabilityFaultPlan::killing(0x0dd_cafe, &[(0, 40), (1, 70)]);
    let rt = runtime(
        f,
        RuntimeConfig {
            num_shards: 3,
            durability: durable_cfg(&dir, faults),
            ..RuntimeConfig::default()
        },
    );
    for &c in &events {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();

    let mut exact_seen = 0usize;
    for spec in specs(f, 6, 71) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, &oracle, &spec) else {
            assert!(served.miss);
            continue;
        };
        assert!(
            served.lower <= exact + 1e-9 && exact <= served.upper + 1e-9,
            "post-recovery bounds [{}, {}] must bracket oracle {exact} (coverage {})",
            served.lower,
            served.upper,
            served.coverage
        );
        if served.coverage == 1.0 {
            exact_seen += 1;
            assert_eq!(
                served.value.to_bits(),
                exact.to_bits(),
                "full coverage after recovery must be bit-identical to the oracle"
            );
        }
    }
    assert!(exact_seen > 0, "healthy recovered shards must serve exact answers");
    assert!(rt.metrics().report().shard_respawns >= 1);
    rt.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_panics_escalate_then_heal() {
    // Shard 0's sensor firmware panics on its first 6 queries (a persistent
    // fault window, not per-message bad luck). With panic_threshold = 2 the
    // worker escalates after two back-to-back panics; the supervisor
    // respawns it with the fault clock carried over, so the window burns
    // down across incarnations and serving then returns to exact.
    let f = fixture();
    let cfg = RuntimeConfig {
        num_shards: 2,
        dispatchers: 1,
        shard_timeout: Duration::from_millis(50),
        max_retries: 1,
        fault: FaultPlan::none().with_poison_window(CrashWindow {
            node: 0,
            after_messages: 0,
            lasts_messages: 6,
        }),
        panic_threshold: 2,
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let oracle = &f.scenario.tracked.store;

    let all: Vec<QuerySpec> =
        specs(f, 8, 91).into_iter().filter(|s| sync_value(f, oracle, s).is_some()).collect();
    assert!(all.len() >= 10, "need enough covered queries to outlast the fault window");
    let mut healed = false;
    for spec in &all {
        let served = rt.query(spec.clone());
        let exact = sync_value(f, oracle, spec).unwrap();
        assert!(
            served.lower <= exact + 1e-9 && exact <= served.upper + 1e-9,
            "every answer during escalation must stay sound"
        );
        if served.coverage == 1.0 {
            assert_eq!(served.value.to_bits(), exact.to_bits());
            healed = true;
        }
    }
    assert!(healed, "the fault window must end and exact serving resume");
    // Wait out any recovery still in flight, then the healed shard must
    // serve exactly again.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !rt.shard_health().iter().all(|h| *h == ShardHealth::Healthy) {
        assert!(std::time::Instant::now() < deadline, "recovery must finish promptly");
        std::thread::sleep(Duration::from_millis(2));
    }
    let served = rt.query(all[0].clone());
    assert_eq!(served.coverage, 1.0, "healed shard must serve again");

    let report = rt.metrics().report();
    assert!(report.escalations >= 1, "consecutive panics must escalate: {report}");
    assert!(report.shard_respawns >= 1, "escalated worker must be respawned");
    assert!(report.escalations <= report.shard_panics, "escalation only after repeated panics");
    assert!(rt.metrics().report().recovering == 0);
    assert!(rt.shard_health().iter().all(|h| *h == ShardHealth::Healthy));
    rt.shutdown();
}

#[test]
fn queries_during_recovery_stay_sound_and_fast() {
    // A permanently-poisoned shard 0 with escalation enabled cycles through
    // unhealthy → recovering → healthy → poisoned again. Queries issued
    // throughout must neither hang nor return unsound values: a skipped or
    // panicking shard degrades the answer to its worst-case interval.
    let f = fixture();
    let cfg = RuntimeConfig {
        num_shards: 2,
        dispatchers: 2,
        shard_timeout: Duration::from_secs(2),
        max_retries: 1,
        fault: FaultPlan::none().with_poison(1.0),
        panic_threshold: 1,
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let oracle = &f.scenario.tracked.store;
    let start = std::time::Instant::now();
    let mut covered = 0usize;
    for spec in specs(f, 5, 103) {
        let served = rt.query(spec.clone());
        let Some(exact) = sync_value(f, oracle, &spec) else {
            continue;
        };
        covered += 1;
        assert!(served.degraded, "poisoned shards cannot produce exact answers");
        assert!(served.lower <= exact + 1e-9 && exact <= served.upper + 1e-9);
    }
    assert!(covered > 0);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "escalation + health pruning must avoid serial timeout waits"
    );
    let report = rt.metrics().report();
    assert!(report.escalations >= 1);
    assert!(report.shard_respawns >= 1);
    rt.shutdown();
}
