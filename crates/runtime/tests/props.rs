//! Property tests: fault-injected answers always bracket the synchronous
//! value, and fault-free (full-coverage) runs reproduce it bit for bit.

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_runtime::{FaultPlan, QuerySpec, Runtime, RuntimeConfig};

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let scenario = Scenario::build(ScenarioConfig {
            junctions: 140,
            mix: WorkloadMix { random_waypoint: 14, commuter: 8, transit: 4 },
            seed: 61,
            ..Default::default()
        });
        let cands = scenario.sensing.sensor_candidates();
        let ids =
            stq_sampling::sample(stq_sampling::SamplingMethod::KdTree, &cands, cands.len() / 4, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let sampled =
            SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
        Fixture { scenario, sampled }
    })
}

fn sync_value(f: &Fixture, spec: &QuerySpec) -> Option<f64> {
    let covered = match spec.approx {
        Approximation::Lower => f.sampled.resolve_lower(&spec.region.junctions),
        Approximation::Upper => f.sampled.resolve_upper(&spec.region.junctions),
    };
    if covered.is_empty() {
        return None;
    }
    let boundary = f.scenario.sensing.boundary_of(&covered, Some(f.sampled.monitored()));
    Some(evaluate(&f.scenario.tracked.store, &boundary, spec.kind))
}

fn specs_for(f: &Fixture, frac: f64, seed: u64, upper: bool) -> Vec<QuerySpec> {
    let approx = if upper { Approximation::Upper } else { Approximation::Lower };
    f.scenario
        .make_queries(2, frac, 1_200.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1), QueryKind::Static(t0, t1)]
                .into_iter()
                .map(move |kind| QuerySpec { region: region.clone(), kind, approx, deadline: None })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under arbitrary (seeded) message loss and duplication, every served
    /// answer brackets the synchronous path's value, with an honest
    /// coverage fraction; full-coverage answers are exact to the bit.
    #[test]
    fn faulty_answers_bracket_the_sync_value(
        fault_seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.6,
        dup_p in 0.0f64..0.3,
        shards in 1usize..6,
        frac in 0.08f64..0.3,
        query_seed in 0u64..10_000,
        upper in proptest::prelude::any::<bool>(),
    ) {
        let f = fixture();
        let cfg = RuntimeConfig {
            num_shards: shards,
            dispatchers: 2,
            shard_timeout: Duration::from_millis(3),
            max_retries: 2,
            fault: FaultPlan::lossy(fault_seed, drop_p, 0.0, dup_p, 0),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(
            f.scenario.sensing.clone(),
            f.sampled.clone(),
            &f.scenario.tracked.store,
            cfg,
        );
        for spec in specs_for(f, frac, query_seed, upper) {
            let served = rt.query(spec.clone());
            match sync_value(f, &spec) {
                None => prop_assert!(served.miss),
                Some(exact) => {
                    prop_assert!(!served.miss);
                    prop_assert!((0.0..=1.0).contains(&served.coverage));
                    prop_assert!(
                        served.lower <= exact && exact <= served.upper,
                        "[{}, {}] must bracket {exact} (coverage {})",
                        served.lower, served.upper, served.coverage
                    );
                    prop_assert!(served.lower <= served.value && served.value <= served.upper);
                    if served.coverage == 1.0 {
                        prop_assert_eq!(served.value.to_bits(), exact.to_bits());
                        prop_assert!(!served.degraded);
                    } else {
                        prop_assert!(served.degraded);
                    }
                }
            }
        }
        rt.shutdown();
    }

    /// Without faults the runtime is a drop-in replacement for the
    /// synchronous path regardless of shard count or thread interleaving:
    /// same values, bit for bit, on every run.
    #[test]
    fn fault_free_runs_are_deterministic_across_shard_counts(
        frac in 0.1f64..0.3,
        query_seed in 0u64..10_000,
    ) {
        let f = fixture();
        let mut reference: Option<Vec<u64>> = None;
        for shards in [1usize, 4] {
            let rt = Runtime::new(
                f.scenario.sensing.clone(),
                f.sampled.clone(),
                &f.scenario.tracked.store,
                RuntimeConfig { num_shards: shards, ..RuntimeConfig::default() },
            );
            let bits: Vec<u64> = specs_for(f, frac, query_seed, false)
                .into_iter()
                .map(|spec| {
                    let served = rt.query(spec.clone());
                    if let Some(exact) = sync_value(f, &spec) {
                        prop_assert_eq!(served.value.to_bits(), exact.to_bits());
                        prop_assert_eq!(served.coverage, 1.0);
                    }
                    Ok(served.value.to_bits())
                })
                .collect::<Result<_, _>>()?;
            match &reference {
                None => reference = Some(bits),
                Some(prev) => prop_assert_eq!(prev, &bits, "shard count changed the answer"),
            }
            rt.shutdown();
        }
    }
}
