//! Integration tests of the overload-control subsystem: cost-based
//! admission, deadline propagation, brownout precision shedding, and
//! per-shard circuit breakers. Every degraded answer is checked against the
//! synchronous oracle — shedding trades precision, never soundness.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_forms::FormStore;
use stq_runtime::{
    BreakerConfig, BrownoutConfig, CrashWindow, FaultPlan, OverloadConfig, QuerySpec, Runtime,
    RuntimeConfig,
};

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let scenario = Scenario::build(ScenarioConfig {
            junctions: 180,
            mix: WorkloadMix { random_waypoint: 20, commuter: 12, transit: 6 },
            seed: 41,
            ..Default::default()
        });
        let cands = scenario.sensing.sensor_candidates();
        let ids = stq_sampling::sample(
            stq_sampling::SamplingMethod::QuadTree,
            &cands,
            cands.len() / 4,
            7,
        );
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let sampled =
            SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
        Fixture { scenario, sampled }
    })
}

fn store(f: &Fixture) -> &FormStore {
    &f.scenario.tracked.store
}

fn runtime(f: &Fixture, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(f.scenario.sensing.clone(), f.sampled.clone(), store(f), cfg)
}

fn sync_value(f: &Fixture, spec: &QuerySpec) -> Option<f64> {
    let covered = match spec.approx {
        Approximation::Lower => f.sampled.resolve_lower(&spec.region.junctions),
        Approximation::Upper => f.sampled.resolve_upper(&spec.region.junctions),
    };
    if covered.is_empty() {
        return None;
    }
    let boundary = f.scenario.sensing.boundary_of(&covered, Some(f.sampled.monitored()));
    Some(evaluate(store(f), &boundary, spec.kind))
}

fn boundary_len(f: &Fixture, spec: &QuerySpec) -> usize {
    let covered = f.sampled.resolve_lower(&spec.region.junctions);
    if covered.is_empty() {
        return 0;
    }
    f.scenario.sensing.boundary_of(&covered, Some(f.sampled.monitored())).len()
}

/// A covered query with a non-trivial boundary (≥ `min_boundary` edges), so
/// strided shedding and fan-out are actually exercised.
fn covered_spec(f: &Fixture, min_boundary: usize, seed: u64) -> QuerySpec {
    f.scenario
        .make_queries(24, 0.2, 1_500.0, seed)
        .into_iter()
        .map(|(region, t0, t1)| {
            QuerySpec::new(region, QueryKind::Transient(t0, t1), Approximation::Lower)
        })
        .find(|s| sync_value(f, s).is_some() && boundary_len(f, s) >= min_boundary)
        .expect("the scenario must yield a covered region with a real boundary")
}

fn assert_sound(f: &Fixture, spec: &QuerySpec, lower: f64, upper: f64, what: &str) {
    let exact = sync_value(f, spec).expect("covered spec");
    assert!(
        lower <= exact + 1e-12 && exact <= upper + 1e-12,
        "{what}: bounds [{lower}, {upper}] must bracket sync value {exact}"
    );
}

/// Overload config with only the admission gate active (brownout and
/// breakers parked far out of reach).
fn gate_only(max_inflight_cost: f64) -> OverloadConfig {
    OverloadConfig {
        max_inflight_cost,
        default_deadline: None,
        brownout: BrownoutConfig {
            queue_high: usize::MAX,
            queue_low: 0,
            p95_high_us: u64::MAX,
            p95_low_us: 0,
            dwell: u32::MAX,
            window: 8,
        },
        breaker: BreakerConfig { failure_threshold: 0, ..BreakerConfig::default() },
    }
}

/// A runtime whose single shard sleeps ~1 ms per boundary edge on every
/// request: queries take tens of milliseconds, so a short submission burst
/// reliably fills a capacity-1 queue.
fn slow_runtime(f: &Fixture, queue_capacity: usize) -> Runtime {
    runtime(
        f,
        RuntimeConfig {
            num_shards: 1,
            dispatchers: 1,
            queue_capacity,
            shard_timeout: Duration::from_secs(5),
            max_retries: 0,
            fault: FaultPlan::lossy(5, 0.0, 1.0, 0.0, 1),
            overload: Some(gate_only(f64::INFINITY)),
            ..RuntimeConfig::default()
        },
    )
}

#[test]
fn zero_capacity_gate_rejects_try_submit_but_not_submit() {
    let f = fixture();
    let rt = runtime(
        f,
        RuntimeConfig { num_shards: 2, overload: Some(gate_only(0.0)), ..RuntimeConfig::default() },
    );
    let spec = covered_spec(f, 1, 61);

    // Every try_submit bounces off the zero-capacity gate before any work.
    for _ in 0..3 {
        let rej = rt.try_submit(spec.clone()).err().expect("gate must reject");
        assert!(rej.retry_after >= Duration::from_millis(2), "floor on the backoff hint");
        assert!(rej.retry_after <= Duration::from_millis(250), "cap on the backoff hint");
    }
    // The blocking path does not consult the gate: classic behavior intact.
    let served = rt.query(spec.clone());
    assert!(!served.miss && !served.expired);
    assert_eq!(served.coverage, 1.0);
    assert_eq!(
        served.value.to_bits(),
        sync_value(f, &spec).unwrap().to_bits(),
        "blocking submit still serves exactly under a closed gate"
    );

    let report = rt.metrics().report();
    assert_eq!(report.admission_rejected, 3);
    assert_eq!(report.queries, 1, "rejected queries never reach a dispatcher");
    assert_eq!(report.shard_requests, served.shards as u64);
}

#[test]
fn full_queue_rejects_try_submit_while_submit_blocks() {
    let f = fixture();
    let rt = slow_runtime(f, 1);
    let spec = covered_spec(f, 8, 61);
    let exact = sync_value(f, &spec).unwrap();

    // Burst faster than the slowed shard can drain: 1 executing + 1 queued,
    // the rest must come back Rejected with a backoff hint.
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..12 {
        match rt.try_submit(spec.clone()) {
            Ok(pending) => accepted.push(pending),
            Err(rej) => {
                rejected += 1;
                assert!(rej.retry_after >= Duration::from_millis(2));
            }
        }
    }
    assert!(!accepted.is_empty(), "the first submission must be admitted");
    assert!(rejected > 0, "a capacity-1 queue must reject most of a 12-burst");

    // Everything admitted completes exactly; nothing is lost or widened.
    for pending in accepted {
        let served = pending.wait();
        assert!(!served.expired && !served.degraded);
        assert_eq!(served.value.to_bits(), exact.to_bits());
    }
    // The classic blocking submit waits out the same full queue instead.
    let served = rt.query(spec.clone());
    assert_eq!(served.value.to_bits(), exact.to_bits());

    let report = rt.metrics().report();
    assert_eq!(report.admission_rejected, rejected as u64);
    assert_eq!(report.deadline_expired, 0);
    rt.shutdown();
}

#[test]
fn blocking_submit_expires_on_a_full_queue_when_given_a_budget() {
    let f = fixture();
    let rt = slow_runtime(f, 1);
    let spec = covered_spec(f, 8, 61);

    // Saturate: one query executing (~10+ ms), one parked in the queue.
    let busy: Vec<_> = (0..2).map(|_| rt.submit(spec.clone())).collect();
    // A budgeted submit cannot take a queue slot in time: it must come back
    // expired — with a sound worst-case bracket — instead of blocking.
    let start = Instant::now();
    let served = rt.query(spec.clone().with_budget(Duration::from_millis(3)));
    assert!(served.expired, "the deadline must fire before a slot frees up");
    assert_eq!(served.shards, 0, "an expired query must not fan out");
    assert!(served.degraded);
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "an expired submit must not wait out the queue"
    );
    assert_sound(f, &spec, served.lower, served.upper, "expired-on-queue answer");

    for pending in busy {
        assert!(!pending.wait().expired, "unbudgeted queries are untouched");
    }
    assert!(rt.metrics().report().deadline_expired >= 1);
    rt.shutdown();
}

#[test]
fn expired_deadline_job_never_reaches_a_shard() {
    let f = fixture();
    // Overload control off entirely: deadlines are honored independently.
    let rt = runtime(f, RuntimeConfig { num_shards: 3, ..RuntimeConfig::default() });
    let spec = covered_spec(f, 1, 61);

    let served = rt.query(spec.clone().with_budget(Duration::ZERO));
    assert!(served.expired);
    assert!(served.degraded);
    assert_eq!(served.shards, 0);
    assert_eq!(served.coverage, 0.0);
    assert_sound(f, &spec, served.lower, served.upper, "expired-at-submit answer");

    let report = rt.metrics().report();
    assert_eq!(report.shard_requests, 0, "no shard may ever see the expired job");
    assert_eq!(report.deadline_expired, 1);
    assert_eq!(report.queries, 1, "expired answers still count and trace");
    let traces = rt.metrics().recent_traces();
    assert!(traces.iter().any(|t| t.expired));
    rt.shutdown();
}

#[test]
fn breaker_trips_skips_probes_and_recovers() {
    let f = fixture();
    // Shard 0 silently swallows its first two deliveries (a crash window the
    // health checks cannot see), then recovers. With a failure threshold of
    // 1 the first timeout trips the breaker.
    let cfg = RuntimeConfig {
        num_shards: 2,
        dispatchers: 1,
        shard_timeout: Duration::from_millis(5),
        max_retries: 0,
        fault: FaultPlan::none().with_crash(CrashWindow {
            node: 0,
            after_messages: 0,
            lasts_messages: 2,
        }),
        overload: Some(OverloadConfig {
            breaker: BreakerConfig { failure_threshold: 1, open_for: Duration::from_millis(40) },
            ..gate_only(f64::INFINITY)
        }),
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let spec = covered_spec(f, 8, 61);
    let exact = sync_value(f, &spec).unwrap();

    // 1. First query times out on shard 0 → breaker trips open.
    let first = rt.query(spec.clone());
    assert!(first.degraded, "the crashed shard's edges must degrade");
    assert_sound(f, &spec, first.lower, first.upper, "tripping query");

    // 2. While open (before open_for elapses) shard 0 is skipped outright:
    //    the answer degrades instantly instead of waiting out a timeout.
    let start = Instant::now();
    let skipped = rt.query(spec.clone());
    assert!(skipped.degraded);
    assert!(
        start.elapsed() < Duration::from_millis(5),
        "an open breaker must not wait out the shard timeout"
    );
    assert_sound(f, &spec, skipped.lower, skipped.upper, "breaker-skipped query");

    // 3. After open_for, one probe is let through half-open. The shard is
    //    still inside its crash window (second delivery) → re-opens.
    std::thread::sleep(Duration::from_millis(60));
    let probe_fail = rt.query(spec.clone());
    assert!(probe_fail.degraded);
    assert_sound(f, &spec, probe_fail.lower, probe_fail.upper, "failed probe");

    // 4. Next probe finds the shard recovered → breaker closes, answers are
    //    exact again.
    std::thread::sleep(Duration::from_millis(60));
    let recovered = rt.query(spec.clone());
    assert!(!recovered.degraded, "the closed breaker must serve shard 0 again");
    assert_eq!(recovered.coverage, 1.0);
    assert_eq!(recovered.value.to_bits(), exact.to_bits());

    let report = rt.metrics().report();
    assert!(report.breaker_opened >= 2, "trip + failed-probe re-open");
    assert!(report.breaker_half_open >= 2, "two probes were admitted");
    assert!(report.breaker_closed >= 1, "the successful probe must close");
    assert!(report.breaker_skipped >= 1, "step 2 skipped the open shard");
    rt.shutdown();
}

#[test]
fn brownout_escalates_to_full_shed_with_sound_brackets() {
    let f = fixture();
    // A hair-trigger controller: any observation is hot (p95 ≥ 1 µs), dwell
    // 1, queue watermarks out of the way — each served query escalates one
    // level until the full shed at level 3.
    let cfg = RuntimeConfig {
        num_shards: 2,
        dispatchers: 1,
        overload: Some(OverloadConfig {
            max_inflight_cost: f64::INFINITY,
            default_deadline: None,
            brownout: BrownoutConfig {
                queue_high: usize::MAX,
                queue_low: 0,
                p95_high_us: 1,
                p95_low_us: 0,
                dwell: 1,
                window: 4,
            },
            breaker: BreakerConfig { failure_threshold: 0, ..BreakerConfig::default() },
        }),
        ..RuntimeConfig::default()
    };
    let rt = runtime(f, cfg);
    let spec = covered_spec(f, 8, 61);

    let answers: Vec<_> = (0..8).map(|_| rt.query(spec.clone())).collect();
    for (i, served) in answers.iter().enumerate() {
        assert_sound(f, &spec, served.lower, served.upper, &format!("brownout answer {i}"));
        assert!(served.value >= served.lower - 1e-12 && served.value <= served.upper + 1e-12);
        if served.brownout == 0 {
            assert_eq!(served.coverage, 1.0);
        }
    }
    // The ladder was climbed: full precision, strided, and fully shed
    // answers all appear in the sequence.
    assert!(answers.iter().any(|a| a.brownout == 0));
    let strided = answers.iter().find(|a| (1..=2).contains(&a.brownout)).expect("a strided answer");
    assert!(strided.degraded && strided.coverage < 1.0, "a stride skips boundary edges");
    let shed = answers.iter().find(|a| a.brownout == 3).expect("a fully shed answer");
    assert_eq!(shed.shards, 0, "level 3 must not fan out at all");
    assert_eq!(shed.coverage, 0.0);

    let report = rt.metrics().report();
    assert!(report.downgraded >= 1, "strided answers count as downgraded");
    assert!(report.shed >= 1, "level-3 answers count as shed");
    assert!(report.brownout_shifts >= 3, "the controller shifted 0→1→2→3");
    assert!(rt.metrics().recent_traces().iter().any(|t| t.brownout > 0));
    rt.shutdown();
}
