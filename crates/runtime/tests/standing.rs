//! End-to-end standing-query tests of the supervised runtime: a
//! subscription's delta-maintained `[lower, upper]` bracket must stay
//! **bit-identical** to re-executing the same region as a snapshot query
//! through the sharded path — after every ingest batch, across forced
//! re-snapshot epochs, through quarantined boundaries, and across a shard
//! killed and recovered mid-stream.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use stq_core::prelude::*;
use stq_core::tracker::Crossing;
use stq_runtime::{
    DurabilityConfig, DurabilityFaultPlan, QuerySpec, Runtime, RuntimeConfig, ShardHealth,
    SubscribeError, SubscriptionHandle, UpdateCause,
};

/// Any finite instant past every event the tests ingest: a snapshot there
/// counts net live occupancy, which is exactly what a standing bracket
/// tracks.
const T_LATE: f64 = 1.0e12;

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIX.get_or_init(|| build_fixture(seed_from_env()))
}

fn build_fixture(seed: u64) -> Fixture {
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 140,
        mix: WorkloadMix { random_waypoint: 14, commuter: 8, transit: 4 },
        seed,
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids =
        stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, cands.len() / 4, 5);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
    Fixture { scenario, sampled }
}

fn seed_from_env() -> u64 {
    std::env::var("STQ_STANDING_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(53)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "stq-rt-standing-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Strictly monotone ingest stream over every sensed edge (standing_props
/// exercises late/rejected events at the registry layer; here the stream is
/// clean so both clean and durable runtimes accept every event).
fn stream(num_edges: usize, n: usize) -> Vec<Crossing> {
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.25,
            edge: i % num_edges,
            forward: i % 3 != 0,
        })
        .collect()
}

fn runtime(f: &Fixture, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(f.scenario.sensing.clone(), f.sampled.clone(), &f.scenario.tracked.store, cfg)
}

/// Every `stride`-th monitored edge — the same shape of quarantine list the
/// audit hands `Runtime::with_quarantine`.
fn quarantine_list(f: &Fixture, stride: usize) -> Vec<usize> {
    (0..f.scenario.sensing.num_edges())
        .filter(|&e| f.sampled.monitored()[e])
        .step_by(stride)
        .collect()
}

/// Registers one subscription per region, alternating approximations, and
/// returns the live handles (unresolvable regions are skipped — both paths
/// refuse them identically, which `subscribe_rejects_unresolvable` pins).
fn register(
    rt: &Runtime,
    f: &Fixture,
    n: usize,
    seed: u64,
) -> Vec<(SubscriptionHandle, QuerySpec)> {
    f.scenario
        .make_queries(n, 0.15, 1_500.0, seed)
        .into_iter()
        .enumerate()
        .filter_map(|(i, (region, _, _))| {
            let approx = if i % 2 == 0 { Approximation::Lower } else { Approximation::Upper };
            let spec = QuerySpec::new(region.clone(), QueryKind::Snapshot(T_LATE), approx);
            rt.subscribe(region, approx).ok().map(|h| (h, spec))
        })
        .collect()
}

/// The heart of the suite: the delta-maintained bracket must equal the
/// re-executed snapshot **bitwise** (value, lower, and upper all fold the
/// same integers in the same order, so IEEE equality is exact, not ±ε).
fn assert_matches_reexecution(rt: &Runtime, subs: &[(SubscriptionHandle, QuerySpec)], ctx: &str) {
    for (h, spec) in subs {
        let b = rt.standing_bracket(h.id).expect("subscription is live");
        let served = rt.query(spec.clone());
        assert!(!served.miss, "{ctx}: registered region cannot miss");
        for (name, delta, reexec) in [
            ("value", b.value, served.value),
            ("lower", b.lower, served.lower),
            ("upper", b.upper, served.upper),
        ] {
            assert_eq!(
                delta.to_bits(),
                reexec.to_bits(),
                "{ctx}: {} {name} diverged: delta-maintained {delta} vs re-executed {reexec} \
                 (epoch {}, {} deltas)",
                h.id,
                b.epoch,
                b.deltas
            );
        }
    }
}

/// Clean and quarantined runtimes, checked after every ingest batch and
/// across a forced re-snapshot epoch. `STQ_STANDING_SEED` re-seeds the whole
/// fixture (CI runs 3 seeds).
#[test]
fn standing_equivalence_suite() {
    let f = &build_fixture(seed_from_env());
    for quarantined in [vec![], quarantine_list(f, 5)] {
        let cfg = RuntimeConfig { num_shards: 3, ..RuntimeConfig::default() };
        let rt = Runtime::with_quarantine(
            f.scenario.sensing.clone(),
            f.sampled.clone(),
            &f.scenario.tracked.store,
            cfg,
            &quarantined,
        );
        let ctx = if quarantined.is_empty() { "clean" } else { "quarantined" };
        let subs = register(&rt, f, 6, 29);
        assert!(subs.len() >= 2, "{ctx}: fixture must resolve some regions");
        // Baseline (zero deltas) must already agree with the query path.
        assert_matches_reexecution(&rt, &subs, ctx);

        let events = stream(f.scenario.sensing.num_edges(), 600);
        for (tick, batch) in events.chunks(150).enumerate() {
            for &c in batch {
                rt.ingest(c).expect("ingest");
            }
            rt.flush_ingest();
            assert_matches_reexecution(&rt, &subs, &format!("{ctx} tick {tick}"));
        }
        let stats = rt.subscription_stats();
        assert!(stats.deltas_applied > 0, "{ctx}: the stream must move some brackets");

        // Forced epoch: the re-snapshot recomputes every bracket from the
        // mirror and must land on the same bits the deltas accumulated.
        let before = rt.standing_brackets();
        rt.resnapshot_subscriptions();
        for ((id, old), (id2, new)) in before.iter().zip(rt.standing_brackets()) {
            assert_eq!(*id, id2);
            assert_eq!(old.value.to_bits(), new.value.to_bits(), "{ctx}: {id} resnapshot value");
            assert_eq!(old.lower.to_bits(), new.lower.to_bits(), "{ctx}: {id} resnapshot lower");
            assert_eq!(old.upper.to_bits(), new.upper.to_bits(), "{ctx}: {id} resnapshot upper");
            assert_eq!(new.epoch, old.epoch + 1);
            assert_eq!(new.deltas, 0, "{ctx}: re-snapshot resets the delta count");
        }
        assert_matches_reexecution(&rt, &subs, &format!("{ctx} post-resnapshot"));
        rt.shutdown();
    }
}

/// A shard killed mid-stream (kill -9, torn WAL tail) forces the supervisor
/// through recovery; the health flip must arrive with a new subscription
/// epoch, and the re-snapshotted brackets must still match re-execution.
#[test]
fn recovery_bumps_epoch_and_brackets_stay_identical() {
    let f = fixture();
    let dir = tmpdir("kill");
    let faults = DurabilityFaultPlan::killing(0xfeed_beef, &[(0, 60)]);
    let rt = runtime(
        f,
        RuntimeConfig {
            num_shards: 3,
            durability: Some(DurabilityConfig {
                wal_dir: dir.clone(),
                snapshot_every: 64,
                sync_every: 16,
                faults,
            }),
            ..RuntimeConfig::default()
        },
    );
    let subs = register(&rt, f, 6, 31);
    assert!(subs.len() >= 2);
    let epoch0 = rt.subscription_stats().epoch;

    for &c in &stream(f.scenario.sensing.num_edges(), 500) {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();

    let report = rt.metrics().report();
    assert!(report.shard_respawns >= 1, "the scheduled kill must fire: {report}");
    assert!(
        rt.shard_health().iter().all(|h| *h == ShardHealth::Healthy),
        "shard re-admitted after recovery"
    );
    let stats = rt.subscription_stats();
    assert!(
        stats.epoch > epoch0,
        "recovery must advance the subscription epoch ({} -> {})",
        epoch0,
        stats.epoch
    );
    assert!(stats.resnapshots >= subs.len() as u64, "every bracket re-snapshots on recovery");
    assert!(report.sub_resnapshots >= subs.len() as u64, "metrics mirror the registry: {report}");
    assert_matches_reexecution(&rt, &subs, "post-recovery");

    // The push channels saw the whole story: a baseline, live deltas, and
    // the recovery re-snapshot.
    let mut causes: Vec<UpdateCause> = Vec::new();
    while let Ok(u) = subs[0].0.updates.try_recv() {
        causes.push(u.cause);
    }
    assert_eq!(causes.first(), Some(&UpdateCause::Registered));
    assert!(causes.contains(&UpdateCause::Resnapshot), "recovery must push re-snapshots");
    rt.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Degraded-mode certification tightens quarantined standing brackets
/// without ever excluding the clean answer, and the delta/re-snapshot
/// lockstep stays bitwise exact with certificates installed.
#[test]
fn certified_intervals_tighten_standing_brackets() {
    let f = fixture();
    let quarantined = quarantine_list(f, 5);
    let cfg = RuntimeConfig {
        num_shards: 3,
        degraded: Some(DegradedPolicy::default()),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::with_quarantine(
        f.scenario.sensing.clone(),
        f.sampled.clone(),
        &f.scenario.tracked.store,
        cfg,
        &quarantined,
    );
    let rt_clean = runtime(f, RuntimeConfig { num_shards: 3, ..RuntimeConfig::default() });
    let subs = register(&rt, f, 6, 29);
    let subs_clean = register(&rt_clean, f, 6, 29);
    assert_eq!(subs.len(), subs_clean.len(), "same regions resolve on both runtimes");
    assert!(subs.len() >= 2);
    let before = rt.standing_brackets();

    let installed = rt.certify_standing_brackets(T_LATE);
    assert!(installed > 0, "the imputer must certify some quarantined edges");

    let mut tightened = false;
    for (((_, old), (id, new)), (hc, _)) in
        before.iter().zip(rt.standing_brackets()).zip(&subs_clean)
    {
        // Intersection only tightens…
        assert!(new.lower >= old.lower, "{id}: certification loosened the lower bound");
        assert!(new.upper <= old.upper, "{id}: certification loosened the upper bound");
        tightened |= new.lower > old.lower || new.upper < old.upper;
        // …and never excludes the clean (exact-count) bracket: the
        // certified interval contains each quarantined edge's true flow,
        // which is exactly what the clean runtime folds.
        let clean = rt_clean.standing_bracket(hc.id).expect("clean subscription is live");
        assert!(
            new.lower <= clean.lower && new.upper >= clean.upper,
            "{id}: certified bracket [{}, {}] excludes clean [{}, {}]",
            new.lower,
            new.upper,
            clean.lower,
            clean.upper
        );
    }
    assert!(tightened, "certification must strictly tighten at least one bracket");

    // With certificates installed, deltas and re-snapshots must still land
    // on identical bits: both certificate endpoints move in lockstep with
    // the worst case under new events.
    for &c in &stream(f.scenario.sensing.num_edges(), 450) {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();
    let delta_maintained = rt.standing_brackets();
    rt.resnapshot_subscriptions();
    for ((id, d), (id2, r)) in delta_maintained.iter().zip(rt.standing_brackets()) {
        assert_eq!(*id, id2);
        assert_eq!(d.value.to_bits(), r.value.to_bits(), "{id}: certified lockstep value");
        assert_eq!(d.lower.to_bits(), r.lower.to_bits(), "{id}: certified lockstep lower");
        assert_eq!(d.upper.to_bits(), r.upper.to_bits(), "{id}: certified lockstep upper");
    }

    // Ingestion invalidates the construction-time certification anchor.
    assert_eq!(rt.certify_standing_brackets(T_LATE), 0, "dirty runtimes refuse to certify");
    rt_clean.shutdown();
    rt.shutdown();
}

/// A region the sampled graph cannot cover is refused at registration — the
/// same refusal the query path reports as a miss.
#[test]
fn subscribe_rejects_unresolvable() {
    let f = fixture();
    let rt = runtime(f, RuntimeConfig { num_shards: 2, ..RuntimeConfig::default() });
    let (mut region, _, _) = f.scenario.make_queries(1, 0.1, 1_500.0, 7).remove(0);
    region.junctions.clear();
    let Err(err) = rt.subscribe(region.clone(), Approximation::Lower) else {
        panic!("empty region must be refused");
    };
    assert!(matches!(err, SubscribeError::Unresolvable));
    let served =
        rt.query(QuerySpec::new(region, QueryKind::Snapshot(T_LATE), Approximation::Lower));
    assert!(served.miss, "the query path refuses the same region");
    assert_eq!(rt.subscription_stats().subscriptions, 0);
    rt.shutdown();
}

/// Unsubscribing stops delta delivery and frees the routes; the gauge and
/// bracket accessors agree.
#[test]
fn unsubscribe_stops_updates() {
    let f = fixture();
    let rt = runtime(f, RuntimeConfig { num_shards: 2, ..RuntimeConfig::default() });
    let subs = register(&rt, f, 4, 17);
    assert!(!subs.is_empty());
    let (h, _) = &subs[0];
    assert!(rt.standing_bracket(h.id).is_some());
    assert!(rt.unsubscribe(h.id));
    assert!(!rt.unsubscribe(h.id), "second unsubscribe is a no-op");
    assert!(rt.standing_bracket(h.id).is_none());
    assert_eq!(rt.subscription_stats().subscriptions, subs.len() - 1);

    // Drain the baseline, then stream: the dead subscription stays silent.
    while h.updates.try_recv().is_ok() {}
    for &c in &stream(f.scenario.sensing.num_edges(), 200) {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();
    assert!(h.updates.try_recv().is_err(), "no pushes after unsubscribe");
    rt.shutdown();
}
