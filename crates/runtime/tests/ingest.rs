//! Ingest-path tests: malformed-event refusal, columnar batched ingest
//! being bit-identical to the sequential path, `flush_ingest` as a true
//! barrier under concurrent writers, and load-aware shard rebalancing
//! (migrations must leave answers, digests, and recovery untouched).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use stq_core::prelude::*;
use stq_core::tracker::Crossing;
use stq_runtime::{
    DurabilityConfig, DurabilityFaultPlan, IngestError, QuerySpec, RebalanceConfig, Runtime,
    RuntimeConfig, ShardHealth,
};

struct Fixture {
    scenario: Scenario,
    sampled: SampledGraph,
}

fn fixture() -> &'static Fixture {
    static FIX: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let scenario = Scenario::build(ScenarioConfig {
            junctions: 140,
            mix: WorkloadMix { random_waypoint: 14, commuter: 8, transit: 4 },
            seed: 47,
            ..Default::default()
        });
        let cands = scenario.sensing.sensor_candidates();
        let ids = stq_sampling::sample(
            stq_sampling::SamplingMethod::QuadTree,
            &cands,
            cands.len() / 4,
            5,
        );
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let sampled =
            SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
        Fixture { scenario, sampled }
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "stq-rt-ing-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn runtime(f: &Fixture, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(f.scenario.sensing.clone(), f.sampled.clone(), &f.scenario.tracked.store, cfg)
}

/// A deterministic ingest stream far past everything pre-recorded.
fn stream(num_edges: usize, n: usize) -> Vec<Crossing> {
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.25,
            edge: i % num_edges,
            forward: i % 3 != 0,
        })
        .collect()
}

/// A hotspot-skewed stream: ~80% of events land on `hot` edges that all
/// start on the same shard (`e % ns == 0`), the rest spread modulo-evenly.
fn skewed_stream(num_edges: usize, ns: usize, hot_edges: usize, n: usize) -> Vec<Crossing> {
    let hot: Vec<usize> = (0..num_edges).step_by(ns).take(hot_edges).collect();
    assert_eq!(hot.len(), hot_edges, "fixture must have enough edges");
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.25,
            edge: if i % 5 < 4 { hot[i % hot.len()] } else { i % num_edges },
            forward: i % 3 != 0,
        })
        .collect()
}

fn specs(f: &Fixture, n: usize, seed: u64) -> Vec<QuerySpec> {
    f.scenario
        .make_queries(n, 0.15, 1_500.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            [
                QueryKind::Snapshot(10_500.0),
                QueryKind::Transient(t0, 11_000.0),
                QueryKind::Static(t1, 10_800.0),
            ]
            .into_iter()
            .map(move |kind| QuerySpec {
                region: region.clone(),
                kind,
                approx: Approximation::Lower,
                deadline: None,
            })
        })
        .collect()
}

#[test]
fn malformed_events_are_refused_and_counted() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let rt = runtime(f, RuntimeConfig { num_shards: 2, ..RuntimeConfig::default() });

    assert_eq!(
        rt.ingest(Crossing { time: 10_000.0, edge: ne + 7, forward: true }),
        Err(IngestError::UnknownEdge { edge: ne + 7, num_edges: ne })
    );
    assert_eq!(
        rt.ingest(Crossing { time: f64::NAN, edge: 0, forward: true }),
        Err(IngestError::NonFiniteTime { edge: 0 })
    );
    assert_eq!(
        rt.ingest(Crossing { time: f64::INFINITY, edge: 1, forward: false }),
        Err(IngestError::NonFiniteTime { edge: 1 })
    );

    // A batch with malformed members skips (and counts) them while the
    // valid rest is applied normally.
    let batch = vec![
        Crossing { time: 10_001.0, edge: 0, forward: true },
        Crossing { time: f64::NAN, edge: 1, forward: true },
        Crossing { time: 10_002.0, edge: 2, forward: false },
        Crossing { time: 10_003.0, edge: ne, forward: true },
    ];
    let report = rt.ingest_batch(&batch);
    assert_eq!((report.accepted, report.rejected), (2, 2));
    let applied = rt.flush_ingest();
    assert_eq!(applied.iter().sum::<u64>(), 2, "only the valid events reach the shards");

    let m = rt.metrics().report();
    assert_eq!(m.ingest_rejected, 5, "every refusal must be counted: {m}");
    assert_eq!(m.ingested, 2);
    assert_eq!(m.ingest_batches, 1);
    rt.shutdown();
}

/// Runs the same stream through per-event ingest and through
/// `ingest_batch` with the given chunk sizes; shard digests, standing
/// brackets, and full-coverage answers must come out bit-identical.
fn assert_batch_matches_sequential(
    quarantined: &[usize],
    durable: bool,
    chunks: &[usize],
    n_events: usize,
) {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let events = stream(ne, n_events);
    let ns = 3;
    let mk = |dir: Option<&std::path::Path>| {
        let cfg = RuntimeConfig {
            num_shards: ns,
            durability: dir.map(|d| DurabilityConfig {
                wal_dir: d.to_path_buf(),
                snapshot_every: 64,
                sync_every: 16,
                faults: DurabilityFaultPlan::none(),
            }),
            ..RuntimeConfig::default()
        };
        Runtime::with_quarantine(
            f.scenario.sensing.clone(),
            f.sampled.clone(),
            &f.scenario.tracked.store,
            cfg,
            quarantined,
        )
    };

    let dir_seq = durable.then(|| tmpdir("seq"));
    let rt_seq = mk(dir_seq.as_deref());
    let sub_seq = rt_seq.subscribe(specs(f, 1, 9).remove(0).region, Approximation::Lower).ok();
    for &c in &events {
        rt_seq.ingest(c).expect("ingest");
    }
    rt_seq.flush_ingest();
    let want_digests = rt_seq.shard_digests();
    let want_brackets = rt_seq.standing_brackets();

    let dir_bat = durable.then(|| tmpdir("bat"));
    let rt_bat = mk(dir_bat.as_deref());
    let sub_bat = rt_bat.subscribe(specs(f, 1, 9).remove(0).region, Approximation::Lower).ok();
    assert_eq!(sub_seq.is_some(), sub_bat.is_some());
    let mut off = 0usize;
    let mut i = 0usize;
    while off < events.len() {
        let k = chunks[i % chunks.len()].max(1).min(events.len() - off);
        let report = rt_bat.ingest_batch(&events[off..off + k]);
        assert_eq!((report.accepted, report.rejected), (k, 0));
        off += k;
        i += 1;
    }
    rt_bat.flush_ingest();

    assert_eq!(rt_bat.shard_digests(), want_digests, "batch ingest must be bit-identical");
    let got_brackets = rt_bat.standing_brackets();
    assert_eq!(want_brackets.len(), got_brackets.len());
    for ((_, a), (_, b)) in want_brackets.iter().zip(&got_brackets) {
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "standing values must match");
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
    for spec in specs(f, 4, 23) {
        let a = rt_seq.query(spec.clone());
        let b = rt_bat.query(spec);
        assert_eq!(a.miss, b.miss);
        if a.coverage == 1.0 && b.coverage == 1.0 {
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "answers must match bit for bit");
        }
    }
    rt_seq.shutdown();
    rt_bat.shutdown();
    if let Some(d) = dir_seq {
        std::fs::remove_dir_all(d).ok();
    }
    if let Some(d) = dir_bat {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn batch_ingest_matches_sequential_on_clean_graph() {
    assert_batch_matches_sequential(&[], false, &[64, 1, 7, 128], 600);
}

#[test]
fn batch_ingest_matches_sequential_with_quarantine_and_durability() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let quarantined: Vec<usize> = (0..ne).step_by(17).take(8).collect();
    assert_batch_matches_sequential(&quarantined, true, &[33, 90, 5], 500);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential pin: `ingest_batch` over arbitrary chunkings is
    /// indistinguishable from N sequential `ingest` calls.
    #[test]
    fn arbitrary_chunkings_are_bit_identical(
        chunks in proptest::collection::vec(1usize..96, 1..6),
        n_events in 120usize..400,
        quarantine in proptest::prelude::any::<bool>(),
    ) {
        let quarantined: Vec<usize> = if quarantine { vec![3, 20, 57] } else { Vec::new() };
        assert_batch_matches_sequential(&quarantined, false, &chunks, n_events);
    }
}

#[test]
fn flush_is_a_true_barrier_under_concurrent_ingest() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let ns = 4;
    let rt = Arc::new(runtime(f, RuntimeConfig { num_shards: ns, ..RuntimeConfig::default() }));
    let writers = 4;
    let per_phase = 400usize;
    // Two phases per writer with a barrier between them: when the main
    // thread passes the barrier, every phase-1 event has fully dispatched,
    // so the flush that follows must observe at least all of them — while
    // phase 2 keeps ingesting concurrently with the flush itself.
    let barrier = Arc::new(Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let rt = Arc::clone(&rt);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mk = |i: usize| Crossing {
                // Per-writer disjoint edges keep per-edge times monotone
                // regardless of thread interleaving.
                time: 10_000.0 + i as f64 * 0.25,
                edge: (w + writers * (i % (ne / writers - 1))) % ne,
                forward: i % 3 != 0,
            };
            let phase1: Vec<Crossing> = (0..per_phase).map(mk).collect();
            for chunk in phase1.chunks(37) {
                let report = rt.ingest_batch(chunk);
                assert_eq!(report.rejected, 0);
            }
            barrier.wait();
            for i in 0..per_phase {
                rt.ingest(mk(per_phase + i)).expect("ingest");
            }
        }));
    }
    barrier.wait();
    let applied = rt.flush_ingest();
    let at_barrier: u64 = applied.iter().sum();
    assert!(
        at_barrier >= (writers * per_phase) as u64,
        "flush returned {at_barrier}, but {} events were ingested before it was called",
        writers * per_phase
    );
    for h in handles {
        h.join().unwrap();
    }
    let total = (writers * per_phase * 2) as u64;
    let applied = rt.flush_ingest();
    assert_eq!(applied.iter().sum::<u64>(), total, "final flush must cover every event");
    assert_eq!(rt.metrics().report().ingested, total);
    Arc::try_unwrap(rt).ok().expect("all clones joined").shutdown();
}

fn rebalance_cfg() -> RebalanceConfig {
    RebalanceConfig { check_every: 512, max_moves: 4, decay: 0.5, min_imbalance: 1.1 }
}

#[test]
fn loadaware_map_migrates_and_answers_match_modulo() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let ns = 3;
    let events = skewed_stream(ne, ns, 12, 4_000);

    let rt_mod = runtime(f, RuntimeConfig { num_shards: ns, ..RuntimeConfig::default() });
    let rt_bal = runtime(
        f,
        RuntimeConfig {
            num_shards: ns,
            rebalance: Some(rebalance_cfg()),
            ..RuntimeConfig::default()
        },
    );
    for chunk in events.chunks(64) {
        rt_mod.ingest_batch(chunk);
        rt_bal.ingest_batch(chunk);
    }
    rt_mod.flush_ingest();
    rt_bal.flush_ingest();

    assert!(rt_bal.map_epoch() > 0, "the skewed stream must trigger at least one migration");
    assert_eq!(rt_mod.map_epoch(), 0, "the modulo map never migrates");
    let m = rt_bal.metrics().report();
    assert!(m.rebalances >= 1 && m.edges_migrated >= 1, "{m}");
    assert_eq!(m.map_epoch, rt_bal.map_epoch());
    assert!(
        rt_bal.shard_health().iter().all(|h| *h == ShardHealth::Healthy),
        "migration must hand shards back healthy"
    );

    // The imbalance witness: the load-aware run spreads the routed events
    // strictly more evenly than the static modulo assignment.
    let imbalance = |loads: &[u64]| {
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        max / mean - 1.0
    };
    let im_mod = imbalance(&rt_mod.shard_loads());
    let im_bal = imbalance(&rt_bal.shard_loads());
    assert!(im_bal < im_mod, "load-aware imbalance {im_bal:.3} must beat modulo {im_mod:.3}");

    // Routing is invisible to answers: both serve the same values.
    let mut exact_seen = 0usize;
    for spec in specs(f, 5, 31) {
        let a = rt_mod.query(spec.clone());
        let b = rt_bal.query(spec);
        assert_eq!(a.miss, b.miss);
        if a.coverage == 1.0 && b.coverage == 1.0 {
            exact_seen += 1;
            assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "migrated shards must serve bit-identical answers"
            );
        }
    }
    assert!(exact_seen > 0, "healthy runs must serve full-coverage answers");
    rt_mod.shutdown();
    rt_bal.shutdown();
}

#[test]
fn migration_then_crash_then_recover_keeps_digests() {
    let f = fixture();
    let ne = f.scenario.sensing.num_edges();
    let ns = 3;
    let events = skewed_stream(ne, ns, 12, 4_000);
    let chunks: Vec<&[Crossing]> = events.chunks(64).collect();

    // Reference: same config and stream, no kill. Migrations are
    // deterministic (event-count triggers), so per-shard digests compare.
    let dir_ref = tmpdir("mig-ref");
    let mk = |dir: &std::path::Path, faults: DurabilityFaultPlan| {
        runtime(
            f,
            RuntimeConfig {
                num_shards: ns,
                rebalance: Some(rebalance_cfg()),
                durability: Some(DurabilityConfig {
                    wal_dir: dir.to_path_buf(),
                    snapshot_every: 256,
                    sync_every: 16,
                    faults,
                }),
                ..RuntimeConfig::default()
            },
        )
    };
    let rt_ref = mk(&dir_ref, DurabilityFaultPlan::none());
    for chunk in &chunks {
        rt_ref.ingest_batch(chunk);
        rt_ref.flush_ingest();
    }
    let want = rt_ref.shard_digests();
    assert!(rt_ref.map_epoch() > 0, "the reference run must migrate");
    rt_ref.shutdown();
    std::fs::remove_dir_all(&dir_ref).ok();

    // Killed run: shard 0 (the initial hotspot) dies mid-stream, after the
    // first migration has already moved edges away from it. The flush after
    // every batch keeps recovery strictly ordered before the next ingest,
    // so the migration schedule stays identical to the reference.
    let dir = tmpdir("mig-kill");
    let rt = mk(&dir, DurabilityFaultPlan::killing(0xbeef_cafe, &[(0, 900)]));
    for chunk in &chunks {
        rt.ingest_batch(chunk);
        rt.flush_ingest();
    }
    assert_eq!(rt.shard_digests(), want, "digests must survive migration + crash + recovery");
    let m = rt.metrics().report();
    assert!(m.rebalances >= 1, "migration must have happened: {m}");
    assert!(m.shard_respawns >= 1, "the kill must have fired: {m}");
    assert!(rt.shard_health().iter().all(|h| *h == ShardHealth::Healthy), "all shards re-admitted");
    rt.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
