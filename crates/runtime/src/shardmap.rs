//! Edge→shard routing maps: the single authority every layer of the
//! runtime consults to decide which shard owns an edge.
//!
//! Routing used to be a hard-coded `edge % num_shards` spread across the
//! ingest path, the query fan-out, the redo-buffer bookkeeping, and the
//! supervisor's recovery replay. That worked only because the function was
//! pure and immutable; a load-aware map that *migrates* edges needs all
//! five layers to agree on one assignment at every instant, so the mapping
//! now lives behind the [`ShardMap`] trait and is shared as a single
//! `Arc<dyn ShardMap>`.
//!
//! Two implementations:
//!
//! - [`ModuloMap`] — the classic static `e % N` (the default). Its epoch is
//!   always 0 and it never plans a rebalance.
//! - [`LoadAwareMap`] — tracks per-edge crossing rates in a decayed
//!   histogram fed from the subscription registry's lifetime-totals table
//!   (no second counter array on the hot path) and, when one shard's load
//!   runs past the configured imbalance ratio, plans a migration of its
//!   hottest edges to the least-loaded shard. Committing a migration bumps
//!   the **map epoch**; the supervisor performs the actual state hand-off
//!   and re-snapshots standing subscriptions atomically with the bump (see
//!   `crate::supervisor`).
//!
//! The map itself is lock-free on the routing path: `shard_of` is one
//! atomic load, and `record_route` two relaxed adds.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One planned edge move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// The edge to move.
    pub edge: usize,
    /// The shard currently owning it.
    pub from: usize,
    /// The shard that takes it over.
    pub to: usize,
}

/// The edge→shard routing authority. Shared by ingest, query fan-out, redo
/// bookkeeping, recovery replay, and subscription delta routing — all of
/// which must observe assignment changes atomically with the epoch bump.
pub trait ShardMap: Send + Sync {
    /// Number of shards the map routes over.
    fn num_shards(&self) -> usize;

    /// The shard currently owning `edge`.
    fn shard_of(&self, edge: usize) -> usize;

    /// Monotone epoch, bumped once per committed migration batch. A reader
    /// that re-checks `shard_of` after observing an unchanged epoch saw a
    /// consistent assignment.
    fn epoch(&self) -> u64;

    /// Accounts `events` routed to `shard` (load bookkeeping only).
    fn record_route(&self, shard: usize, events: u64);

    /// Per-shard routed-event counts since startup (the imbalance witness
    /// benchmarks report).
    fn loads(&self) -> Vec<u64>;

    /// Whether enough traffic has accrued since the last plan to make a
    /// rebalance check worthwhile. Never true for static maps.
    fn rebalance_due(&self) -> bool {
        false
    }

    /// Plans (but does not apply) a migration batch. Empty when balanced.
    fn plan_rebalance(&self) -> Vec<Migration> {
        Vec::new()
    }

    /// Applies a committed migration batch and bumps the epoch. The caller
    /// (the supervisor's migration protocol) is responsible for moving the
    /// actual shard state first; the map only flips the routing entries.
    fn commit(&self, moves: &[Migration]);
}

/// The classic static map: edge `e` lives on shard `e % N`, forever.
pub struct ModuloMap {
    num_shards: usize,
    loads: Vec<AtomicU64>,
}

impl ModuloMap {
    /// A static modulo map over `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ModuloMap { num_shards, loads: (0..num_shards).map(|_| AtomicU64::new(0)).collect() }
    }
}

impl ShardMap for ModuloMap {
    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_of(&self, edge: usize) -> usize {
        edge % self.num_shards
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn record_route(&self, shard: usize, events: u64) {
        self.loads[shard].fetch_add(events, Ordering::Relaxed);
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }

    fn commit(&self, moves: &[Migration]) {
        debug_assert!(moves.is_empty(), "a static map never plans migrations");
    }
}

/// Tuning knobs of the [`LoadAwareMap`].
#[derive(Clone, Debug)]
pub struct RebalanceConfig {
    /// Routed events between rebalance checks. The check itself is an
    /// O(num_edges) pass over the totals table, so it should amortize over
    /// thousands of events.
    pub check_every: u64,
    /// Edge moves per committed migration batch. Each batch quiesces the
    /// involved shards once, so a larger cap amortizes the hand-off.
    pub max_moves: usize,
    /// Per-check exponential decay of the per-edge rate histogram in
    /// `[0, 1)`: 0 forgets everything each window, values near 1 average
    /// over many windows. Decay is keyed on routed-event *counts*, not wall
    /// clock, so planning stays deterministic for a deterministic stream.
    pub decay: f64,
    /// Minimum `max_shard_load / mean_shard_load` ratio before a migration
    /// is planned (1.25 = tolerate 25% imbalance).
    pub min_imbalance: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig { check_every: 4096, max_moves: 32, decay: 0.5, min_imbalance: 1.25 }
    }
}

/// Decayed per-edge rate histogram, updated on each plan pass.
struct LoadWindow {
    /// Decayed crossing rate per edge.
    decayed: Vec<f64>,
    /// Lifetime totals snapshot at the previous pass; the difference is the
    /// window's traffic.
    last_totals: Vec<u64>,
}

/// A routing map that migrates hot edges toward balance.
///
/// Per-edge load is read from the subscription registry's lifetime-totals
/// table (`forward + backward` crossings), which `ingest` already maintains
/// — the map keeps no per-event counter of its own. Each `plan_rebalance`
/// pass folds the window's traffic into a decayed per-edge histogram,
/// aggregates it per shard, and when the hottest shard exceeds
/// [`RebalanceConfig::min_imbalance`] × the mean, greedily reassigns its
/// hottest edges to the least-loaded shard until the excess is gone (capped
/// at [`RebalanceConfig::max_moves`]).
pub struct LoadAwareMap {
    num_shards: usize,
    /// Current owner per edge (u32 is plenty: shards are thread counts).
    assign: Vec<AtomicU32>,
    epoch: AtomicU64,
    loads: Vec<AtomicU64>,
    /// Routed events since the last plan pass (the `rebalance_due` clock).
    routed: AtomicU64,
    cfg: RebalanceConfig,
    /// The registry's per-edge lifetime `[forward, backward]` totals.
    totals: Arc<Vec<[AtomicU64; 2]>>,
    window: Mutex<LoadWindow>,
}

impl LoadAwareMap {
    /// A load-aware map starting from the modulo assignment, accounting
    /// load against the registry's `totals` table.
    pub fn new(num_shards: usize, totals: Arc<Vec<[AtomicU64; 2]>>, cfg: RebalanceConfig) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!((0.0..1.0).contains(&cfg.decay), "decay must be in [0, 1)");
        assert!(cfg.min_imbalance >= 1.0, "min_imbalance below 1 would always trigger");
        let num_edges = totals.len();
        LoadAwareMap {
            num_shards,
            assign: (0..num_edges).map(|e| AtomicU32::new((e % num_shards) as u32)).collect(),
            epoch: AtomicU64::new(0),
            loads: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            routed: AtomicU64::new(0),
            cfg,
            totals,
            window: Mutex::new(LoadWindow {
                decayed: vec![0.0; num_edges],
                last_totals: vec![0; num_edges],
            }),
        }
    }
}

impl ShardMap for LoadAwareMap {
    fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn shard_of(&self, edge: usize) -> usize {
        match self.assign.get(edge) {
            Some(a) => a.load(Ordering::Acquire) as usize,
            // Unknown edges (rejected by ingest anyway) keep the static rule.
            None => edge % self.num_shards,
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn record_route(&self, shard: usize, events: u64) {
        self.loads[shard].fetch_add(events, Ordering::Relaxed);
        self.routed.fetch_add(events, Ordering::Relaxed);
    }

    fn loads(&self) -> Vec<u64> {
        self.loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }

    fn rebalance_due(&self) -> bool {
        self.routed.load(Ordering::Relaxed) >= self.cfg.check_every
    }

    fn plan_rebalance(&self) -> Vec<Migration> {
        let mut w = self.window.lock();
        self.routed.store(0, Ordering::Relaxed);
        let num_edges = w.decayed.len();
        // Fold the window's traffic into the decayed histogram.
        for e in 0..num_edges {
            let t = self.totals[e][0].load(Ordering::Relaxed)
                + self.totals[e][1].load(Ordering::Relaxed);
            let delta = t.saturating_sub(w.last_totals[e]) as f64;
            w.last_totals[e] = t;
            w.decayed[e] = self.cfg.decay * w.decayed[e] + delta;
        }
        // Aggregate per shard under the *current* assignment.
        let mut shard_load = vec![0.0f64; self.num_shards];
        for e in 0..num_edges {
            shard_load[self.assign[e].load(Ordering::Acquire) as usize] += w.decayed[e];
        }
        let total: f64 = shard_load.iter().sum();
        let mean = total / self.num_shards as f64;
        if mean <= 0.0 || mean.is_nan() {
            return Vec::new();
        }
        let hot = shard_load
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(s, _)| s)
            .expect("at least one shard");
        if shard_load[hot] <= self.cfg.min_imbalance * mean {
            return Vec::new();
        }
        // Hottest edges first; ties break on the edge id so planning is
        // deterministic for a deterministic stream.
        let mut hot_edges: Vec<(usize, f64)> = (0..num_edges)
            .filter(|&e| self.assign[e].load(Ordering::Acquire) as usize == hot)
            .map(|e| (e, w.decayed[e]))
            .filter(|&(_, rate)| rate > 0.0)
            .collect();
        hot_edges.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut moves = Vec::new();
        for (edge, rate) in hot_edges {
            if moves.len() >= self.cfg.max_moves || shard_load[hot] <= mean {
                break;
            }
            let to = shard_load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(s, _)| s)
                .expect("at least one shard");
            // Only move while it strictly narrows the spread.
            if to == hot || shard_load[to] + rate >= shard_load[hot] {
                break;
            }
            shard_load[hot] -= rate;
            shard_load[to] += rate;
            moves.push(Migration { edge, from: hot, to });
        }
        moves
    }

    fn commit(&self, moves: &[Migration]) {
        if moves.is_empty() {
            return;
        }
        for m in moves {
            debug_assert_eq!(
                self.assign[m.edge].load(Ordering::Acquire) as usize,
                m.from,
                "migration source must match the current assignment"
            );
            self.assign[m.edge].store(m.to as u32, Ordering::Release);
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(n: usize) -> Arc<Vec<[AtomicU64; 2]>> {
        Arc::new((0..n).map(|_| [AtomicU64::new(0), AtomicU64::new(0)]).collect())
    }

    #[test]
    fn modulo_map_matches_the_static_rule() {
        let m = ModuloMap::new(4);
        for e in 0..64 {
            assert_eq!(m.shard_of(e), e % 4);
        }
        assert_eq!(m.epoch(), 0);
        assert!(!m.rebalance_due());
        assert!(m.plan_rebalance().is_empty());
        m.record_route(2, 7);
        assert_eq!(m.loads(), vec![0, 0, 7, 0]);
    }

    #[test]
    fn load_aware_starts_modulo_and_needs_traffic_to_plan() {
        let t = totals(32);
        let m = LoadAwareMap::new(4, t, RebalanceConfig::default());
        for e in 0..32 {
            assert_eq!(m.shard_of(e), e % 4);
        }
        assert!(m.plan_rebalance().is_empty(), "no traffic, nothing to move");
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn load_aware_moves_hot_edges_off_the_hot_shard() {
        let t = totals(32);
        // Edges 0, 4, 8 (all shard 0 under modulo/4) carry all the traffic.
        t[0][0].store(1000, Ordering::Relaxed);
        t[4][0].store(900, Ordering::Relaxed);
        t[8][1].store(800, Ordering::Relaxed);
        let m = LoadAwareMap::new(4, Arc::clone(&t), RebalanceConfig::default());
        let moves = m.plan_rebalance();
        assert!(!moves.is_empty(), "hotspot must trigger a plan");
        assert!(moves.iter().all(|mv| mv.from == 0), "only the hot shard sheds edges");
        assert!(moves.iter().all(|mv| mv.to != 0));
        m.commit(&moves);
        assert_eq!(m.epoch(), 1);
        for mv in &moves {
            assert_eq!(m.shard_of(mv.edge), mv.to);
        }
        // Once balanced, an immediate re-plan with no new traffic is empty.
        assert!(m.plan_rebalance().is_empty(), "no new window traffic, already balanced");
    }

    #[test]
    fn load_aware_plan_is_deterministic() {
        let mk = || {
            let t = totals(64);
            for e in 0..64 {
                t[e][0].store(((e as u64) * 37) % 211, Ordering::Relaxed);
            }
            LoadAwareMap::new(4, t, RebalanceConfig::default()).plan_rebalance()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn rebalance_due_tracks_routed_events() {
        let t = totals(8);
        let cfg = RebalanceConfig { check_every: 10, ..RebalanceConfig::default() };
        let m = LoadAwareMap::new(2, t, cfg);
        assert!(!m.rebalance_due());
        m.record_route(0, 9);
        assert!(!m.rebalance_due());
        m.record_route(1, 1);
        assert!(m.rebalance_due());
        let _ = m.plan_rebalance(); // resets the clock
        assert!(!m.rebalance_due());
    }
}
