//! Shard workers: each owns the tracking forms of the edges assigned to it,
//! applies ingested boundary-crossing events (write-ahead-logged when
//! durability is on), and answers per-edge boundary contributions for the
//! aggregator.
//!
//! The query arithmetic here deliberately mirrors `stq_forms::query` term by
//! term (`count_until` differences folded as `f64`), so that an aggregator
//! which re-folds the per-edge contributions in boundary order reproduces
//! the synchronous path bit for bit — see `crate::server`.
//!
//! ## Exits and supervision
//!
//! [`ShardWorker::run`] no longer only ends at shutdown: a scheduled
//! durability fault kills the worker mid-ingest (simulated kill -9, WAL tail
//! cut included), and `panic_threshold` consecutive poisoned requests make
//! the worker *escalate* — mark itself unhealthy and exit — instead of
//! letting every future query burn its retry budget against a sensor that
//! panics deterministically. Both exits are reported to the supervisor
//! (`crate::supervisor`), which recovers state and respawns.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use stq_core::query::QueryKind;
use stq_core::tracker::Crossing;
use stq_durability::recovery::apply_crossing;
use stq_durability::{state_digest, ShardDurability};
use stq_forms::{BoundaryEdge, ColumnarBatch, TrackingForm};
use stq_net::{DurabilityFaultPlan, FaultPlan, MessageCtx};

use crate::metrics::Metrics;

/// Shard health states, stored as one `AtomicU8` per shard.
pub(crate) const HEALTHY: u8 = 0;
pub(crate) const UNHEALTHY: u8 = 1;
pub(crate) const RECOVERING: u8 = 2;

/// Externally visible health of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// The worker escalated or died; the supervisor has not yet picked the
    /// shard up. Queries skip it (degraded answers, sound bounds).
    Unhealthy,
    /// The supervisor is replaying snapshot + WAL; queries skip the shard
    /// until it is re-admitted.
    Recovering,
}

impl ShardHealth {
    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            UNHEALTHY => ShardHealth::Unhealthy,
            RECOVERING => ShardHealth::Recovering,
            _ => ShardHealth::Healthy,
        }
    }
}

/// Everything a shard worker can be asked to do.
pub(crate) enum ShardMsg {
    /// Answer boundary contributions for one query.
    Query(ShardRequest),
    /// Apply one ingested crossing (WAL-logged when durability is on).
    Ingest { seq: u64, event: Crossing },
    /// Apply a columnar lane of crossings with contiguous sequences starting
    /// at `first_seq`, group-committed as one WAL frame when durability is
    /// on.
    IngestBatch { first_seq: u64, lane: ColumnarBatch },
    /// Sync the WAL and reply with the highest applied sequence — the
    /// barrier tests and benchmarks use to line states up.
    Flush(Sender<u64>),
    /// Reply with `(shard, state_digest)` of the in-memory forms.
    Digest(Sender<(usize, u64)>),
    /// Hand the worker's entire state back to the supervisor and exit: the
    /// quiesce step of a shard-map migration. Because the channel is FIFO,
    /// receiving `Retire` proves every previously sent ingest has been
    /// applied — no separate flush barrier is needed.
    Retire(Sender<RetiredState>),
}

/// Everything a retiring worker owns, handed to the supervisor so it can
/// move edge forms between shards and respawn.
pub(crate) struct RetiredState {
    pub forms: HashMap<usize, TrackingForm>,
    pub quarantined: HashSet<usize>,
    pub durability: Option<ShardDurability>,
    pub last_seq: u64,
    pub delivered: u64,
}

/// A fan-out request: the boundary edges of one query that this shard owns,
/// tagged with their position in the full boundary chain.
pub(crate) struct ShardRequest {
    pub query_id: u64,
    pub attempt: u32,
    pub kind: QueryKind,
    pub edges: Vec<(usize, BoundaryEdge)>,
    /// The query's deadline, when it carries one: a request that is already
    /// past it is dropped at the worker without computing (the aggregator
    /// gave up at the same instant, so nobody is waiting for the answer).
    pub deadline: Option<Instant>,
    pub reply: Sender<ShardResponse>,
}

/// A shard's answer: one contribution per requested edge.
#[derive(Clone, Debug)]
pub(crate) struct ShardResponse {
    pub shard: usize,
    pub counts: Vec<EdgeCounts>,
    /// Boundary positions this shard refused to serve because the edge is
    /// quarantined by the integrity auditor.
    pub refused: Vec<usize>,
    /// Boundary edges this shard no longer owns — a shard-map migration
    /// moved them while the request was in flight. The aggregator re-routes
    /// them to their current owner.
    pub moved: Vec<(usize, BoundaryEdge)>,
    /// The worker panicked while computing; `counts` is empty. The
    /// aggregator treats this as a failed attempt (retryable), not data.
    pub panicked: bool,
}

/// Per-edge boundary contribution, keyed by position in the boundary chain.
///
/// For `Snapshot` and `Transient` only `a` is used (the net inward count at
/// the query instant / over the window). For `Static`, `a` and `b` are the
/// net inward counts at the interval's two endpoints.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeCounts {
    pub idx: usize,
    pub a: f64,
    pub b: f64,
}

/// Why [`ShardWorker::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// Every sender is gone: runtime shutdown. Not reported upward.
    Shutdown,
    /// `panic_threshold` consecutive requests panicked: the worker marked
    /// the shard unhealthy and handed itself to the supervisor.
    Escalated,
    /// A scheduled durability fault killed the process mid-ingest (the WAL
    /// tail was cut per the fault plan).
    Killed,
    /// The worker handed its state to the supervisor for a shard-map
    /// migration. Not reported upward — the supervisor already holds the
    /// retired state and respawns the shard itself.
    Retired,
}

/// Construction parameters of one worker (the supervisor builds these both
/// at startup and on every respawn).
pub(crate) struct WorkerSeed {
    pub id: usize,
    pub forms: HashMap<usize, TrackingForm>,
    pub quarantined: HashSet<usize>,
    pub plan: FaultPlan,
    pub dfaults: DurabilityFaultPlan,
    pub durability: Option<ShardDurability>,
    /// Highest ingest sequence already folded into `forms` — the dedup
    /// floor: queued channel messages at or below it were already applied
    /// (directly or via recovery replay) and must be skipped.
    pub last_seq: u64,
    /// Fault-plan clock carried over from the previous incarnation, so
    /// crash/poison windows keyed on delivered messages stay on schedule
    /// across respawns.
    pub delivered: u64,
    pub panic_threshold: u32,
    pub health: Arc<Vec<AtomicU8>>,
    pub durable_seq: Arc<Vec<AtomicU64>>,
    pub metrics: Arc<Metrics>,
}

/// The worker-side state of one shard.
pub(crate) struct ShardWorker {
    id: usize,
    forms: HashMap<usize, TrackingForm>,
    /// Edges the integrity auditor quarantined: this shard still holds their
    /// (corrupted) forms but refuses to serve them.
    quarantined: HashSet<usize>,
    plan: FaultPlan,
    dfaults: DurabilityFaultPlan,
    durability: Option<ShardDurability>,
    last_seq: u64,
    delivered: u64,
    consecutive_panics: u32,
    panic_threshold: u32,
    health: Arc<Vec<AtomicU8>>,
    durable_seq: Arc<Vec<AtomicU64>>,
    metrics: Arc<Metrics>,
}

impl ShardWorker {
    pub(crate) fn new(seed: WorkerSeed) -> Self {
        ShardWorker {
            id: seed.id,
            forms: seed.forms,
            quarantined: seed.quarantined,
            plan: seed.plan,
            dfaults: seed.dfaults,
            durability: seed.durability,
            last_seq: seed.last_seq,
            delivered: seed.delivered,
            consecutive_panics: 0,
            panic_threshold: seed.panic_threshold,
            health: seed.health,
            durable_seq: seed.durable_seq,
            metrics: seed.metrics,
        }
    }

    /// Serves messages until shutdown, escalation, or a scheduled kill.
    /// Returns the exit reason and the fault-plan clock to carry over.
    pub(crate) fn run(mut self, rx: Receiver<ShardMsg>) -> (WorkerExit, u64) {
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Query(req) => {
                    if self.handle(req) {
                        self.health[self.id].store(UNHEALTHY, Ordering::Release);
                        Metrics::bump(&self.metrics.escalations);
                        return (WorkerExit::Escalated, self.delivered);
                    }
                }
                ShardMsg::Ingest { seq, event } => {
                    if self.ingest(seq, &event) {
                        self.health[self.id].store(UNHEALTHY, Ordering::Release);
                        return (WorkerExit::Killed, self.delivered);
                    }
                }
                ShardMsg::IngestBatch { first_seq, lane } => {
                    if self.ingest_batch(first_seq, &lane) {
                        self.health[self.id].store(UNHEALTHY, Ordering::Release);
                        return (WorkerExit::Killed, self.delivered);
                    }
                }
                ShardMsg::Flush(reply) => {
                    let _ = reply.send(self.flush());
                }
                ShardMsg::Digest(reply) => {
                    let _ = reply.send((self.id, state_digest(&self.forms)));
                }
                ShardMsg::Retire(reply) => {
                    let state = RetiredState {
                        forms: std::mem::take(&mut self.forms),
                        quarantined: std::mem::take(&mut self.quarantined),
                        durability: self.durability.take(),
                        last_seq: self.last_seq,
                        delivered: self.delivered,
                    };
                    match reply.send(state) {
                        Ok(()) => return (WorkerExit::Retired, self.delivered),
                        Err(err) => {
                            // The supervisor gave up on the migration (its
                            // receiver is gone): put the state back and keep
                            // serving as if the Retire never arrived.
                            let state = err.0;
                            self.forms = state.forms;
                            self.quarantined = state.quarantined;
                            self.durability = state.durability;
                        }
                    }
                }
            }
        }
        (WorkerExit::Shutdown, self.delivered)
    }

    /// Applies one ingested crossing. Returns true when a scheduled
    /// durability fault kills the worker right after this append.
    fn ingest(&mut self, seq: u64, c: &Crossing) -> bool {
        if seq <= self.last_seq {
            // Already applied — a redo-replayed event still queued in the
            // channel from before the previous incarnation died.
            return false;
        }
        debug_assert_eq!(seq, self.last_seq + 1, "ingest lane must hand out contiguous sequences");
        self.last_seq = seq;
        Metrics::bump(&self.metrics.ingested);
        // The WAL records the event either way; live apply and recovery
        // replay share `apply_crossing`, so both sides reject an
        // out-of-order timestamp identically and states stay byte-identical.
        if !apply_crossing(&mut self.forms, c) {
            Metrics::bump(&self.metrics.late_dropped);
        }
        if let Some(d) = self.durability.as_mut() {
            let mark = d.append(seq, c, &self.forms).expect("WAL append");
            Metrics::bump(&self.metrics.wal_appends);
            if mark.snapshotted {
                Metrics::bump(&self.metrics.snapshots_taken);
            }
            if let Some(durable) = mark.durable_seq {
                self.durable_seq[self.id].store(durable, Ordering::Release);
            }
            if self.dfaults.crash_due(self.id, seq) {
                let d = self.durability.take().expect("durability present");
                let surviving = self.dfaults.surviving_tail_bytes(self.id, seq, d.unsynced_bytes());
                let _ = d.kill_cut(surviving);
                return true;
            }
        }
        false
    }

    /// Applies one columnar lane of crossings, WAL-logged as a single
    /// group-commit frame. Returns true when a scheduled durability fault
    /// kills the worker.
    ///
    /// When a scheduled crash falls inside the batch's sequence range the
    /// whole lane degrades to the per-event path, so the kill cut lands
    /// exactly after the faulted append — byte-identical crash semantics to
    /// single-event ingest (a synced batch frame would otherwise leave no
    /// tail for the fault plan to cut).
    fn ingest_batch(&mut self, first_seq: u64, lane: &ColumnarBatch) -> bool {
        if lane.is_empty() {
            return false;
        }
        let last = first_seq + lane.len() as u64 - 1;
        if self.durability.is_some()
            && (first_seq..=last).any(|s| s > self.last_seq && self.dfaults.crash_due(self.id, s))
        {
            for (i, (edge, forward, time)) in lane.iter().enumerate() {
                let c = Crossing { edge, forward, time };
                if self.ingest(first_seq + i as u64, &c) {
                    return true;
                }
            }
            return false;
        }
        let mut applied: Vec<(u64, Crossing)> = Vec::with_capacity(lane.len());
        for (i, (edge, forward, time)) in lane.iter().enumerate() {
            let seq = first_seq + i as u64;
            if seq <= self.last_seq {
                continue; // dedup: replayed prefix from a previous incarnation
            }
            debug_assert_eq!(
                seq,
                self.last_seq + 1,
                "ingest lane must hand out contiguous sequences"
            );
            self.last_seq = seq;
            Metrics::bump(&self.metrics.ingested);
            let c = Crossing { edge, forward, time };
            if !apply_crossing(&mut self.forms, &c) {
                Metrics::bump(&self.metrics.late_dropped);
            }
            applied.push((seq, c));
        }
        if applied.is_empty() {
            return false;
        }
        if let Some(d) = self.durability.as_mut() {
            let mark = d.append_batch(&applied, &self.forms).expect("WAL batch append");
            Metrics::add(&self.metrics.wal_appends, applied.len() as u64);
            Metrics::bump(&self.metrics.wal_group_commits);
            if mark.snapshotted {
                Metrics::bump(&self.metrics.snapshots_taken);
            }
            if let Some(durable) = mark.durable_seq {
                self.durable_seq[self.id].store(durable, Ordering::Release);
            }
        }
        false
    }

    /// Syncs the WAL (publishing the durable floor) and reports the highest
    /// applied sequence. Without durability the floor is *not* advanced: the
    /// server's redo buffer is then the only recovery source and must keep
    /// every event.
    fn flush(&mut self) -> u64 {
        if let Some(d) = self.durability.as_mut() {
            let durable = d.sync().expect("WAL sync");
            self.durable_seq[self.id].store(durable, Ordering::Release);
        }
        self.last_seq
    }

    /// Serves one query request. Returns true when the worker escalates.
    fn handle(&mut self, req: ShardRequest) -> bool {
        // Deadline short-circuit before anything else (including the fault
        // delay): expired work is pure waste, and the aggregator's wait is
        // clamped to the same deadline, so it has already moved on.
        if req.deadline.is_some_and(|dl| Instant::now() >= dl) {
            Metrics::bump(&self.metrics.shard_deadline_skips);
            return false;
        }
        let seen = self.delivered;
        self.delivered += 1;
        if self.plan.is_crashed(self.id, seen) {
            Metrics::bump(&self.metrics.crash_dropped);
            return false; // a crashed sensor neither computes nor replies
        }
        let fate = self.plan.decide(MessageCtx {
            query_id: req.query_id,
            node: self.id,
            attempt: req.attempt,
        });
        if fate.drop {
            Metrics::bump(&self.metrics.dropped);
            return false;
        }
        if fate.delay_ms > 0 {
            Metrics::bump(&self.metrics.delayed);
            // One radio message per perimeter sensor in the request: the
            // hold-up scales with the payload this shard must collect, and
            // it blocks the whole shard, like a congested radio.
            std::thread::sleep(
                Duration::from_millis(fate.delay_ms) * req.edges.len().max(1) as u32,
            );
        }
        // Audit verdicts gate serving: quarantined edges are refused (their
        // positions reported so the aggregator can widen soundly), healthy
        // ones are computed inside a panic guard — a poisoned payload must
        // surface as a failed response, not kill the worker and hang every
        // later query routed to this shard.
        let mut refused = Vec::new();
        let mut moved: Vec<(usize, BoundaryEdge)> = Vec::new();
        let mut served: Vec<(usize, BoundaryEdge)> = Vec::new();
        for &(idx, be) in &req.edges {
            if self.quarantined.contains(&be.edge) {
                refused.push(idx);
            } else if !self.forms.contains_key(&be.edge) {
                // A shard-map migration moved the edge away while this
                // request was queued: report it back so the aggregator can
                // re-route to the current owner instead of panicking here.
                moved.push((idx, be));
            } else {
                served.push((idx, be));
            }
        }
        if !refused.is_empty() {
            Metrics::add(&self.metrics.quarantine_refusals, refused.len() as u64);
        }
        let poison = fate.poison || self.plan.scheduled_poison(self.id, seen);
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            served
                .iter()
                .map(|&(idx, be)| {
                    // Poison corrupts the payload in flight: the edge id now
                    // addresses a sensor nobody owns, and the lookup panics.
                    let be =
                        if poison { BoundaryEdge::new(usize::MAX, be.inward_forward) } else { be };
                    self.contribution(idx, be, req.kind)
                })
                .collect::<Vec<_>>()
        }));
        let mut escalate = false;
        let response = match computed {
            Ok(counts) => {
                Metrics::bump(&self.metrics.shard_served);
                self.consecutive_panics = 0;
                ShardResponse { shard: self.id, counts, refused, moved, panicked: false }
            }
            Err(_) => {
                Metrics::bump(&self.metrics.shard_panics);
                self.consecutive_panics += 1;
                // A run of back-to-back panics is not per-query bad luck but
                // a sick shard: reply (so the aggregator aborts fast), then
                // escalate to the supervisor instead of letting every later
                // query burn retries against it.
                escalate =
                    self.panic_threshold > 0 && self.consecutive_panics >= self.panic_threshold;
                ShardResponse { shard: self.id, counts: Vec::new(), refused, moved, panicked: true }
            }
        };
        if fate.duplicate {
            Metrics::bump(&self.metrics.duplicated);
            let _ = req.reply.try_send(response.clone());
        }
        // The aggregator may have timed out and dropped the receiver, and
        // its response channel is bounded (sized for the worst-case message
        // count, see `crate::server`): a failed or refused send is simply a
        // late answer nobody is waiting for, and must never block the
        // worker behind a gone aggregator.
        let _ = req.reply.try_send(response);
        escalate
    }

    fn contribution(&self, idx: usize, be: BoundaryEdge, kind: QueryKind) -> EdgeCounts {
        let form = &self.forms[&be.edge];
        // `count_until` as f64, matching `FormStore`'s `CountSource` impl.
        let cu = |forward: bool, t: f64| form.count_until(forward, t) as f64;
        let net_at = |t: f64| cu(be.inward_forward, t) - cu(!be.inward_forward, t);
        match kind {
            QueryKind::Snapshot(t) => EdgeCounts { idx, a: net_at(t), b: 0.0 },
            QueryKind::Transient(t0, t1) => {
                // count_between(inward) − count_between(outward), each as the
                // f64 difference of count_untils (the CountSource default).
                let inn = cu(be.inward_forward, t1) - cu(be.inward_forward, t0);
                let out = cu(!be.inward_forward, t1) - cu(!be.inward_forward, t0);
                EdgeCounts { idx, a: inn - out, b: 0.0 }
            }
            QueryKind::Static(t0, t1) => EdgeCounts { idx, a: net_at(t0), b: net_at(t1) },
        }
    }
}
