//! Shard workers: each owns the tracking forms of the edges assigned to it
//! and answers per-edge boundary contributions for the aggregator.
//!
//! The arithmetic here deliberately mirrors `stq_forms::query` term by term
//! (`count_until` differences folded as `f64`), so that an aggregator which
//! re-folds the per-edge contributions in boundary order reproduces the
//! synchronous path bit for bit — see `crate::server`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use stq_core::query::QueryKind;
use stq_forms::{BoundaryEdge, TrackingForm};
use stq_net::{FaultPlan, MessageCtx};

use crate::metrics::Metrics;

/// A fan-out request: the boundary edges of one query that this shard owns,
/// tagged with their position in the full boundary chain.
pub(crate) struct ShardRequest {
    pub query_id: u64,
    pub attempt: u32,
    pub kind: QueryKind,
    pub edges: Vec<(usize, BoundaryEdge)>,
    pub reply: Sender<ShardResponse>,
}

/// A shard's answer: one contribution per requested edge.
#[derive(Clone, Debug)]
pub(crate) struct ShardResponse {
    pub shard: usize,
    pub counts: Vec<EdgeCounts>,
    /// Boundary positions this shard refused to serve because the edge is
    /// quarantined by the integrity auditor.
    pub refused: Vec<usize>,
    /// The worker panicked while computing; `counts` is empty. The
    /// aggregator treats this as a failed attempt (retryable), not data.
    pub panicked: bool,
}

/// Per-edge boundary contribution, keyed by position in the boundary chain.
///
/// For `Snapshot` and `Transient` only `a` is used (the net inward count at
/// the query instant / over the window). For `Static`, `a` and `b` are the
/// net inward counts at the interval's two endpoints.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeCounts {
    pub idx: usize,
    pub a: f64,
    pub b: f64,
}

/// The worker-side state of one shard.
pub(crate) struct ShardWorker {
    id: usize,
    forms: HashMap<usize, TrackingForm>,
    /// Edges the integrity auditor quarantined: this shard still holds their
    /// (corrupted) forms but refuses to serve them.
    quarantined: HashSet<usize>,
    plan: FaultPlan,
    delivered: u64,
    metrics: Arc<Metrics>,
}

impl ShardWorker {
    pub(crate) fn new(
        id: usize,
        forms: HashMap<usize, TrackingForm>,
        quarantined: HashSet<usize>,
        plan: FaultPlan,
        metrics: Arc<Metrics>,
    ) -> Self {
        ShardWorker { id, forms, quarantined, plan, delivered: 0, metrics }
    }

    /// Serves requests until every sender is gone (runtime shutdown).
    pub(crate) fn run(mut self, rx: Receiver<ShardRequest>) {
        while let Ok(req) = rx.recv() {
            self.handle(req);
        }
    }

    fn handle(&mut self, req: ShardRequest) {
        let seen = self.delivered;
        self.delivered += 1;
        if self.plan.is_crashed(self.id, seen) {
            Metrics::bump(&self.metrics.crash_dropped);
            return; // a crashed sensor neither computes nor replies
        }
        let fate = self.plan.decide(MessageCtx {
            query_id: req.query_id,
            node: self.id,
            attempt: req.attempt,
        });
        if fate.drop {
            Metrics::bump(&self.metrics.dropped);
            return;
        }
        if fate.delay_ms > 0 {
            Metrics::bump(&self.metrics.delayed);
            // One radio message per perimeter sensor in the request: the
            // hold-up scales with the payload this shard must collect, and
            // it blocks the whole shard, like a congested radio.
            std::thread::sleep(
                Duration::from_millis(fate.delay_ms) * req.edges.len().max(1) as u32,
            );
        }
        // Audit verdicts gate serving: quarantined edges are refused (their
        // positions reported so the aggregator can widen soundly), healthy
        // ones are computed inside a panic guard — a poisoned payload must
        // surface as a failed response, not kill the worker and hang every
        // later query routed to this shard.
        let mut refused = Vec::new();
        let mut served: Vec<(usize, BoundaryEdge)> = Vec::new();
        for &(idx, be) in &req.edges {
            if self.quarantined.contains(&be.edge) {
                refused.push(idx);
            } else {
                served.push((idx, be));
            }
        }
        if !refused.is_empty() {
            Metrics::add(&self.metrics.quarantine_refusals, refused.len() as u64);
        }
        let poison = fate.poison;
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            served
                .iter()
                .map(|&(idx, be)| {
                    // Poison corrupts the payload in flight: the edge id now
                    // addresses a sensor nobody owns, and the lookup panics.
                    let be =
                        if poison { BoundaryEdge::new(usize::MAX, be.inward_forward) } else { be };
                    self.contribution(idx, be, req.kind)
                })
                .collect::<Vec<_>>()
        }));
        let response = match computed {
            Ok(counts) => {
                Metrics::bump(&self.metrics.shard_served);
                ShardResponse { shard: self.id, counts, refused, panicked: false }
            }
            Err(_) => {
                Metrics::bump(&self.metrics.shard_panics);
                ShardResponse { shard: self.id, counts: Vec::new(), refused, panicked: true }
            }
        };
        if fate.duplicate {
            Metrics::bump(&self.metrics.duplicated);
            let _ = req.reply.send(response.clone());
        }
        // The aggregator may have timed out and dropped the receiver; a
        // failed send is simply a late answer nobody is waiting for.
        let _ = req.reply.send(response);
    }

    fn contribution(&self, idx: usize, be: BoundaryEdge, kind: QueryKind) -> EdgeCounts {
        let form = &self.forms[&be.edge];
        // `count_until` as f64, matching `FormStore`'s `CountSource` impl.
        let cu = |forward: bool, t: f64| form.count_until(forward, t) as f64;
        let net_at = |t: f64| cu(be.inward_forward, t) - cu(!be.inward_forward, t);
        match kind {
            QueryKind::Snapshot(t) => EdgeCounts { idx, a: net_at(t), b: 0.0 },
            QueryKind::Transient(t0, t1) => {
                // count_between(inward) − count_between(outward), each as the
                // f64 difference of count_untils (the CountSource default).
                let inn = cu(be.inward_forward, t1) - cu(be.inward_forward, t0);
                let out = cu(!be.inward_forward, t1) - cu(!be.inward_forward, t0);
                EdgeCounts { idx, a: inn - out, b: 0.0 }
            }
            QueryKind::Static(t0, t1) => EdgeCounts { idx, a: net_at(t0), b: net_at(t1) },
        }
    }
}
