//! Overload control for the serving runtime: deadline budgets, cost-based
//! admission, brownout precision shedding, and per-shard circuit breakers.
//!
//! The paper's central trade — brackets whose width is the price of cheap
//! answers — is exactly the lever a service needs under overload. Instead of
//! stalling clients on a full queue or letting latency grow without bound,
//! the runtime degrades the *precision* of admitted queries while keeping
//! every `[lower, upper]` bracket sound:
//!
//! - **Admission** (`OverloadState::try_admit`): each query is priced via
//!   the §4.9 cost model (`stq_core::cost::CostModel::admission_units` —
//!   predicted perimeter sensors plus shard fan-out). The gate tracks the
//!   total estimated cost in flight and rejects with a `retry_after` hint
//!   once the capacity knob is exceeded. Rejection is *before* any work:
//!   no plan compile, no queue slot, no shard traffic.
//! - **Brownout** (`BrownoutController`): a hysteresis controller watches
//!   queue depth and a windowed p95 of execute latency. Past the high
//!   watermarks it escalates the precision level; each level maps to a
//!   boundary-sampling stride (serve every 2nd / 4th / no boundary edge,
//!   see `QueryPlan::shed_boundary`). Skipped edges degrade exactly like
//!   silent shards — worst-case totals, reduced coverage — so shed answers
//!   are wider but provably sound. Levels relax as load drains, with dwell
//!   counts on both edges so the controller cannot flap.
//! - **Breakers** (`Breakers`): a shard that times out repeatedly trips
//!   open and is skipped outright (its edges degrade immediately — no retry
//!   storm against a dead radio). After `open_for` one probe query is let
//!   through half-open; success closes the breaker, silence re-opens it.
//!
//! Everything here is advisory state *around* the fan-out path; with
//! [`crate::RuntimeConfig::overload`] unset none of it is consulted and the
//! runtime behaves exactly as before.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use stq_core::cost::CostModel;
use stq_core::sampled::SampledGraph;
use stq_core::sensing::SensingGraph;

/// Precision levels the brownout controller can impose (0 = full).
pub const MAX_BROWNOUT_LEVEL: u8 = 3;

/// The boundary-sampling stride of one brownout level: serve every
/// `stride`-th boundary edge. 0 means "serve none" (a fully shed answer
/// built from worst-case totals alone).
pub(crate) fn stride_for(level: u8) -> usize {
    match level {
        0 => 1,
        1 => 2,
        2 => 4,
        _ => 0,
    }
}

/// Knobs of the admission gate, brownout controller, and circuit breakers.
/// Installing this on [`crate::RuntimeConfig::overload`] turns the whole
/// subsystem on; `None` (the default) keeps the classic blocking behavior.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Capacity of the admission gate in cost-model units (see
    /// [`stq_core::cost::CostModel::admission_units`]): the total estimated
    /// cost allowed in flight before `try_submit` rejects. Use
    /// `f64::INFINITY` to disable admission while keeping deadlines,
    /// brownout, and breakers.
    pub max_inflight_cost: f64,
    /// Deadline stamped on specs that do not carry one (`None` leaves
    /// deadline-less queries unbounded, as before).
    pub default_deadline: Option<Duration>,
    /// Brownout hysteresis knobs.
    pub brownout: BrownoutConfig,
    /// Per-shard circuit-breaker knobs.
    pub breaker: BreakerConfig,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_inflight_cost: 512.0,
            default_deadline: None,
            brownout: BrownoutConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Hysteresis knobs of the brownout controller.
#[derive(Clone, Debug)]
pub struct BrownoutConfig {
    /// Queue depth at or above which an observation counts as hot.
    pub queue_high: usize,
    /// Queue depth at or below which an observation can count as cool.
    pub queue_low: usize,
    /// Windowed p95 execute latency (µs) at or above which an observation
    /// counts as hot.
    pub p95_high_us: u64,
    /// Windowed p95 execute latency (µs) at or below which an observation
    /// can count as cool.
    pub p95_low_us: u64,
    /// Consecutive hot (cool) observations required before the level
    /// escalates (relaxes) one step. Observations between the watermarks
    /// reset both counts — the hysteresis band where the level holds.
    pub dwell: u32,
    /// Execute-latency samples in the sliding p95 window.
    pub window: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            queue_high: 48,
            queue_low: 8,
            p95_high_us: 50_000,
            p95_low_us: 10_000,
            dwell: 8,
            window: 64,
        }
    }
}

/// Knobs of the per-shard circuit breakers.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive silent attempt windows before the breaker trips open
    /// (0 disables breakers).
    pub failure_threshold: u32,
    /// How long an open breaker rejects fan-out before letting one probe
    /// through half-open.
    pub open_for: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 4, open_for: Duration::from_millis(250) }
    }
}

/// Why `try_submit` refused a query. The query consumed no capacity; the
/// client should back off for roughly `retry_after` before resubmitting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Backoff hint derived from the gate's fullness and the recent
    /// execute-latency window (clamped to a sane range).
    pub retry_after: Duration,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission rejected, retry after {:?}", self.retry_after)
    }
}

impl std::error::Error for Rejected {}

/// What happened to a breaker on one event (the server maps these onto
/// metric counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Transition {
    Opened,
    HalfOpened,
    Closed,
}

/// The fan-out verdict for one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Gate {
    /// Breaker closed: send normally.
    Allow,
    /// Breaker was open long enough — this query is the half-open probe.
    Probe,
    /// Breaker open (or a probe is already in flight): skip the shard,
    /// degrade its edges to worst-case bounds immediately.
    Skip,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

struct Breaker {
    state: u8,
    consecutive_failures: u32,
    opened_at: Instant,
}

/// One circuit breaker per shard, each under its own small mutex (the
/// per-query fan-out touches each at most twice).
pub(crate) struct Breakers {
    cfg: BreakerConfig,
    slots: Vec<Mutex<Breaker>>,
}

impl Breakers {
    fn new(cfg: BreakerConfig, num_shards: usize) -> Self {
        let now = Instant::now();
        Breakers {
            cfg,
            slots: (0..num_shards)
                .map(|_| {
                    Mutex::new(Breaker { state: CLOSED, consecutive_failures: 0, opened_at: now })
                })
                .collect(),
        }
    }

    /// Gate one fan-out to `shard`.
    pub(crate) fn admit(&self, shard: usize) -> (Gate, Option<Transition>) {
        if self.cfg.failure_threshold == 0 {
            return (Gate::Allow, None);
        }
        let mut b = self.slots[shard].lock();
        match b.state {
            OPEN if b.opened_at.elapsed() >= self.cfg.open_for => {
                b.state = HALF_OPEN;
                (Gate::Probe, Some(Transition::HalfOpened))
            }
            OPEN => (Gate::Skip, None),
            // While half-open exactly one probe is outstanding; everyone
            // else keeps degrading until the probe resolves the state.
            HALF_OPEN => (Gate::Skip, None),
            _ => (Gate::Allow, None),
        }
    }

    /// The shard answered an attempt in time.
    pub(crate) fn success(&self, shard: usize) -> Option<Transition> {
        if self.cfg.failure_threshold == 0 {
            return None;
        }
        let mut b = self.slots[shard].lock();
        let was_open = b.state != CLOSED;
        b.state = CLOSED;
        b.consecutive_failures = 0;
        was_open.then_some(Transition::Closed)
    }

    /// The shard stayed silent through an attempt window.
    pub(crate) fn failure(&self, shard: usize) -> Option<Transition> {
        if self.cfg.failure_threshold == 0 {
            return None;
        }
        let mut b = self.slots[shard].lock();
        match b.state {
            // A failed half-open probe re-opens immediately.
            HALF_OPEN => {
                b.state = OPEN;
                b.opened_at = Instant::now();
                Some(Transition::Opened)
            }
            CLOSED => {
                b.consecutive_failures += 1;
                if b.consecutive_failures >= self.cfg.failure_threshold {
                    b.state = OPEN;
                    b.opened_at = Instant::now();
                    Some(Transition::Opened)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Human-readable state of one breaker (for reports and tests).
    #[cfg(test)]
    pub(crate) fn state_label(&self, shard: usize) -> &'static str {
        match self.slots[shard].lock().state {
            OPEN => "open",
            HALF_OPEN => "half-open",
            _ => "closed",
        }
    }

    /// How many breakers are currently not closed.
    #[cfg(test)]
    pub(crate) fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().state != CLOSED).count()
    }
}

struct BrownoutWindow {
    samples: Vec<u64>,
    next: usize,
    filled: usize,
    hot_obs: u32,
    cool_obs: u32,
}

/// The hysteresis controller deciding the current precision level. One
/// observation per served query; the level is read lock-free on the serve
/// path and only the (cheap) observation takes the window mutex.
pub(crate) struct BrownoutController {
    cfg: BrownoutConfig,
    level: AtomicU8,
    window: Mutex<BrownoutWindow>,
}

impl BrownoutController {
    fn new(cfg: BrownoutConfig) -> Self {
        let window = BrownoutWindow {
            samples: vec![0; cfg.window.max(1)],
            next: 0,
            filled: 0,
            hot_obs: 0,
            cool_obs: 0,
        };
        BrownoutController { cfg, level: AtomicU8::new(0), window: Mutex::new(window) }
    }

    /// The precision level queries should currently be served at.
    pub(crate) fn level(&self) -> u8 {
        self.level.load(Ordering::Relaxed)
    }

    /// p95 of the execute-latency window (µs); 0 before any sample.
    pub(crate) fn window_p95_us(&self) -> u64 {
        let w = self.window.lock();
        Self::p95(&w)
    }

    fn p95(w: &BrownoutWindow) -> u64 {
        if w.filled == 0 {
            return 0;
        }
        let mut sorted: Vec<u64> = w.samples[..w.filled].to_vec();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * 0.95).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Feeds one served query's context in; returns `Some((from, to))` when
    /// the level changed.
    pub(crate) fn observe(&self, queue_depth: usize, exec_us: u64) -> Option<(u8, u8)> {
        let mut w = self.window.lock();
        let n = w.next;
        w.samples[n] = exec_us;
        w.next = (n + 1) % w.samples.len();
        w.filled = (w.filled + 1).min(w.samples.len());
        let p95 = Self::p95(&w);
        let hot = queue_depth >= self.cfg.queue_high || p95 >= self.cfg.p95_high_us;
        let cool = queue_depth <= self.cfg.queue_low && p95 <= self.cfg.p95_low_us;
        let level = self.level.load(Ordering::Relaxed);
        let dwell = self.cfg.dwell.max(1);
        if hot {
            w.cool_obs = 0;
            w.hot_obs += 1;
            if w.hot_obs >= dwell && level < MAX_BROWNOUT_LEVEL {
                w.hot_obs = 0;
                self.level.store(level + 1, Ordering::Relaxed);
                return Some((level, level + 1));
            }
        } else if cool {
            w.hot_obs = 0;
            w.cool_obs += 1;
            if w.cool_obs >= dwell && level > 0 {
                w.cool_obs = 0;
                self.level.store(level - 1, Ordering::Relaxed);
                return Some((level, level - 1));
            }
        } else {
            // Inside the hysteresis band: hold the level, restart both
            // dwell counts so a change needs sustained evidence.
            w.hot_obs = 0;
            w.cool_obs = 0;
        }
        None
    }
}

/// The §4.9-model pricer the admission gate consults at submit time —
/// before any plan exists, so the price comes from the region's junction
/// fraction (the model's `A(Q)/A(T)` proxy), not a compiled boundary.
struct Pricer {
    model: CostModel,
    total_junctions: f64,
    num_shards: usize,
}

/// All overload-control state of one running [`crate::Runtime`].
pub(crate) struct OverloadState {
    pub(crate) cfg: OverloadConfig,
    pricer: Pricer,
    /// Estimated cost currently admitted and not yet served, in
    /// milli-units (atomic integer arithmetic; prices are a few hundred
    /// units at most, so overflow would need ~10¹⁶ in-flight queries).
    inflight_milli: AtomicU64,
    pub(crate) brownout: BrownoutController,
    pub(crate) breakers: Breakers,
}

impl OverloadState {
    pub(crate) fn new(
        cfg: OverloadConfig,
        sensing: &SensingGraph,
        sampled: &SampledGraph,
        num_shards: usize,
    ) -> Self {
        let model = CostModel::for_deployment(sensing, sampled, 1.0);
        let total_junctions = sensing.road().num_junctions().max(1) as f64;
        OverloadState {
            brownout: BrownoutController::new(cfg.brownout.clone()),
            breakers: Breakers::new(cfg.breaker.clone(), num_shards),
            cfg,
            pricer: Pricer { model, total_junctions, num_shards },
            inflight_milli: AtomicU64::new(0),
        }
    }

    /// Prices a query from its region's junction count.
    pub(crate) fn price(&self, region_junctions: usize) -> f64 {
        let frac = region_junctions as f64 / self.pricer.total_junctions;
        self.pricer.model.admission_units(frac, self.pricer.num_shards)
    }

    /// Tries to reserve `cost` units of gate capacity. On success returns
    /// the milli-unit reservation to hand back via [`Self::release`]; on
    /// refusal returns the `retry_after` hint.
    pub(crate) fn try_admit(&self, cost: f64) -> Result<u64, Duration> {
        if !self.cfg.max_inflight_cost.is_finite() {
            return Ok(0);
        }
        let cap_milli = (self.cfg.max_inflight_cost.max(0.0) * 1000.0) as u64;
        let milli = ((cost * 1000.0).round() as u64).max(1);
        let prev = self.inflight_milli.fetch_add(milli, Ordering::Relaxed);
        if prev.saturating_add(milli) > cap_milli {
            self.inflight_milli.fetch_sub(milli, Ordering::Relaxed);
            return Err(self.retry_after(prev, cap_milli));
        }
        Ok(milli)
    }

    /// Returns a reservation made by [`Self::try_admit`].
    /// Reserves gate capacity for a batch of ingested events (one
    /// milli-unit per event — ingest is orders of magnitude cheaper than a
    /// query) so a write flood shows up as admission pressure on reads
    /// instead of invisibly starving them. Never rejects; hand the
    /// reservation back via [`Self::release`] once the batch is dispatched.
    pub(crate) fn charge_ingest(&self, events: usize) -> u64 {
        if !self.cfg.max_inflight_cost.is_finite() || events == 0 {
            return 0;
        }
        let milli = events as u64;
        self.inflight_milli.fetch_add(milli, Ordering::Relaxed);
        milli
    }

    pub(crate) fn release(&self, milli: u64) {
        if milli > 0 {
            self.inflight_milli.fetch_sub(milli, Ordering::Relaxed);
        }
    }

    /// Backoff hint for a full submission queue (the gate itself had room,
    /// so there is no fullness ratio to scale by): one recent p95 window.
    pub(crate) fn queue_retry_after(&self) -> Duration {
        Duration::from_micros(self.brownout.window_p95_us().clamp(2_000, 250_000))
    }

    /// Backoff hint: one recent p95 execute window per unit of gate
    /// fullness — an overfull gate quotes a proportionally longer wait.
    fn retry_after(&self, inflight_milli: u64, cap_milli: u64) -> Duration {
        let base_us = self.brownout.window_p95_us().max(2_000);
        let fullness = if cap_milli == 0 { 1.0 } else { inflight_milli as f64 / cap_milli as f64 };
        let us = (base_us as f64 * fullness.max(1.0)).min(250_000.0);
        Duration::from_micros(us as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakers(threshold: u32, open_for: Duration) -> Breakers {
        Breakers::new(BreakerConfig { failure_threshold: threshold, open_for }, 2)
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let b = breakers(2, Duration::from_millis(5));
        assert_eq!(b.admit(0).0, Gate::Allow);
        assert_eq!(b.failure(0), None);
        assert_eq!(b.failure(0), Some(Transition::Opened));
        assert_eq!(b.state_label(0), "open");
        assert_eq!(b.admit(0).0, Gate::Skip, "freshly open breaker rejects");
        std::thread::sleep(Duration::from_millis(6));
        let (gate, tr) = b.admit(0);
        assert_eq!(gate, Gate::Probe);
        assert_eq!(tr, Some(Transition::HalfOpened));
        assert_eq!(b.admit(0).0, Gate::Skip, "only one probe at a time");
        assert_eq!(b.success(0), Some(Transition::Closed));
        assert_eq!(b.admit(0).0, Gate::Allow);
        assert_eq!(b.open_count(), 0);
        // The other shard's breaker never moved.
        assert_eq!(b.state_label(1), "closed");
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breakers(1, Duration::from_millis(1));
        assert_eq!(b.failure(0), Some(Transition::Opened));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.admit(0).0, Gate::Probe);
        assert_eq!(b.failure(0), Some(Transition::Opened), "silent probe re-opens");
        assert_eq!(b.state_label(0), "open");
    }

    #[test]
    fn zero_threshold_disables_breakers() {
        let b = breakers(0, Duration::from_millis(1));
        for _ in 0..10 {
            assert_eq!(b.failure(0), None);
        }
        assert_eq!(b.admit(0).0, Gate::Allow);
    }

    #[test]
    fn brownout_escalates_and_relaxes_with_hysteresis() {
        let cfg = BrownoutConfig {
            queue_high: 10,
            queue_low: 2,
            p95_high_us: 1_000_000,
            p95_low_us: 1_000_000, // latency never blocks cooling here
            dwell: 3,
            window: 8,
        };
        let c = BrownoutController::new(cfg);
        assert_eq!(c.level(), 0);
        // Two hot observations: below dwell, level holds.
        assert_eq!(c.observe(20, 10), None);
        assert_eq!(c.observe(20, 10), None);
        // A band observation resets the dwell count.
        assert_eq!(c.observe(5, 10), None);
        assert_eq!(c.observe(20, 10), None);
        assert_eq!(c.observe(20, 10), None);
        assert_eq!(c.observe(20, 10), Some((0, 1)), "dwell hot observations escalate");
        // Saturating at the max level.
        for _ in 0..3 {
            c.observe(20, 10);
        }
        for _ in 0..3 {
            c.observe(20, 10);
        }
        assert_eq!(c.level(), 3);
        for _ in 0..9 {
            c.observe(20, 10);
        }
        assert_eq!(c.level(), MAX_BROWNOUT_LEVEL, "level saturates");
        // Cool observations relax one step per dwell run.
        assert_eq!(c.observe(0, 10), None);
        assert_eq!(c.observe(0, 10), None);
        assert_eq!(c.observe(0, 10), Some((3, 2)));
        for _ in 0..6 {
            c.observe(0, 10);
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn brownout_latency_watermark_escalates() {
        let cfg = BrownoutConfig {
            queue_high: usize::MAX,
            queue_low: usize::MAX, // queue never blocks cooling
            p95_high_us: 1_000,
            p95_low_us: 100,
            dwell: 1,
            window: 4,
        };
        let c = BrownoutController::new(cfg);
        assert_eq!(c.observe(0, 5_000), Some((0, 1)), "slow executes alone escalate");
        assert!(c.window_p95_us() >= 5_000);
        // Fast executes wash the slow sample out of the window, then cool.
        let mut relaxed = false;
        for _ in 0..8 {
            if c.observe(0, 10) == Some((1, 0)) {
                relaxed = true;
            }
        }
        assert!(relaxed, "windowed p95 must recover and relax the level");
    }

    #[test]
    fn stride_map_is_monotone() {
        assert_eq!(stride_for(0), 1);
        assert_eq!(stride_for(1), 2);
        assert_eq!(stride_for(2), 4);
        assert_eq!(stride_for(3), 0);
        assert_eq!(stride_for(200), 0, "levels past max shed fully");
    }
}
