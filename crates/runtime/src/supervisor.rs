//! The shard supervisor: spawns workers, watches for abnormal exits
//! (scheduled kills, escalations), recovers their state, and respawns them.
//!
//! ## Recovery contract
//!
//! A worker's in-memory forms die with it. The supervisor rebuilds them from
//! two sources that together always cover the full ingest stream:
//!
//! 1. **Durable state** — snapshot + WAL replay via
//!    [`stq_durability::recover_shard`] (when durability is configured).
//!    This restores every event up to some prefix of the stream; a torn WAL
//!    tail only shortens the prefix.
//! 2. **The redo buffer** — the server retains every ingested event whose
//!    durability the shard has not yet acknowledged (`durable_seq`). Events
//!    past the recovered prefix are re-appended to the WAL and re-applied
//!    here, in sequence order, through the same
//!    [`apply_crossing`](stq_durability::apply_crossing) rule the live path
//!    uses.
//!
//! The recovered prefix never ends before `durable_seq` (synced bytes
//! survive any crash) and the redo buffer starts no later than
//! `durable_seq + 1`, so the composition is gapless: the respawned worker's
//! state is **byte-identical** to an uninterrupted run. Without durability
//! the buffer is simply never trimmed and recovery replays it in full on top
//! of the startup forms — same argument, all in memory.
//!
//! While a shard recovers its health slot reads `Recovering`; the
//! aggregator skips it and answers with sound widened `[lower, upper]`
//! brackets (a skipped edge contributes its lifetime worst case). If the
//! composition ever *does* have a gap (mid-log damage plus a trimmed
//! buffer), the supervisor quarantines the whole shard's edges — refusals
//! widen bounds soundly — rather than serving silently wrong counts; the
//! full audit → repair pipeline can then be run offline (`stq recover`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use stq_core::engine::QueryEngine;
use stq_core::tracker::Crossing;
use stq_durability::{apply_crossing, recover_shard, ShardDurability};
use stq_forms::TrackingForm;
use stq_net::{DurabilityFaultPlan, FaultPlan};
use stq_subscribe::SubscriptionRegistry;

use crate::metrics::{Metrics, SubscriptionTrace};
use crate::server::DurabilityConfig;
use crate::shard::{
    RetiredState, ShardMsg, ShardWorker, WorkerExit, WorkerSeed, HEALTHY, RECOVERING,
};
use crate::shardmap::{Migration, ShardMap};

/// Per-shard ingest bookkeeping, shared between the server (sequence
/// assignment, redo retention) and the supervisor (recovery replay).
pub(crate) struct IngestLane {
    /// Highest sequence number handed out.
    pub next_seq: u64,
    /// Events not yet acknowledged durable, oldest first. Trimmed against
    /// the shard's `durable_seq`; without durability it retains everything.
    pub buf: VecDeque<(u64, Crossing)>,
}

/// What a dying worker reports upward.
pub(crate) struct WorkerEvent {
    pub shard: usize,
    pub exit: WorkerExit,
    /// Fault-plan clock at death, carried into the next incarnation.
    pub delivered: u64,
}

/// Messages the supervisor thread consumes.
pub(crate) enum SupervisorMsg {
    Worker(WorkerEvent),
    /// Execute a shard-map migration: retire the involved workers, move the
    /// listed edge forms between their states, commit the new assignment,
    /// and respawn. Replies on `done` when the protocol finishes.
    Migrate {
        moves: Vec<Migration>,
        done: Sender<MigrationOutcome>,
    },
    Shutdown,
}

/// The result of one migration request.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MigrationOutcome {
    /// False when the migration was aborted (unhealthy shard, retire
    /// timeout, or an empty move list) — the map was not committed.
    pub committed: bool,
    pub edges_moved: usize,
}

pub(crate) struct Supervisor {
    durability: Option<DurabilityConfig>,
    /// Startup forms per shard — the recovery base when durability is off
    /// (`None` when durability is on: disk is the base then).
    base: Option<Vec<HashMap<usize, TrackingForm>>>,
    /// Ingest sequence each durability-off recovery base was captured at:
    /// recovery replays only redo events past it. Zero at startup; a
    /// migration refreshes the involved bases to the retirement cut.
    base_seq: Vec<u64>,
    /// Audit quarantine per shard, re-imposed on every respawn.
    quarantine: Vec<HashSet<usize>>,
    plan: FaultPlan,
    dfaults: DurabilityFaultPlan,
    panic_threshold: u32,
    receivers: Vec<Receiver<ShardMsg>>,
    lanes: Arc<Vec<Mutex<IngestLane>>>,
    health: Arc<Vec<AtomicU8>>,
    durable_seq: Arc<Vec<AtomicU64>>,
    metrics: Arc<Metrics>,
    /// The dispatchers' plan cache, cleared on every recovery (recovery may
    /// extend quarantine, so cached plans are dropped conservatively).
    engine: Arc<QueryEngine>,
    /// The standing-query registry: every recovery advances its epoch (and
    /// re-snapshots all brackets) *before* the health flip, so a delta
    /// arriving mid-recovery can never survive into a pre-crash bracket.
    subs: Arc<SubscriptionRegistry>,
    /// The edge→shard map, committed here (and only here) after a
    /// migration's forms have physically moved.
    map: Arc<dyn ShardMap>,
    /// Senders to the shard channels, needed to post `Retire` during a
    /// migration.
    to_shards: Vec<Sender<ShardMsg>>,
    /// Edges migrated *away* from each shard. Recovery's redo replay skips
    /// these (the event's form now lives on another shard) while still
    /// advancing the sequence floor, so replay stays gapless.
    migrated_away: Vec<HashSet<usize>>,
    events_tx: Sender<SupervisorMsg>,
    handles: Vec<JoinHandle<()>>,
}

impl Supervisor {
    /// Builds the supervisor and spawns the initial worker per shard.
    /// `parts[i]` are shard `i`'s forms; with durability on, each shard's
    /// directory is initialized with a base snapshot of them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        parts: Vec<HashMap<usize, TrackingForm>>,
        quarantine: Vec<HashSet<usize>>,
        plan: FaultPlan,
        durability: Option<DurabilityConfig>,
        panic_threshold: u32,
        receivers: Vec<Receiver<ShardMsg>>,
        lanes: Arc<Vec<Mutex<IngestLane>>>,
        health: Arc<Vec<AtomicU8>>,
        durable_seq: Arc<Vec<AtomicU64>>,
        metrics: Arc<Metrics>,
        engine: Arc<QueryEngine>,
        subs: Arc<SubscriptionRegistry>,
        map: Arc<dyn ShardMap>,
        to_shards: Vec<Sender<ShardMsg>>,
        events_tx: Sender<SupervisorMsg>,
    ) -> Self {
        let dfaults =
            durability.as_ref().map(|d| d.faults.clone()).unwrap_or_else(DurabilityFaultPlan::none);
        let num_shards = receivers.len();
        let mut sup = Supervisor {
            base: if durability.is_none() { Some(parts.clone()) } else { None },
            base_seq: vec![0; num_shards],
            durability,
            quarantine,
            plan,
            dfaults,
            panic_threshold,
            receivers,
            lanes,
            health,
            durable_seq,
            metrics,
            engine,
            subs,
            map,
            to_shards,
            migrated_away: vec![HashSet::new(); num_shards],
            events_tx,
            handles: Vec::new(),
        };
        for (i, forms) in parts.into_iter().enumerate() {
            let shard_durability = sup.durability.as_ref().map(|cfg| {
                ShardDurability::initialize(
                    &cfg.wal_dir,
                    i,
                    &forms,
                    0,
                    cfg.snapshot_every,
                    cfg.sync_every,
                )
                .expect("initialize shard durability")
            });
            let quarantined = sup.quarantine[i].clone();
            sup.spawn_worker(i, forms, quarantined, shard_durability, 0, 0);
        }
        sup
    }

    /// The supervision loop: recover-and-respawn on every abnormal worker
    /// exit until the runtime signals shutdown, then join every worker
    /// thread ever spawned.
    pub(crate) fn run(mut self, events_rx: Receiver<SupervisorMsg>) {
        while let Ok(msg) = events_rx.recv() {
            match msg {
                SupervisorMsg::Worker(ev) => self.recover(ev),
                SupervisorMsg::Migrate { moves, done } => {
                    let outcome = self.migrate(moves);
                    let _ = done.send(outcome);
                }
                SupervisorMsg::Shutdown => break,
            }
        }
        // The supervisor holds its own clones of the shard senders (for the
        // Retire handshake); drop them so the workers see their channels
        // disconnect — by shutdown time the runtime has already dropped the
        // dispatcher-side senders.
        self.to_shards.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn recover(&mut self, ev: WorkerEvent) {
        debug_assert_ne!(ev.exit, WorkerExit::Shutdown, "shutdown exits are not reported");
        let shard = ev.shard;
        let t0 = Instant::now();
        self.health[shard].store(RECOVERING, Ordering::Release);
        self.metrics.recovering.fetch_add(1, Ordering::Relaxed);

        // The lane lock freezes the redo buffer and the sequence counter for
        // the duration of the replay; concurrent `ingest` calls block, so
        // nothing can slip between the replayed prefix and the respawned
        // worker's dedup floor.
        let lanes = Arc::clone(&self.lanes);
        let lane = lanes[shard].lock();
        let mut extra_quarantine: HashSet<usize> = HashSet::new();
        let (mut forms, mut last_seq, mut durability) = match &self.durability {
            Some(cfg) => {
                match recover_shard(&cfg.wal_dir, shard, cfg.snapshot_every, cfg.sync_every) {
                    Ok(rec) => {
                        Metrics::add(&self.metrics.wal_replayed, rec.report.wal_records);
                        (rec.forms, rec.report.recovered_seq, Some(rec.durability))
                    }
                    Err(_) => {
                        // Disk is unreadable: serve nothing from this shard
                        // (every edge refused → sound widened bounds) rather
                        // than guessing at state.
                        extra_quarantine.extend(lane.buf.iter().map(|&(_, c)| c.edge));
                        (HashMap::new(), lane.next_seq, None)
                    }
                }
            }
            None => (
                self.base.as_ref().expect("base forms kept when durability is off")[shard].clone(),
                self.base_seq[shard],
                None,
            ),
        };

        // Redo: everything in the retention buffer past the recovered
        // prefix, re-appended and re-applied in sequence order.
        if let Some(&(first, _)) = lane.buf.front() {
            if first > last_seq + 1 {
                // A gap the buffer cannot bridge (mid-log damage past the
                // durable floor). Sound fallback: quarantine the shard —
                // refusals widen every answer's bounds — and hand the gap to
                // the offline audit → repair path.
                Metrics::add(&self.metrics.lost_events, first - last_seq - 1);
                extra_quarantine.extend(forms.keys().copied());
                extra_quarantine.extend(lane.buf.iter().map(|&(_, c)| c.edge));
                durability = None;
                last_seq = first - 1;
            }
        }
        let mut redone = 0u64;
        let floor = last_seq;
        for &(seq, ref c) in lane.buf.iter().filter(|&&(seq, _)| seq > floor) {
            if self.migrated_away[shard].contains(&c.edge) {
                // The edge's form was migrated to another shard after this
                // event was applied there; replaying it here would recreate
                // a stale copy. Skip the apply but still advance the floor —
                // the sequence stream stays gapless. (With durability on,
                // the migration snapshot advanced the durable floor past
                // every pre-migration event, so this only fires for the
                // in-memory redo path.)
                last_seq = seq;
                continue;
            }
            apply_crossing(&mut forms, c);
            if let Some(d) = durability.as_mut() {
                d.append(seq, c, &forms).expect("redo WAL append");
            }
            last_seq = seq;
            redone += 1;
        }
        Metrics::add(&self.metrics.redo_replayed, redone);
        if let Some(d) = durability.as_mut() {
            let durable = d.sync().expect("redo WAL sync");
            self.durable_seq[shard].store(durable, Ordering::Release);
        }
        debug_assert_eq!(last_seq, lane.next_seq, "redo must reach the lane head");

        // Persist any extra quarantine into the supervisor's own set: a
        // *second* recovery of this shard must re-impose it, not forget it.
        self.quarantine[shard].extend(extra_quarantine);
        let quarantined = self.quarantine[shard].clone();
        // Recovery is the one runtime event that can change the serving
        // topology (extra quarantine on unreadable disk or a redo gap), so
        // cached plans are dropped wholesale and recompiled on demand.
        self.engine.invalidate();
        Metrics::bump(&self.metrics.plan_invalidations);
        // Advance the subscription epoch while the lane is still frozen and
        // the shard still reads Recovering: every standing bracket is
        // re-snapshot from the registry's mirror (which the lane lock keeps
        // in lock-step with the redo replay above), so a delta that raced
        // the crash is overwritten before any post-recovery delta can land
        // on top of it — the bump is atomic with the health flip below as
        // far as ingest can observe.
        let resnapped = self.subs.advance_epoch(quarantined.iter().copied());
        Metrics::add(&self.metrics.sub_resnapshots, resnapped.len() as u64);
        self.metrics.sub_epoch.store(self.subs.epoch(), Ordering::Relaxed);
        for u in &resnapped {
            self.metrics.trace_subscription(SubscriptionTrace {
                subscription: u.subscription.0,
                epoch: u.epoch,
                value: u.bracket.value,
                lower: u.bracket.lower,
                upper: u.bracket.upper,
                cause: "resnapshot",
            });
        }
        // Health and the respawn counters flip BEFORE the worker spawns
        // (still under the lane lock): everything the new worker
        // acknowledges — flush barriers, digests, query replies — then
        // happens-after the shard is observably healthy, so a caller that
        // saw its flush complete can never read the shard as recovering.
        // Queries sent in the spawn gap just queue on the shard channel.
        self.health[shard].store(HEALTHY, Ordering::Release);
        self.metrics.recovering.fetch_sub(1, Ordering::Relaxed);
        Metrics::bump(&self.metrics.shard_respawns);
        self.spawn_worker(shard, forms, quarantined, durability, last_seq, ev.delivered);
        drop(lane);
        self.metrics.recovery_us.record(t0.elapsed().as_micros() as u64);
    }

    /// Executes one shard-map migration end to end. Runs on the supervisor
    /// thread (so migrations are serialized against recoveries); ingest on
    /// the involved shards is frozen by holding their lane locks in
    /// ascending order for the whole protocol, which is also what makes the
    /// dispatchers' `shard_of` re-check under a lane lock race-free.
    fn migrate(&mut self, moves: Vec<Migration>) -> MigrationOutcome {
        let aborted = MigrationOutcome { committed: false, edges_moved: 0 };
        let moves: Vec<Migration> = moves.into_iter().filter(|m| m.from != m.to).collect();
        let mut involved: Vec<usize> = moves.iter().flat_map(|m| [m.from, m.to]).collect();
        involved.sort_unstable();
        involved.dedup();
        if moves.is_empty()
            || involved.iter().any(|&s| self.health[s].load(Ordering::Acquire) != HEALTHY)
        {
            Metrics::bump(&self.metrics.rebalance_aborted);
            return aborted;
        }
        let lanes = Arc::clone(&self.lanes);
        let mut guards: Vec<_> = involved.iter().map(|&s| lanes[s].lock()).collect();
        // Retire every involved worker. The shard channel is FIFO, so the
        // reply proves every ingest sent before the lanes froze has been
        // applied — Retire doubles as the quiesce barrier, no separate
        // flush round-trip is needed.
        let mut retired: HashMap<usize, RetiredState> = HashMap::new();
        for &s in &involved {
            let (tx, rx) = bounded(1);
            let sent = self.to_shards[s].send(ShardMsg::Retire(tx)).is_ok();
            let state = if sent { rx.recv_timeout(Duration::from_secs(10)).ok() } else { None };
            match state {
                Some(state) => {
                    retired.insert(s, state);
                }
                None => {
                    // Could not retire this worker (shutdown race or a
                    // stuck shard): respawn the already-retired ones with
                    // their state unchanged and abort. Dropping `rx` makes
                    // a late Retire reply fail at the sender, which
                    // restores that worker in place — the stale message is
                    // harmless.
                    for (s, st) in retired.drain() {
                        self.spawn_worker(
                            s,
                            st.forms,
                            st.quarantined,
                            st.durability,
                            st.last_seq,
                            st.delivered,
                        );
                    }
                    Metrics::bump(&self.metrics.rebalance_aborted);
                    return aborted;
                }
            }
        }
        // Move the edge forms (and their quarantine flags) between the
        // retired states. A move whose edge the source no longer holds is
        // dropped — the plan raced an earlier migration of the same edge.
        let mut committed_moves: Vec<Migration> = Vec::with_capacity(moves.len());
        for &m in &moves {
            let Some(form) = retired.get_mut(&m.from).expect("retired").forms.remove(&m.edge)
            else {
                continue;
            };
            retired.get_mut(&m.to).expect("retired").forms.insert(m.edge, form);
            if retired.get_mut(&m.from).expect("retired").quarantined.remove(&m.edge) {
                retired.get_mut(&m.to).expect("retired").quarantined.insert(m.edge);
            }
            if self.quarantine[m.from].remove(&m.edge) {
                self.quarantine[m.to].insert(m.edge);
            }
            self.migrated_away[m.from].insert(m.edge);
            self.migrated_away[m.to].remove(&m.edge);
            committed_moves.push(m);
        }
        if committed_moves.is_empty() {
            for (s, st) in retired.drain() {
                self.spawn_worker(
                    s,
                    st.forms,
                    st.quarantined,
                    st.durability,
                    st.last_seq,
                    st.delivered,
                );
            }
            Metrics::bump(&self.metrics.rebalance_aborted);
            return aborted;
        }
        // Persist the cut. Durability-on shards re-snapshot (advancing the
        // durable floor past every pre-migration event, so no migrated-away
        // record can ever be WAL-replayed on its old shard); durability-off
        // shards refresh the recovery base to the retirement cut and drop
        // the now-covered redo buffer.
        for (i, &s) in involved.iter().enumerate() {
            let st = retired.get_mut(&s).expect("retired");
            if let Some(d) = st.durability.as_mut() {
                d.snapshot_now(&st.forms).expect("migration snapshot");
                let durable = d.sync().expect("migration WAL sync");
                self.durable_seq[s].store(durable, Ordering::Release);
                Metrics::bump(&self.metrics.snapshots_taken);
            }
            if let Some(base) = self.base.as_mut() {
                base[s] = st.forms.clone();
                self.base_seq[s] = st.last_seq;
                guards[i].buf.clear();
            }
        }
        // Commit: the new assignment, the plan-cache drop, and the standing
        // bracket re-snapshot all become visible while ingest is still
        // frozen, so every layer observes the same map epoch.
        self.map.commit(&committed_moves);
        self.engine.invalidate();
        Metrics::bump(&self.metrics.plan_invalidations);
        let resnapped = self.subs.advance_epoch(std::iter::empty());
        Metrics::add(&self.metrics.sub_resnapshots, resnapped.len() as u64);
        self.metrics.sub_epoch.store(self.subs.epoch(), Ordering::Relaxed);
        for u in &resnapped {
            self.metrics.trace_subscription(SubscriptionTrace {
                subscription: u.subscription.0,
                epoch: u.epoch,
                value: u.bracket.value,
                lower: u.bracket.lower,
                upper: u.bracket.upper,
                cause: "resnapshot",
            });
        }
        Metrics::bump(&self.metrics.rebalances);
        Metrics::add(&self.metrics.edges_migrated, committed_moves.len() as u64);
        self.metrics.map_epoch.store(self.map.epoch(), Ordering::Relaxed);
        // Respawn. Health never left HEALTHY: queries sent during the
        // window queued on the shard channels and are served by the new
        // incarnations against the migrated form set.
        let edges_moved = committed_moves.len();
        for &s in &involved {
            let st = retired.remove(&s).expect("retired");
            self.spawn_worker(
                s,
                st.forms,
                st.quarantined,
                st.durability,
                st.last_seq,
                st.delivered,
            );
        }
        drop(guards);
        MigrationOutcome { committed: true, edges_moved }
    }

    fn spawn_worker(
        &mut self,
        shard: usize,
        forms: HashMap<usize, TrackingForm>,
        quarantined: HashSet<usize>,
        durability: Option<ShardDurability>,
        last_seq: u64,
        delivered: u64,
    ) {
        let worker = ShardWorker::new(WorkerSeed {
            id: shard,
            forms,
            quarantined,
            plan: self.plan.clone(),
            dfaults: self.dfaults.clone(),
            durability,
            last_seq,
            delivered,
            panic_threshold: self.panic_threshold,
            health: Arc::clone(&self.health),
            durable_seq: Arc::clone(&self.durable_seq),
            metrics: Arc::clone(&self.metrics),
        });
        let rx = self.receivers[shard].clone();
        let events = self.events_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("stq-shard-{shard}"))
            .spawn(move || {
                let (exit, delivered) = worker.run(rx);
                if exit != WorkerExit::Shutdown && exit != WorkerExit::Retired {
                    let _ =
                        events.send(SupervisorMsg::Worker(WorkerEvent { shard, exit, delivered }));
                }
            })
            .expect("spawn shard worker");
        self.handles.push(handle);
    }
}
