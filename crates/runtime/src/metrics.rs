//! Lock-cheap observability for the serving runtime.
//!
//! Counters are plain relaxed atomics (queries never contend on a lock to
//! record progress); latencies go into a log₂-bucketed histogram of
//! microseconds, which answers p50/p95/p99 with bounded error (< 2× per
//! bucket) at the cost of one atomic increment per sample. A small ring of
//! per-query traces supports spot debugging without unbounded growth.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

const TRACE_CAP: usize = 256;
const BUCKETS: usize = 64;

/// One completed query, as remembered by the trace ring.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Runtime-assigned query id.
    pub query_id: u64,
    /// Shards the query fanned out to.
    pub shards: usize,
    /// Retry rounds that were needed (0 = first attempt answered).
    pub retries: u32,
    /// Fraction of boundary edges that reported (1.0 = complete).
    pub coverage: f64,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
    /// Whether the answer was served from partial data.
    pub degraded: bool,
    /// Whether the sampled graph could not cover the region at all.
    pub miss: bool,
}

/// Log₂-bucketed latency histogram (microseconds).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: std::array::from_fn(|_| AtomicU64::new(0)), total: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let bucket = (u64::BITS - micros.leading_zeros()) as usize; // log2(x)+1, 0 → 0
        self.counts[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The upper edge (µs) of the bucket holding the `q`-quantile sample,
    /// or 0 when empty. `q` is clamped to [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.len();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b }; // bucket b holds [2^(b-1), 2^b)
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// The runtime's metric registry. All methods are callable from any thread
/// without blocking queries behind each other.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries completed (including misses and degraded answers).
    pub queries: AtomicU64,
    /// Queries the sampled graph could not cover.
    pub misses: AtomicU64,
    /// Queries answered from partial shard data.
    pub degraded: AtomicU64,
    /// Shard requests sent (fan-out messages, including retries).
    pub shard_requests: AtomicU64,
    /// Requests a shard handled successfully.
    pub shard_served: AtomicU64,
    /// Requests lost to injected message drops.
    pub dropped: AtomicU64,
    /// Requests that were delivered late.
    pub delayed: AtomicU64,
    /// Responses that were duplicated in flight.
    pub duplicated: AtomicU64,
    /// Requests swallowed by a crashed shard.
    pub crash_dropped: AtomicU64,
    /// Retry rounds issued after a timeout.
    pub retries: AtomicU64,
    /// Attempt windows that expired with shards still silent.
    pub timeouts: AtomicU64,
    /// Worker panics caught by the shard guard (poisoned payloads).
    pub shard_panics: AtomicU64,
    /// Boundary edges a shard refused to serve because the integrity
    /// auditor quarantined them.
    pub quarantine_refusals: AtomicU64,
    /// Ingestion events dropped for arriving behind the stream watermark.
    pub late_dropped: AtomicU64,
    /// Exact-duplicate crossings suppressed at ingestion.
    pub dup_crossings: AtomicU64,
    /// End-to-end query latency.
    pub latency: Histogram,
    traces: Mutex<VecDeque<QueryTrace>>,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a [`StreamTracker`](stq_core::streaming::StreamTracker)'s
    /// ingestion accounting into the registry, so rejected and deduplicated
    /// traffic shows up next to the serving counters.
    pub fn absorb_stream(&self, s: &stq_core::streaming::StreamStats) {
        Metrics::add(&self.late_dropped, s.late_dropped);
        Metrics::add(&self.dup_crossings, s.duplicates_suppressed);
    }

    /// Records a completed query's trace (evicting the oldest past capacity).
    pub fn trace(&self, t: QueryTrace) {
        let mut ring = self.traces.lock();
        if ring.len() == TRACE_CAP {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// A copy of the most recent traces, oldest first.
    pub fn recent_traces(&self) -> Vec<QueryTrace> {
        self.traces.lock().iter().cloned().collect()
    }

    /// A point-in-time snapshot for reporting.
    pub fn report(&self) -> MetricsReport {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsReport {
            queries: load(&self.queries),
            misses: load(&self.misses),
            degraded: load(&self.degraded),
            shard_requests: load(&self.shard_requests),
            shard_served: load(&self.shard_served),
            dropped: load(&self.dropped),
            delayed: load(&self.delayed),
            duplicated: load(&self.duplicated),
            crash_dropped: load(&self.crash_dropped),
            retries: load(&self.retries),
            timeouts: load(&self.timeouts),
            shard_panics: load(&self.shard_panics),
            quarantine_refusals: load(&self.quarantine_refusals),
            late_dropped: load(&self.late_dropped),
            dup_crossings: load(&self.dup_crossings),
            p50_us: self.latency.quantile_us(0.50),
            p95_us: self.latency.quantile_us(0.95),
            p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// A frozen snapshot of [`Metrics`], cheap to copy around and print.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// See [`Metrics::queries`].
    pub queries: u64,
    /// See [`Metrics::misses`].
    pub misses: u64,
    /// See [`Metrics::degraded`].
    pub degraded: u64,
    /// See [`Metrics::shard_requests`].
    pub shard_requests: u64,
    /// See [`Metrics::shard_served`].
    pub shard_served: u64,
    /// See [`Metrics::dropped`].
    pub dropped: u64,
    /// See [`Metrics::delayed`].
    pub delayed: u64,
    /// See [`Metrics::duplicated`].
    pub duplicated: u64,
    /// See [`Metrics::crash_dropped`].
    pub crash_dropped: u64,
    /// See [`Metrics::retries`].
    pub retries: u64,
    /// See [`Metrics::timeouts`].
    pub timeouts: u64,
    /// See [`Metrics::shard_panics`].
    pub shard_panics: u64,
    /// See [`Metrics::quarantine_refusals`].
    pub quarantine_refusals: u64,
    /// See [`Metrics::late_dropped`].
    pub late_dropped: u64,
    /// See [`Metrics::dup_crossings`].
    pub dup_crossings: u64,
    /// Median latency bucket edge (µs).
    pub p50_us: u64,
    /// 95th-percentile latency bucket edge (µs).
    pub p95_us: u64,
    /// 99th-percentile latency bucket edge (µs).
    pub p99_us: u64,
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries {} (miss {}, degraded {})", self.queries, self.misses, self.degraded)?;
        writeln!(
            f,
            "shard requests {} (served {}, dropped {}, delayed {}, duplicated {}, crashed {})",
            self.shard_requests,
            self.shard_served,
            self.dropped,
            self.delayed,
            self.duplicated,
            self.crash_dropped
        )?;
        writeln!(f, "retry rounds {}, timeout windows {}", self.retries, self.timeouts)?;
        writeln!(
            f,
            "health: worker panics {}, quarantine refusals {}, late events {}, dup crossings {}",
            self.shard_panics, self.quarantine_refusals, self.late_dropped, self.dup_crossings
        )?;
        write!(f, "latency p50 {}us p95 {}us p99 {}us", self.p50_us, self.p95_us, self.p99_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::default();
        for us in [1u64, 2, 3, 100, 200, 100_000] {
            h.record(us);
        }
        assert_eq!(h.len(), 6);
        // p50 of {1,2,3,100,200,100000}: 3rd sample = 3 → bucket edge 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 lands in the largest sample's bucket: 2^17 = 131072 ≥ 100000.
        assert_eq!(h.quantile_us(0.99), 131_072);
        assert!(h.quantile_us(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let m = Metrics::new();
        for i in 0..(TRACE_CAP as u64 + 50) {
            m.trace(QueryTrace {
                query_id: i,
                shards: 1,
                retries: 0,
                coverage: 1.0,
                latency_us: 10,
                degraded: false,
                miss: false,
            });
        }
        let traces = m.recent_traces();
        assert_eq!(traces.len(), TRACE_CAP);
        assert_eq!(traces[0].query_id, 50, "oldest entries evicted first");
    }

    #[test]
    fn stream_stats_are_absorbed() {
        let m = Metrics::new();
        let s = stq_core::streaming::StreamStats {
            accepted: 5,
            late_dropped: 2,
            duplicates_suppressed: 3,
        };
        m.absorb_stream(&s);
        m.absorb_stream(&s);
        let r = m.report();
        assert_eq!(r.late_dropped, 4);
        assert_eq!(r.dup_crossings, 6);
        assert!(r.to_string().contains("late events 4"));
    }

    #[test]
    fn report_snapshot_and_display() {
        let m = Metrics::new();
        Metrics::bump(&m.queries);
        Metrics::add(&m.shard_requests, 4);
        m.latency.record(900);
        let r = m.report();
        assert_eq!(r.queries, 1);
        assert_eq!(r.shard_requests, 4);
        assert_eq!(r.p50_us, 1024);
        let text = r.to_string();
        assert!(text.contains("queries 1"));
        assert!(text.contains("p50 1024us"));
    }
}
