//! Lock-cheap observability for the serving runtime.
//!
//! Counters are plain relaxed atomics (queries never contend on a lock to
//! record progress); latencies go into a log₂-bucketed histogram of
//! microseconds, which answers p50/p95/p99 with bounded error (< 2× per
//! bucket) at the cost of one atomic increment per sample. A small ring of
//! per-query traces supports spot debugging without unbounded growth.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

const TRACE_CAP: usize = 256;
const BUCKETS: usize = 64;

/// One completed query, as remembered by the trace ring.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Runtime-assigned query id.
    pub query_id: u64,
    /// Shards the query fanned out to.
    pub shards: usize,
    /// Retry rounds that were needed (0 = first attempt answered).
    pub retries: u32,
    /// Fraction of boundary edges that reported (1.0 = complete).
    pub coverage: f64,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
    /// Microseconds spent obtaining the query plan (cache lookup plus
    /// compile on a miss).
    pub plan_us: u64,
    /// Whether the plan came from the engine's cache.
    pub plan_cache_hit: bool,
    /// Whether the answer was served from partial data.
    pub degraded: bool,
    /// Whether the sampled graph could not cover the region at all.
    pub miss: bool,
    /// Degraded-mode strategy label (`"none"` when the ordinary path
    /// answered; see `stq_core::DegradedStrategy::label`).
    pub strategy: &'static str,
    /// Brownout precision level the answer was served at (0 = full
    /// precision, 3 = fully shed; see `crate::overload`).
    pub brownout: u8,
    /// Whether the query's deadline elapsed before it finished (the answer
    /// was short-circuited or clamped; its bracket is still sound).
    pub expired: bool,
}

/// One standing-subscription lifecycle event, as remembered by the
/// subscription trace ring (per-delta pushes are accounted in the
/// `delta_push_latency` histogram instead of traced individually — a
/// standing query sees thousands of deltas per re-snapshot).
#[derive(Clone, Debug)]
pub struct SubscriptionTrace {
    /// Registry-assigned subscription id.
    pub subscription: u64,
    /// Registry epoch at the event.
    pub epoch: u64,
    /// Bracket estimate after the event (0 for unsubscribes).
    pub value: f64,
    /// Bracket lower bound after the event.
    pub lower: f64,
    /// Bracket upper bound after the event.
    pub upper: f64,
    /// `"registered"`, `"resnapshot"` or `"unsubscribed"`.
    pub cause: &'static str,
}

/// Log₂-bucketed latency histogram (microseconds).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: std::array::from_fn(|_| AtomicU64::new(0)), total: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let bucket = (u64::BITS - micros.leading_zeros()) as usize; // log2(x)+1, 0 → 0
        self.counts[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The upper edge (µs) of the bucket holding the `q`-quantile sample,
    /// or 0 when empty. `q` is clamped to [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.len();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b }; // bucket b holds [2^(b-1), 2^b)
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// The runtime's metric registry. All methods are callable from any thread
/// without blocking queries behind each other.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries completed (including misses and degraded answers).
    pub queries: AtomicU64,
    /// Queries the sampled graph could not cover.
    pub misses: AtomicU64,
    /// Queries answered from partial shard data.
    pub degraded: AtomicU64,
    /// Gauge: boundary edges the integrity auditor quarantined at startup.
    pub quarantined_edges: AtomicU64,
    /// Degraded answers where plain demotion already resolved best.
    pub degraded_demoted: AtomicU64,
    /// Degraded answers won by the multi-face detour graph.
    pub degraded_detour: AtomicU64,
    /// Degraded answers certified by conservation-interval imputation.
    pub degraded_imputed: AtomicU64,
    /// Degraded answers that fell back to a learned point estimate.
    pub degraded_learned: AtomicU64,
    /// Bracket widths of degraded-mode answers (absolute counts, log₂
    /// buckets) — the "how honest was the widening" histogram.
    pub degraded_width: Histogram,
    /// Shard requests sent (fan-out messages, including retries).
    pub shard_requests: AtomicU64,
    /// Requests a shard handled successfully.
    pub shard_served: AtomicU64,
    /// Requests lost to injected message drops.
    pub dropped: AtomicU64,
    /// Requests that were delivered late.
    pub delayed: AtomicU64,
    /// Responses that were duplicated in flight.
    pub duplicated: AtomicU64,
    /// Requests swallowed by a crashed shard.
    pub crash_dropped: AtomicU64,
    /// Retry rounds issued after a timeout.
    pub retries: AtomicU64,
    /// Attempt windows that expired with shards still silent.
    pub timeouts: AtomicU64,
    /// Worker panics caught by the shard guard (poisoned payloads).
    pub shard_panics: AtomicU64,
    /// Boundary edges a shard refused to serve because the integrity
    /// auditor quarantined them.
    pub quarantine_refusals: AtomicU64,
    /// Ingestion events dropped for arriving behind the stream watermark.
    pub late_dropped: AtomicU64,
    /// Exact-duplicate crossings suppressed at ingestion.
    pub dup_crossings: AtomicU64,
    /// Crossings ingested by shard workers (deduplicated redo deliveries
    /// excluded).
    pub ingested: AtomicU64,
    /// Events `ingest`/`ingest_batch` refused (unknown edge or non-finite
    /// timestamp) — counted instead of panicking the caller.
    pub ingest_rejected: AtomicU64,
    /// Columnar batches dispatched through `ingest_batch`.
    pub ingest_batches: AtomicU64,
    /// Records appended to shard write-ahead logs.
    pub wal_appends: AtomicU64,
    /// Group-commit WAL frames written (one per shard lane per batch; each
    /// frame is one header + one sync for its whole record group).
    pub wal_group_commits: AtomicU64,
    /// Snapshot rollovers (snapshot installed, WAL truncated).
    pub snapshots_taken: AtomicU64,
    /// WAL records replayed during crash recovery.
    pub wal_replayed: AtomicU64,
    /// Redo-buffer events re-applied during crash recovery.
    pub redo_replayed: AtomicU64,
    /// Ingested events recovery could not reconstruct (the affected shard's
    /// edges were quarantined instead of served silently wrong).
    pub lost_events: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub shard_respawns: AtomicU64,
    /// Committed shard-map migration batches (load-aware rebalances).
    pub rebalances: AtomicU64,
    /// Edges moved between shards across all committed migrations.
    pub edges_migrated: AtomicU64,
    /// Migration batches aborted before commit (an involved shard was
    /// unhealthy or failed to quiesce; routing stayed unchanged).
    pub rebalance_aborted: AtomicU64,
    /// Gauge: the shard map's current epoch (0 until the first migration).
    pub map_epoch: AtomicU64,
    /// Workers that escalated after consecutive panicked requests.
    pub escalations: AtomicU64,
    /// Shard fan-outs skipped because the shard was unhealthy or recovering
    /// (each skip degrades that query's coverage instead of stalling it).
    pub skipped_unhealthy: AtomicU64,
    /// Gauge: shards currently being recovered by the supervisor.
    pub recovering: AtomicU64,
    /// Query plans served from the engine's cache.
    pub plan_cache_hits: AtomicU64,
    /// Query plans compiled because no cached plan existed.
    pub plan_cache_misses: AtomicU64,
    /// Wholesale plan-cache clears (recovery re-admissions).
    pub plan_invalidations: AtomicU64,
    /// Time to obtain a plan (cache lookup + compile on miss).
    pub plan_latency: Histogram,
    /// Time to execute an obtained plan (fan-out through aggregation).
    pub execute_latency: Histogram,
    /// End-to-end query latency.
    pub latency: Histogram,
    /// Supervisor recovery duration (abnormal exit → re-admitted).
    pub recovery_us: Histogram,
    /// Gauge: live standing subscriptions in the registry.
    pub subscriptions: AtomicU64,
    /// Bracket deltas pushed to standing subscriptions by ingested events.
    pub deltas_pushed: AtomicU64,
    /// Per-subscription re-snapshots at epoch advances (recovery, repair,
    /// forced).
    pub sub_resnapshots: AtomicU64,
    /// Gauge: current subscription-registry epoch.
    pub sub_epoch: AtomicU64,
    /// Time `ingest` spends delta-pushing one event to all affected
    /// standing brackets — the staleness of the push path.
    pub delta_push_latency: Histogram,
    /// Gauge: jobs sitting in the submission queue (sampled at submit and
    /// dispatch; the brownout controller's first watermark input).
    pub queue_depth: AtomicU64,
    /// Queries the admission gate refused (cost capacity exceeded or the
    /// queue full on `try_submit`) — each carried a `retry_after` hint.
    pub admission_rejected: AtomicU64,
    /// Queries whose deadline elapsed before completion (short-circuited at
    /// submit, at dispatch, or clamped mid-fan-out).
    pub deadline_expired: AtomicU64,
    /// Fan-out requests a shard worker dropped unserved because the query's
    /// deadline had already passed on arrival.
    pub shard_deadline_skips: AtomicU64,
    /// Answers served at a reduced (but non-zero) brownout precision level
    /// (a strided boundary: wider sound brackets, cheaper execution).
    pub downgraded: AtomicU64,
    /// Answers fully shed by brownout level 3 (no fan-out at all; the
    /// bracket comes from worst-case totals alone).
    pub shed: AtomicU64,
    /// Gauge: the brownout controller's current precision level (0–3).
    pub brownout_level: AtomicU64,
    /// Brownout level changes (escalations plus relaxations).
    pub brownout_shifts: AtomicU64,
    /// Circuit breakers tripped open (consecutive silent attempt windows).
    pub breaker_opened: AtomicU64,
    /// Breakers that let a half-open probe through after `open_for`.
    pub breaker_half_open: AtomicU64,
    /// Breakers closed again by a successful probe or response.
    pub breaker_closed: AtomicU64,
    /// Shard fan-outs skipped because the shard's breaker was open (each
    /// degrades that query's coverage immediately instead of retrying).
    pub breaker_skipped: AtomicU64,
    /// Standing-subscription pushes coalesced after brownout shedding
    /// lifted (one catch-up push per subscription).
    pub sub_coalesced: AtomicU64,
    traces: Mutex<VecDeque<QueryTrace>>,
    sub_traces: Mutex<VecDeque<SubscriptionTrace>>,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a [`StreamTracker`](stq_core::streaming::StreamTracker)'s
    /// ingestion accounting into the registry, so rejected and deduplicated
    /// traffic shows up next to the serving counters.
    pub fn absorb_stream(&self, s: &stq_core::streaming::StreamStats) {
        Metrics::add(&self.late_dropped, s.late_dropped);
        Metrics::add(&self.dup_crossings, s.duplicates_suppressed);
    }

    /// Records a completed query's trace (evicting the oldest past capacity).
    pub fn trace(&self, t: QueryTrace) {
        let mut ring = self.traces.lock();
        if ring.len() == TRACE_CAP {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// A copy of the most recent traces, oldest first.
    pub fn recent_traces(&self) -> Vec<QueryTrace> {
        self.traces.lock().iter().cloned().collect()
    }

    /// Records a subscription lifecycle event (evicting the oldest past
    /// capacity).
    pub fn trace_subscription(&self, t: SubscriptionTrace) {
        let mut ring = self.sub_traces.lock();
        if ring.len() == TRACE_CAP {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// A copy of the most recent subscription traces, oldest first.
    pub fn recent_subscription_traces(&self) -> Vec<SubscriptionTrace> {
        self.sub_traces.lock().iter().cloned().collect()
    }

    /// A point-in-time snapshot for reporting.
    pub fn report(&self) -> MetricsReport {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsReport {
            queries: load(&self.queries),
            misses: load(&self.misses),
            degraded: load(&self.degraded),
            quarantined_edges: load(&self.quarantined_edges),
            degraded_demoted: load(&self.degraded_demoted),
            degraded_detour: load(&self.degraded_detour),
            degraded_imputed: load(&self.degraded_imputed),
            degraded_learned: load(&self.degraded_learned),
            degraded_width_p95: self.degraded_width.quantile_us(0.95),
            shard_requests: load(&self.shard_requests),
            shard_served: load(&self.shard_served),
            dropped: load(&self.dropped),
            delayed: load(&self.delayed),
            duplicated: load(&self.duplicated),
            crash_dropped: load(&self.crash_dropped),
            retries: load(&self.retries),
            timeouts: load(&self.timeouts),
            shard_panics: load(&self.shard_panics),
            quarantine_refusals: load(&self.quarantine_refusals),
            late_dropped: load(&self.late_dropped),
            dup_crossings: load(&self.dup_crossings),
            ingested: load(&self.ingested),
            ingest_rejected: load(&self.ingest_rejected),
            ingest_batches: load(&self.ingest_batches),
            wal_appends: load(&self.wal_appends),
            wal_group_commits: load(&self.wal_group_commits),
            snapshots_taken: load(&self.snapshots_taken),
            wal_replayed: load(&self.wal_replayed),
            redo_replayed: load(&self.redo_replayed),
            lost_events: load(&self.lost_events),
            shard_respawns: load(&self.shard_respawns),
            rebalances: load(&self.rebalances),
            edges_migrated: load(&self.edges_migrated),
            rebalance_aborted: load(&self.rebalance_aborted),
            map_epoch: load(&self.map_epoch),
            escalations: load(&self.escalations),
            skipped_unhealthy: load(&self.skipped_unhealthy),
            recovering: load(&self.recovering),
            plan_cache_hits: load(&self.plan_cache_hits),
            plan_cache_misses: load(&self.plan_cache_misses),
            plan_invalidations: load(&self.plan_invalidations),
            subscriptions: load(&self.subscriptions),
            deltas_pushed: load(&self.deltas_pushed),
            sub_resnapshots: load(&self.sub_resnapshots),
            sub_epoch: load(&self.sub_epoch),
            queue_depth: load(&self.queue_depth),
            admission_rejected: load(&self.admission_rejected),
            deadline_expired: load(&self.deadline_expired),
            shard_deadline_skips: load(&self.shard_deadline_skips),
            downgraded: load(&self.downgraded),
            shed: load(&self.shed),
            brownout_level: load(&self.brownout_level),
            brownout_shifts: load(&self.brownout_shifts),
            breaker_opened: load(&self.breaker_opened),
            breaker_half_open: load(&self.breaker_half_open),
            breaker_closed: load(&self.breaker_closed),
            breaker_skipped: load(&self.breaker_skipped),
            sub_coalesced: load(&self.sub_coalesced),
            delta_push_p95_us: self.delta_push_latency.quantile_us(0.95),
            plan_p95_us: self.plan_latency.quantile_us(0.95),
            execute_p95_us: self.execute_latency.quantile_us(0.95),
            p50_us: self.latency.quantile_us(0.50),
            p95_us: self.latency.quantile_us(0.95),
            p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// A frozen snapshot of [`Metrics`], cheap to copy around and print.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// See [`Metrics::queries`].
    pub queries: u64,
    /// See [`Metrics::misses`].
    pub misses: u64,
    /// See [`Metrics::degraded`].
    pub degraded: u64,
    /// See [`Metrics::quarantined_edges`] (gauge at snapshot time).
    pub quarantined_edges: u64,
    /// See [`Metrics::degraded_demoted`].
    pub degraded_demoted: u64,
    /// See [`Metrics::degraded_detour`].
    pub degraded_detour: u64,
    /// See [`Metrics::degraded_imputed`].
    pub degraded_imputed: u64,
    /// See [`Metrics::degraded_learned`].
    pub degraded_learned: u64,
    /// 95th-percentile degraded-answer bracket width bucket edge (counts).
    pub degraded_width_p95: u64,
    /// See [`Metrics::shard_requests`].
    pub shard_requests: u64,
    /// See [`Metrics::shard_served`].
    pub shard_served: u64,
    /// See [`Metrics::dropped`].
    pub dropped: u64,
    /// See [`Metrics::delayed`].
    pub delayed: u64,
    /// See [`Metrics::duplicated`].
    pub duplicated: u64,
    /// See [`Metrics::crash_dropped`].
    pub crash_dropped: u64,
    /// See [`Metrics::retries`].
    pub retries: u64,
    /// See [`Metrics::timeouts`].
    pub timeouts: u64,
    /// See [`Metrics::shard_panics`].
    pub shard_panics: u64,
    /// See [`Metrics::quarantine_refusals`].
    pub quarantine_refusals: u64,
    /// See [`Metrics::late_dropped`].
    pub late_dropped: u64,
    /// See [`Metrics::dup_crossings`].
    pub dup_crossings: u64,
    /// See [`Metrics::ingested`].
    pub ingested: u64,
    /// See [`Metrics::ingest_rejected`].
    pub ingest_rejected: u64,
    /// See [`Metrics::ingest_batches`].
    pub ingest_batches: u64,
    /// See [`Metrics::wal_appends`].
    pub wal_appends: u64,
    /// See [`Metrics::wal_group_commits`].
    pub wal_group_commits: u64,
    /// See [`Metrics::snapshots_taken`].
    pub snapshots_taken: u64,
    /// See [`Metrics::wal_replayed`].
    pub wal_replayed: u64,
    /// See [`Metrics::redo_replayed`].
    pub redo_replayed: u64,
    /// See [`Metrics::lost_events`].
    pub lost_events: u64,
    /// See [`Metrics::shard_respawns`].
    pub shard_respawns: u64,
    /// See [`Metrics::rebalances`].
    pub rebalances: u64,
    /// See [`Metrics::edges_migrated`].
    pub edges_migrated: u64,
    /// See [`Metrics::rebalance_aborted`].
    pub rebalance_aborted: u64,
    /// See [`Metrics::map_epoch`] (gauge at snapshot time).
    pub map_epoch: u64,
    /// See [`Metrics::escalations`].
    pub escalations: u64,
    /// See [`Metrics::skipped_unhealthy`].
    pub skipped_unhealthy: u64,
    /// See [`Metrics::recovering`] (gauge at snapshot time).
    pub recovering: u64,
    /// See [`Metrics::plan_cache_hits`].
    pub plan_cache_hits: u64,
    /// See [`Metrics::plan_cache_misses`].
    pub plan_cache_misses: u64,
    /// See [`Metrics::plan_invalidations`].
    pub plan_invalidations: u64,
    /// See [`Metrics::subscriptions`] (gauge at snapshot time).
    pub subscriptions: u64,
    /// See [`Metrics::deltas_pushed`].
    pub deltas_pushed: u64,
    /// See [`Metrics::sub_resnapshots`].
    pub sub_resnapshots: u64,
    /// See [`Metrics::sub_epoch`] (gauge at snapshot time).
    pub sub_epoch: u64,
    /// See [`Metrics::queue_depth`] (gauge at snapshot time).
    pub queue_depth: u64,
    /// See [`Metrics::admission_rejected`].
    pub admission_rejected: u64,
    /// See [`Metrics::deadline_expired`].
    pub deadline_expired: u64,
    /// See [`Metrics::shard_deadline_skips`].
    pub shard_deadline_skips: u64,
    /// See [`Metrics::downgraded`].
    pub downgraded: u64,
    /// See [`Metrics::shed`].
    pub shed: u64,
    /// See [`Metrics::brownout_level`] (gauge at snapshot time).
    pub brownout_level: u64,
    /// See [`Metrics::brownout_shifts`].
    pub brownout_shifts: u64,
    /// See [`Metrics::breaker_opened`].
    pub breaker_opened: u64,
    /// See [`Metrics::breaker_half_open`].
    pub breaker_half_open: u64,
    /// See [`Metrics::breaker_closed`].
    pub breaker_closed: u64,
    /// See [`Metrics::breaker_skipped`].
    pub breaker_skipped: u64,
    /// See [`Metrics::sub_coalesced`].
    pub sub_coalesced: u64,
    /// 95th-percentile delta-push latency bucket edge (µs).
    pub delta_push_p95_us: u64,
    /// 95th-percentile plan-acquisition latency bucket edge (µs).
    pub plan_p95_us: u64,
    /// 95th-percentile plan-execution latency bucket edge (µs).
    pub execute_p95_us: u64,
    /// Median latency bucket edge (µs).
    pub p50_us: u64,
    /// 95th-percentile latency bucket edge (µs).
    pub p95_us: u64,
    /// 99th-percentile latency bucket edge (µs).
    pub p99_us: u64,
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries {} (miss {}, degraded {})", self.queries, self.misses, self.degraded)?;
        writeln!(
            f,
            "shard requests {} (served {}, dropped {}, delayed {}, duplicated {}, crashed {})",
            self.shard_requests,
            self.shard_served,
            self.dropped,
            self.delayed,
            self.duplicated,
            self.crash_dropped
        )?;
        writeln!(f, "retry rounds {}, timeout windows {}", self.retries, self.timeouts)?;
        writeln!(
            f,
            "health: worker panics {}, quarantine refusals {}, late events {}, dup crossings {}",
            self.shard_panics, self.quarantine_refusals, self.late_dropped, self.dup_crossings
        )?;
        writeln!(
            f,
            "degraded-mode: quarantined edges {}, demoted {}, detour {}, imputed {}, learned {}, \
             width p95 {}",
            self.quarantined_edges,
            self.degraded_demoted,
            self.degraded_detour,
            self.degraded_imputed,
            self.degraded_learned,
            self.degraded_width_p95
        )?;
        writeln!(
            f,
            "durability: ingested {}, wal appends {}, snapshots {}",
            self.ingested, self.wal_appends, self.snapshots_taken
        )?;
        writeln!(
            f,
            "ingest: rejected {}, batches {}, group commits {}",
            self.ingest_rejected, self.ingest_batches, self.wal_group_commits
        )?;
        writeln!(
            f,
            "supervision: respawns {}, escalations {}, wal replayed {}, redo replayed {}, \
             lost events {}, skipped unhealthy {}, recovering {}",
            self.shard_respawns,
            self.escalations,
            self.wal_replayed,
            self.redo_replayed,
            self.lost_events,
            self.skipped_unhealthy,
            self.recovering
        )?;
        writeln!(
            f,
            "rebalance: migrations {}, edges moved {}, aborted {}, map epoch {}",
            self.rebalances, self.edges_migrated, self.rebalance_aborted, self.map_epoch
        )?;
        writeln!(
            f,
            "standing: subscriptions {}, deltas pushed {}, resnapshots {}, epoch {}, \
             delta push p95 {}us",
            self.subscriptions,
            self.deltas_pushed,
            self.sub_resnapshots,
            self.sub_epoch,
            self.delta_push_p95_us
        )?;
        writeln!(
            f,
            "overload: queue depth {}, rejected {}, expired {}, downgraded {}, shed {}, \
             brownout level {} (shifts {})",
            self.queue_depth,
            self.admission_rejected,
            self.deadline_expired,
            self.downgraded,
            self.shed,
            self.brownout_level,
            self.brownout_shifts
        )?;
        writeln!(
            f,
            "breakers: opened {}, half-open {}, closed {}, skipped {}, shard deadline skips {}, \
             pushes coalesced {}",
            self.breaker_opened,
            self.breaker_half_open,
            self.breaker_closed,
            self.breaker_skipped,
            self.shard_deadline_skips,
            self.sub_coalesced
        )?;
        writeln!(
            f,
            "engine: plan hits {} misses {} invalidations {}, plan p95 {}us, execute p95 {}us",
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_invalidations,
            self.plan_p95_us,
            self.execute_p95_us
        )?;
        write!(f, "latency p50 {}us p95 {}us p99 {}us", self.p50_us, self.p95_us, self.p99_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::default();
        for us in [1u64, 2, 3, 100, 200, 100_000] {
            h.record(us);
        }
        assert_eq!(h.len(), 6);
        // p50 of {1,2,3,100,200,100000}: 3rd sample = 3 → bucket edge 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 lands in the largest sample's bucket: 2^17 = 131072 ≥ 100000.
        assert_eq!(h.quantile_us(0.99), 131_072);
        assert!(h.quantile_us(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let m = Metrics::new();
        for i in 0..(TRACE_CAP as u64 + 50) {
            m.trace(QueryTrace {
                query_id: i,
                shards: 1,
                retries: 0,
                coverage: 1.0,
                latency_us: 10,
                plan_us: 2,
                plan_cache_hit: false,
                degraded: false,
                miss: false,
                strategy: "none",
                brownout: 0,
                expired: false,
            });
        }
        let traces = m.recent_traces();
        assert_eq!(traces.len(), TRACE_CAP);
        assert_eq!(traces[0].query_id, 50, "oldest entries evicted first");
    }

    #[test]
    fn histogram_top_bucket_saturates() {
        let h = Histogram::default();
        // Everything at or beyond 2^63 µs lands in (and never overflows)
        // the final bucket; the quantile reports that bucket's edge.
        for us in [u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1] {
            h.record(us);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.quantile_us(1.0), 1u64 << 63);
        assert_eq!(h.quantile_us(0.0), 1u64 << 63);
    }

    #[test]
    fn histogram_zero_sample_and_monotone_quantiles() {
        let h = Histogram::default();
        h.record(0); // 0 leading-zero trick: 0 → bucket 0, edge 0
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 7, 500, 1 << 40] {
            h.record(us);
        }
        let qs: Vec<u64> =
            [0.0, 0.25, 0.5, 0.75, 0.9, 1.0].iter().map(|&q| h.quantile_us(q)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must be monotone: {qs:?}");
        // Out-of-range q is clamped, not panicked on.
        assert_eq!(h.quantile_us(-3.0), h.quantile_us(0.0));
        assert_eq!(h.quantile_us(42.0), h.quantile_us(1.0));
    }

    #[test]
    fn trace_ring_wraps_exactly_at_capacity() {
        let mk = |id: u64| QueryTrace {
            query_id: id,
            shards: 1,
            retries: 0,
            coverage: 1.0,
            latency_us: 10,
            plan_us: 2,
            plan_cache_hit: id % 2 == 0,
            degraded: false,
            miss: false,
            strategy: "none",
            brownout: 0,
            expired: false,
        };
        let m = Metrics::new();
        for i in 0..TRACE_CAP as u64 {
            m.trace(mk(i));
        }
        // Exactly full: nothing evicted yet.
        let t = m.recent_traces();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t[0].query_id, 0);
        // One more evicts exactly the oldest.
        m.trace(mk(TRACE_CAP as u64));
        let t = m.recent_traces();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t[0].query_id, 1);
        assert_eq!(t[TRACE_CAP - 1].query_id, TRACE_CAP as u64);
    }

    #[test]
    fn durability_counters_round_trip_report() {
        let m = Metrics::new();
        Metrics::add(&m.ingested, 100);
        Metrics::add(&m.wal_appends, 100);
        Metrics::bump(&m.snapshots_taken);
        Metrics::bump(&m.shard_respawns);
        Metrics::add(&m.wal_replayed, 40);
        Metrics::add(&m.redo_replayed, 5);
        m.recovery_us.record(800);
        let r = m.report();
        assert_eq!(r.ingested, 100);
        assert_eq!(r.snapshots_taken, 1);
        assert_eq!(r.shard_respawns, 1);
        let text = r.to_string();
        assert!(text.contains("wal appends 100"));
        assert!(text.contains("respawns 1"));
        // Pre-existing lines keep their shape (additive change only).
        assert!(text.contains("latency p50"));
    }

    #[test]
    fn engine_counters_round_trip_report() {
        let m = Metrics::new();
        Metrics::add(&m.plan_cache_hits, 7);
        Metrics::add(&m.plan_cache_misses, 3);
        Metrics::bump(&m.plan_invalidations);
        m.plan_latency.record(12);
        m.execute_latency.record(700);
        let r = m.report();
        assert_eq!(r.plan_cache_hits, 7);
        assert_eq!(r.plan_cache_misses, 3);
        assert_eq!(r.plan_invalidations, 1);
        assert!(r.plan_p95_us >= 12);
        assert!(r.execute_p95_us >= 700);
        let text = r.to_string();
        assert!(text.contains("plan hits 7 misses 3 invalidations 1"));
        // Pre-existing lines keep their shape (additive change only).
        assert!(text.contains("latency p50"));
        assert!(text.contains("queries 0"));
    }

    #[test]
    fn subscription_counters_round_trip_report() {
        let m = Metrics::new();
        m.subscriptions.store(3, Ordering::Relaxed);
        Metrics::add(&m.deltas_pushed, 41);
        Metrics::add(&m.sub_resnapshots, 6);
        m.sub_epoch.store(2, Ordering::Relaxed);
        m.delta_push_latency.record(9);
        let r = m.report();
        assert_eq!(r.subscriptions, 3);
        assert_eq!(r.deltas_pushed, 41);
        assert_eq!(r.sub_resnapshots, 6);
        assert_eq!(r.sub_epoch, 2);
        assert!(r.delta_push_p95_us >= 9);
        let text = r.to_string();
        assert!(text.contains("subscriptions 3"));
        assert!(text.contains("deltas pushed 41"));
        assert!(text.contains("resnapshots 6"));
        // Pre-existing lines keep their shape (additive change only).
        assert!(text.contains("latency p50"));
        assert!(text.contains("plan hits"));
    }

    #[test]
    fn subscription_trace_ring_is_bounded() {
        let m = Metrics::new();
        for i in 0..(TRACE_CAP as u64 + 10) {
            m.trace_subscription(SubscriptionTrace {
                subscription: i,
                epoch: 0,
                value: 1.0,
                lower: 1.0,
                upper: 1.0,
                cause: "registered",
            });
        }
        let traces = m.recent_subscription_traces();
        assert_eq!(traces.len(), TRACE_CAP);
        assert_eq!(traces[0].subscription, 10, "oldest entries evicted first");
        assert_eq!(traces.last().unwrap().cause, "registered");
    }

    #[test]
    fn degraded_mode_counters_round_trip_report() {
        let m = Metrics::new();
        m.quarantined_edges.store(14, Ordering::Relaxed);
        Metrics::bump(&m.degraded_demoted);
        Metrics::add(&m.degraded_detour, 2);
        Metrics::add(&m.degraded_imputed, 5);
        Metrics::bump(&m.degraded_learned);
        m.degraded_width.record(6);
        let r = m.report();
        assert_eq!(r.quarantined_edges, 14);
        assert_eq!(r.degraded_demoted, 1);
        assert_eq!(r.degraded_detour, 2);
        assert_eq!(r.degraded_imputed, 5);
        assert_eq!(r.degraded_learned, 1);
        assert!(r.degraded_width_p95 >= 6);
        let text = r.to_string();
        assert!(text.contains("quarantined edges 14"));
        assert!(text.contains("imputed 5"));
        // Pre-existing lines keep their shape (additive change only).
        assert!(text.contains("latency p50"));
        assert!(text.contains("queries 0"));
    }

    #[test]
    fn overload_counters_round_trip_report_at_saturation() {
        // The counter mix a saturated runtime produces: a deep queue,
        // admission rejections, expired deadlines, brownout downgrades and
        // full sheds, breaker churn, and coalesced subscription pushes.
        let m = Metrics::new();
        m.queue_depth.store(61, Ordering::Relaxed);
        Metrics::add(&m.admission_rejected, 40);
        Metrics::add(&m.deadline_expired, 9);
        Metrics::add(&m.shard_deadline_skips, 5);
        Metrics::add(&m.downgraded, 17);
        Metrics::add(&m.shed, 4);
        m.brownout_level.store(2, Ordering::Relaxed);
        Metrics::add(&m.brownout_shifts, 3);
        Metrics::add(&m.breaker_opened, 2);
        Metrics::bump(&m.breaker_half_open);
        Metrics::bump(&m.breaker_closed);
        Metrics::add(&m.breaker_skipped, 11);
        Metrics::add(&m.sub_coalesced, 6);
        let r = m.report();
        assert_eq!(r.queue_depth, 61);
        assert_eq!(r.admission_rejected, 40);
        assert_eq!(r.deadline_expired, 9);
        assert_eq!(r.shard_deadline_skips, 5);
        assert_eq!(r.downgraded, 17);
        assert_eq!(r.shed, 4);
        assert_eq!(r.brownout_level, 2);
        assert_eq!(r.brownout_shifts, 3);
        assert_eq!(r.breaker_opened, 2);
        assert_eq!(r.breaker_half_open, 1);
        assert_eq!(r.breaker_closed, 1);
        assert_eq!(r.breaker_skipped, 11);
        assert_eq!(r.sub_coalesced, 6);
        let text = r.to_string();
        assert!(text.contains("queue depth 61"));
        assert!(text.contains("rejected 40"));
        assert!(text.contains("downgraded 17"));
        assert!(text.contains("shed 4"));
        assert!(text.contains("brownout level 2 (shifts 3)"));
        assert!(text.contains("breakers: opened 2, half-open 1, closed 1, skipped 11"));
        assert!(text.contains("pushes coalesced 6"));
        // Pre-existing lines keep their shape (additive change only).
        assert!(text.contains("latency p50"));
        assert!(text.contains("queries 0"));
        assert!(text.contains("plan hits"));
    }

    #[test]
    fn query_trace_records_brownout_and_expiry() {
        let m = Metrics::new();
        m.trace(QueryTrace {
            query_id: 7,
            shards: 0,
            retries: 0,
            coverage: 0.0,
            latency_us: 40,
            plan_us: 2,
            plan_cache_hit: true,
            degraded: true,
            miss: false,
            strategy: "none",
            brownout: 3,
            expired: true,
        });
        let t = m.recent_traces();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].brownout, 3);
        assert!(t[0].expired);
    }

    #[test]
    fn stream_stats_are_absorbed() {
        let m = Metrics::new();
        let s = stq_core::streaming::StreamStats {
            accepted: 5,
            late_dropped: 2,
            duplicates_suppressed: 3,
        };
        m.absorb_stream(&s);
        m.absorb_stream(&s);
        let r = m.report();
        assert_eq!(r.late_dropped, 4);
        assert_eq!(r.dup_crossings, 6);
        assert!(r.to_string().contains("late events 4"));
    }

    #[test]
    fn report_snapshot_and_display() {
        let m = Metrics::new();
        Metrics::bump(&m.queries);
        Metrics::add(&m.shard_requests, 4);
        m.latency.record(900);
        let r = m.report();
        assert_eq!(r.queries, 1);
        assert_eq!(r.shard_requests, 4);
        assert_eq!(r.p50_us, 1024);
        let text = r.to_string();
        assert!(text.contains("queries 1"));
        assert!(text.contains("p50 1024us"));
    }
}
