//! # stq-runtime
//!
//! A concurrent, sharded query-serving runtime over the paper's tracking-form
//! machinery — the "in-network system" of §4.6 as an actual multi-threaded
//! dataflow instead of a cost formula.
//!
//! - **Sharded edge stores behind a [`ShardMap`]** — the per-edge
//!   [`stq_forms::TrackingForm`]s are partitioned across worker threads
//!   (initially edge `e` on shard `e % N`; a [`LoadAwareMap`] migrates hot
//!   edges between shards as crossing rates skew). A query resolves its
//!   region once, fans its boundary edges out to the owning shards over
//!   channels, and re-folds the per-edge contributions in boundary order,
//!   making full-coverage answers bit-identical to the synchronous
//!   [`stq_core::query::evaluate`] path.
//! - **Columnar batched ingest** — [`Runtime::ingest_batch`] groups events
//!   into per-shard columnar lanes and group-commits each lane as one WAL
//!   frame with a single sync, bit-identical in effect to the per-event
//!   [`Runtime::ingest`] path.
//! - **Fault injection and graceful degradation** — a seeded
//!   [`stq_net::FaultPlan`] drops, delays, and duplicates shard traffic and
//!   crashes shards on schedule; the aggregator retries with exponential
//!   backoff and, past the budget, serves widened `[lower, upper]` bounds
//!   with an honest `coverage` fraction instead of failing.
//! - **Durability and supervision** — with a [`DurabilityConfig`], each
//!   shard write-ahead-logs ingested crossings and periodically installs
//!   compact snapshots; a supervisor thread watches for workers that die
//!   (scheduled kill -9 with torn WAL tails) or escalate after consecutive
//!   panicked requests, replays snapshot + WAL + the server's redo buffer to
//!   a **byte-identical** state, and re-admits the shard. While a shard
//!   recovers, queries skip it and keep returning sound widened brackets.
//! - **Standing subscriptions** — [`Runtime::subscribe`] registers a region
//!   once (compiled through the shared plan engine) and from then on every
//!   ingested crossing on the region's boundary moves the subscription's
//!   `[lower, upper]` bracket by a count delta instead of re-executing the
//!   query — bit-identical to re-execution at every epoch, with supervisor
//!   recovery and quarantine changes triggering a sound re-snapshot (see
//!   [`stq_subscribe`]).
//! - **Observability** — a lock-cheap [`Metrics`] registry (atomic counters,
//!   log₂ latency histogram with p50/p95/p99, bounded per-query traces).
//!
//! ```no_run
//! use stq_runtime::{Runtime, RuntimeConfig, QuerySpec};
//! # fn demo(sensing: stq_core::SensingGraph, sampled: stq_core::SampledGraph,
//! #         store: &stq_forms::FormStore, spec: QuerySpec) {
//! let rt = Runtime::new(sensing, sampled, store, RuntimeConfig::default());
//! let answer = rt.query(spec);
//! assert!(answer.lower <= answer.value && answer.value <= answer.upper);
//! println!("{}", rt.metrics().report());
//! # }
//! ```

pub mod metrics;
pub mod overload;
pub mod server;
mod shard;
pub mod shardmap;
mod supervisor;

pub use metrics::{Histogram, Metrics, MetricsReport, QueryTrace, SubscriptionTrace};
pub use overload::{BreakerConfig, BrownoutConfig, OverloadConfig, Rejected, MAX_BROWNOUT_LEVEL};
pub use server::{
    DurabilityConfig, IngestError, IngestReport, PendingAnswer, QuerySpec, Runtime, RuntimeConfig,
    ServedAnswer, SubscriptionHandle,
};
pub use shard::ShardHealth;
pub use shardmap::{LoadAwareMap, Migration, ModuloMap, RebalanceConfig, ShardMap};
pub use stq_net::{
    ChaosBuilder, ChaosConfig, ChaosError, CrashWindow, DurabilityFaultPlan, FaultDecision,
    FaultPlan, IngestCrash, MessageCtx, SensorFault, SensorFaultKind, SensorFaultMix,
    SensorFaultPlan,
};
pub use stq_subscribe::{
    BracketUpdate, Registered, RegistryStats, StandingBracket, SubscribeError, SubscriptionId,
    SubscriptionRegistry, UpdateCause,
};
