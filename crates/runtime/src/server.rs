//! The sharded query-serving runtime: submission queue, dispatchers,
//! fan-out/aggregation, timeouts, retries, graceful degradation, live
//! ingestion, and supervised crash recovery.
//!
//! ## Dataflow
//!
//! ```text
//! submit() ─▶ bounded job queue ─▶ dispatcher threads
//!                                     │ engine.plan (cached region plan)
//!                                     ├─▶ shard 0 ─┐ per-edge counts
//!                                     ├─▶ shard 1 ─┤ (crossbeam channels)
//!                                     └─▶ shard k ─┘
//!                                     ▼ re-fold in boundary order
//!                                 ServedAnswer
//!
//! ingest() ─▶ per-shard lane (seq + redo buffer) ─▶ shard worker
//!                                                    ├─ apply to forms
//!                                                    └─ WAL append/snapshot
//! supervisor ◀─ worker exits (kill / escalation); replays snapshot + WAL +
//!               redo buffer, respawns, re-admits
//! ```
//!
//! ## Exactness and degradation
//!
//! Shards return per-edge contributions tagged with their position in the
//! boundary chain; the aggregator folds them **in boundary order**, so with
//! full coverage the result is bit-identical to the synchronous
//! `stq_core::query::evaluate` fold (floating-point addition happens in the
//! same order on the same terms). When shards stay silent past the retry
//! budget — or are skipped because their health slot reads unhealthy or
//! recovering — each missing edge's contribution is replaced by its
//! worst-case interval `[−total_outward, +total_inward]` (per-edge lifetime
//! crossing totals, maintained atomically as events are ingested), which
//! provably brackets the synchronous value; the answer then carries
//! `lower`/`upper` bounds, a `coverage < 1`, and the `degraded` flag.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use stq_core::degraded::{DegradedAnswer, DegradedAnswerer, DegradedPolicy, DegradedStrategy};
use stq_core::engine::QueryEngine;
use stq_core::query::{Approximation, QueryKind, QueryRegion};
use stq_core::sampled::SampledGraph;
use stq_core::sensing::SensingGraph;
use stq_core::tracker::Crossing;
use stq_forms::{BoundaryEdge, ColumnarBatch, FormStore, TrackingForm};
use stq_net::{DurabilityFaultPlan, FaultPlan};
use stq_subscribe::{
    BracketUpdate, RegistryStats, StandingBracket, SubscribeError, SubscriptionId,
    SubscriptionRegistry,
};

use crate::metrics::{Metrics, QueryTrace, SubscriptionTrace};
use crate::overload::{stride_for, Gate, OverloadConfig, OverloadState, Rejected, Transition};
use crate::shard::{EdgeCounts, ShardHealth, ShardMsg, ShardRequest, ShardResponse, HEALTHY};
use crate::shardmap::{LoadAwareMap, ModuloMap, RebalanceConfig, ShardMap};
use crate::supervisor::{IngestLane, Supervisor, SupervisorMsg};

/// How often a waiting aggregator re-checks shard health, so a worker dying
/// mid-attempt shortens the wait to one slice instead of the full timeout.
const HEALTH_RECHECK: Duration = Duration::from_millis(5);

/// Write-ahead-log + snapshot settings for the runtime.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory; shard `i` persists under `wal-dir/shard-<i>/`.
    /// Initialized fresh (base snapshot + empty WAL) at runtime startup.
    pub wal_dir: PathBuf,
    /// Appends between snapshot rollovers (snapshot installed atomically,
    /// WAL truncated). Bounds recovery replay cost. A snapshot costs
    /// O(shard state) plus an fsync while WAL records are 33 bytes each,
    /// so this should stay large: replaying even 64 K records is ~2 MB of
    /// sequential reads, far cheaper than snapshotting often.
    pub snapshot_every: u64,
    /// Appends between WAL syncs; a sync publishes the shard's durable
    /// floor and lets the server trim its redo buffer.
    pub sync_every: u64,
    /// Seeded ingest-time crash injection (kill -9 with torn-tail cut).
    pub faults: DurabilityFaultPlan,
}

impl DurabilityConfig {
    /// Defaults: snapshot every 65536 appends, sync every 32, no faults.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            wal_dir: wal_dir.into(),
            snapshot_every: 65_536,
            sync_every: 32,
            faults: DurabilityFaultPlan::none(),
        }
    }
}

/// Tuning knobs of the runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker threads owning disjoint slices of the edge stores (≥ 1).
    pub num_shards: usize,
    /// Threads resolving regions and aggregating shard answers (≥ 1).
    pub dispatchers: usize,
    /// Capacity of the submission queue; `submit` blocks when it is full
    /// (backpressure instead of unbounded buffering).
    pub queue_capacity: usize,
    /// How long the aggregator waits for shards on the first attempt; each
    /// retry doubles the window (exponential backoff).
    pub shard_timeout: Duration,
    /// Retry rounds after the first attempt before degrading.
    pub max_retries: u32,
    /// Fault injection applied to shard traffic.
    pub fault: FaultPlan,
    /// Consecutive panicked requests before a worker escalates to the
    /// supervisor instead of serving on (0 disables escalation).
    pub panic_threshold: u32,
    /// WAL + snapshot persistence; `None` keeps state memory-only (the
    /// redo buffer then retains every ingested event for exact respawns).
    pub durability: Option<DurabilityConfig>,
    /// Capacity of the dispatchers' shared query-plan cache (0 disables
    /// caching: every query re-resolves its region and re-walks the
    /// boundary). Invalidated wholesale on supervisor-driven recovery.
    pub plan_cache: usize,
    /// Degraded-mode answering over the quarantined deployment (multi-face
    /// detours → conservation-interval imputation → learned fallback; see
    /// `stq_core::degraded`). `None` (the default) keeps the classic
    /// worst-case-totals degradation, which stays **bitwise identical** to
    /// the standing-subscription fold — turning this on trades that
    /// equivalence for far tighter brackets on quarantine-degraded answers.
    /// Only consulted while no event has been ingested since startup: the
    /// certified brackets are computed against the construction-time store.
    pub degraded: Option<DegradedPolicy>,
    /// Overload control: deadline budgets, cost-based admission, brownout
    /// precision shedding, and per-shard circuit breakers (see
    /// [`crate::overload`]). `None` (the default) keeps the classic
    /// behavior: `submit` blocks on a full queue and serves at full
    /// precision regardless of load.
    pub overload: Option<OverloadConfig>,
    /// Load-aware shard rebalancing (see [`crate::shardmap`]). `None` (the
    /// default) keeps the static modulo edge→shard assignment; `Some`
    /// installs a [`LoadAwareMap`] that tracks per-edge crossing rates and
    /// migrates hot edge ranges between shards when the imbalance trigger
    /// fires.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_shards: 4,
            dispatchers: 2,
            queue_capacity: 64,
            shard_timeout: Duration::from_millis(20),
            max_retries: 2,
            fault: FaultPlan::none(),
            panic_threshold: 3,
            durability: None,
            plan_cache: 256,
            degraded: None,
            overload: None,
            rebalance: None,
        }
    }
}

/// Why [`Runtime::ingest`] refused an event. Rejections are counted in
/// [`crate::metrics::Metrics::ingest_rejected`] and never reach a shard,
/// the WAL, or the subscription registry — a malformed event from one
/// client must not poison shared state or kill the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IngestError {
    /// The edge index is outside the deployment (`edge >= num_edges`).
    UnknownEdge {
        /// The offending edge index.
        edge: usize,
        /// The deployment's edge count.
        num_edges: usize,
    },
    /// The crossing timestamp is NaN or infinite.
    NonFiniteTime {
        /// The edge the malformed event addressed.
        edge: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IngestError::UnknownEdge { edge, num_edges } => {
                write!(f, "ingest for unknown edge {edge} (deployment has {num_edges})")
            }
            IngestError::NonFiniteTime { edge } => {
                write!(f, "crossing time on edge {edge} must be finite")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// What [`Runtime::ingest_batch`] did with a batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events validated and dispatched to their shards.
    pub accepted: usize,
    /// Events refused by validation (counted in `ingest_rejected`).
    pub rejected: usize,
    /// Distinct shard lanes the batch fanned out to.
    pub lanes: usize,
}

/// One query to serve.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The spatial region.
    pub region: QueryRegion,
    /// Snapshot / Static / Transient and its time arguments.
    pub kind: QueryKind,
    /// Lower (`R₂`) or upper (`R₁`) region resolution.
    pub approx: Approximation,
    /// Wall-clock deadline the answer is worthless after. It propagates
    /// submit → dispatcher → shard fan-out, and every hop short-circuits a
    /// query that is already past it (the answer then carries
    /// `expired == true` and a sound worst-case bracket instead of work
    /// nobody wants). `None` (the default) serves without a budget —
    /// unless [`OverloadConfig::default_deadline`] stamps one at submit.
    pub deadline: Option<Instant>,
}

impl QuerySpec {
    /// A spec with no deadline (the common case; all fields stay public
    /// for struct-literal construction).
    pub fn new(region: QueryRegion, kind: QueryKind, approx: Approximation) -> Self {
        QuerySpec { region, kind, approx, deadline: None }
    }

    /// Returns the spec with a deadline `budget` from now.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }
}

/// The runtime's answer to one query.
#[derive(Clone, Debug)]
pub struct ServedAnswer {
    /// Runtime-assigned query id (matches the metrics trace).
    pub query_id: u64,
    /// The count estimate. With `coverage == 1.0` this equals the
    /// synchronous `evaluate` fold exactly; degraded answers fill missing
    /// edges with 0 and are bracketed by `lower`/`upper`.
    pub value: f64,
    /// Sound lower bound on the synchronous value.
    pub lower: f64,
    /// Sound upper bound on the synchronous value.
    pub upper: f64,
    /// Fraction of boundary edges that reported (1.0 = complete).
    pub coverage: f64,
    /// The sampled graph could not cover the region (value is 0).
    pub miss: bool,
    /// True when served from partial data (`coverage < 1.0`).
    pub degraded: bool,
    /// Boundary edges whose shard refused to serve them because the
    /// integrity auditor quarantined the sensor (each counts against
    /// `coverage` and widens the bounds by its worst case).
    pub quarantined: usize,
    /// Shards the query fanned out to.
    pub shards: usize,
    /// Retry rounds that were needed.
    pub retries: u32,
    /// Which degraded-mode repair strategy produced the final bracket
    /// ([`DegradedStrategy::None`] whenever the ordinary shard fold
    /// answered — including classic worst-case degradation with
    /// [`RuntimeConfig::degraded`] unset).
    pub strategy: DegradedStrategy,
    /// Confidence in `[0, 1]`: the boundary-report fraction for ordinary
    /// answers, the certifying strategy's structural coverage for
    /// degraded-mode answers (halved for learned fallbacks).
    pub confidence: f64,
    /// Whether the query's plan was served from the engine's cache (false
    /// for misses compiled on demand — and always false right after a
    /// recovery-driven invalidation).
    pub plan_cache_hit: bool,
    /// Time spent obtaining the plan (cache lookup + compile on a miss).
    pub plan_latency: Duration,
    /// End-to-end latency.
    pub latency: Duration,
    /// The query's deadline elapsed before it finished: the answer was
    /// short-circuited (no fan-out) or clamped mid-fan-out. The bracket is
    /// still sound — built from worst-case totals for whatever did not
    /// report — but the client asked for it by the deadline and should
    /// treat it as degraded-by-budget.
    pub expired: bool,
    /// Brownout precision level the answer was served at: 0 = full
    /// precision, 1–2 = strided boundary (every 2nd / 4th edge served, the
    /// rest widened by worst-case totals), 3 = fully shed (no fan-out).
    pub brownout: u8,
}

/// A live standing subscription: its identity, baseline bracket, and the
/// channel on which every later [`BracketUpdate`] (deltas and epoch
/// re-snapshots) is pushed. Dropping the receiver auto-unsubscribes on the
/// next failed push.
pub struct SubscriptionHandle {
    /// The registry-assigned subscription id.
    pub id: SubscriptionId,
    /// The bracket at registration time (also the first pushed update).
    pub baseline: StandingBracket,
    /// Whether the region's plan was served from the engine's cache.
    pub plan_cache_hit: bool,
    /// Boundary edges the subscription listens on.
    pub boundary_edges: usize,
    /// Pushed bracket updates, in order.
    pub updates: Receiver<BracketUpdate>,
}

/// A handle to an in-flight query.
pub struct PendingAnswer(Receiver<ServedAnswer>);

impl PendingAnswer {
    /// Blocks until the answer is served.
    ///
    /// # Panics
    /// If the runtime was shut down before serving the query.
    pub fn wait(self) -> ServedAnswer {
        self.0.recv().expect("runtime shut down with query in flight")
    }
}

struct Job {
    id: u64,
    spec: QuerySpec,
    /// Admission-gate reservation (milli cost units) to release once the
    /// answer is out; 0 for jobs that never passed the gate.
    cost_milli: u64,
    reply: Sender<ServedAnswer>,
}

struct ServerState {
    sensing: SensingGraph,
    sampled: SampledGraph,
    /// Per-edge lifetime crossing counts `[forward, backward]` — the
    /// degradation bounds for silent shards. Atomic because `ingest` grows
    /// them while queries read them; owned by the subscription registry,
    /// which bumps them inside its lock so standing brackets and totals
    /// can never observe each other half-updated.
    totals: Arc<Vec<[AtomicU64; 2]>>,
    cfg: RuntimeConfig,
    /// The edge→shard routing map every layer shares: dispatchers and
    /// ingest read it, the supervisor commits migrations into it. Its epoch
    /// is the witness all layers agree on after a migration.
    map: Arc<dyn ShardMap>,
    to_shards: Vec<Sender<ShardMsg>>,
    lanes: Arc<Vec<Mutex<IngestLane>>>,
    health: Arc<Vec<AtomicU8>>,
    durable_seq: Arc<Vec<AtomicU64>>,
    metrics: Arc<Metrics>,
    /// Shared plan cache: dispatchers compile and reuse region plans here;
    /// the supervisor invalidates it on every recovery.
    engine: Arc<QueryEngine>,
    /// Standing-query registry: every ingested event routes through it
    /// (delta-push), and the supervisor re-snapshots it on every recovery.
    subs: Arc<SubscriptionRegistry>,
    /// Degraded-mode answering over the quarantined deployment (built only
    /// when [`RuntimeConfig::degraded`] is set and something is
    /// quarantined).
    degraded: Option<DegradedAnswerer>,
    /// Construction-time store snapshot the degraded answerer certifies
    /// its brackets against.
    deg_store: Option<FormStore>,
    /// Flipped by the first `ingest` after startup: the snapshot-certified
    /// brackets no longer describe the live store, so degraded-mode
    /// consults stop.
    deg_dirty: AtomicBool,
    /// Overload control (admission gate, brownout controller, breakers);
    /// `None` when [`RuntimeConfig::overload`] is unset.
    overload: Option<OverloadState>,
    /// Capacity of each query's aggregator response channel: every awaited
    /// shard can answer once per attempt plus one injected duplicate, so
    /// `2 × num_shards × (max_retries + 1)` bounds the messages a query
    /// can ever receive — late answers beyond it are dropped by the
    /// shard's `try_send`, exactly like answers after the receiver is gone.
    resp_capacity: usize,
}

/// A running sharded query server over one deployment.
pub struct Runtime {
    metrics: Arc<Metrics>,
    state: Option<Arc<ServerState>>,
    jobs: Option<Sender<Job>>,
    dispatcher_threads: Vec<JoinHandle<()>>,
    supervisor_thread: Option<JoinHandle<()>>,
    supervisor_tx: Option<Sender<SupervisorMsg>>,
    next_id: AtomicU64,
}

impl Runtime {
    /// Builds the runtime: partitions `store`'s per-edge tracking forms
    /// across `cfg.num_shards` worker threads per the shard map (initially
    /// edge `e` lives on shard `e % num_shards`; with
    /// [`RuntimeConfig::rebalance`] set, hot edges migrate later), starts
    /// the dispatcher pool, and puts every worker under supervision.
    pub fn new(
        sensing: SensingGraph,
        sampled: SampledGraph,
        store: &FormStore,
        cfg: RuntimeConfig,
    ) -> Self {
        Self::with_quarantine(sensing, sampled, store, cfg, &[])
    }

    /// Like [`Runtime::new`], but hands each shard the set of its edges the
    /// integrity auditor quarantined. The shard keeps the (corrupted) forms
    /// yet refuses to serve them, so every answer touching a quarantined
    /// edge comes back with reduced coverage and widened bounds instead of
    /// silently folding bad data.
    pub fn with_quarantine(
        sensing: SensingGraph,
        sampled: SampledGraph,
        store: &FormStore,
        cfg: RuntimeConfig,
        quarantined: &[usize],
    ) -> Self {
        assert!(cfg.num_shards >= 1, "need at least one shard");
        assert!(cfg.dispatchers >= 1, "need at least one dispatcher");
        let metrics = Arc::new(Metrics::new());
        metrics.quarantined_edges.store(quarantined.len() as u64, Ordering::Relaxed);
        let (degraded, deg_store) = match cfg.degraded {
            Some(policy) if !quarantined.is_empty() => (
                Some(DegradedAnswerer::new(&sensing, &sampled, quarantined, store, policy)),
                Some(store.clone()),
            ),
            _ => (None, None),
        };

        let ns = cfg.num_shards;
        // The registry derives the lifetime totals (shared here for the
        // aggregator's degradation bounds), the applied-count mirror and the
        // per-direction watermarks from the same store the shards start on.
        let engine = Arc::new(QueryEngine::new(cfg.plan_cache));
        let subs = Arc::new(SubscriptionRegistry::new(
            Arc::clone(&engine),
            store,
            quarantined.iter().copied(),
        ));
        let totals = Arc::clone(subs.totals());

        // The shard map starts with the modulo assignment either way, so a
        // fresh runtime is bit-identical under both; the load-aware variant
        // reuses the registry's lifetime totals as its crossing-rate feed.
        let map: Arc<dyn ShardMap> = match cfg.rebalance.clone() {
            Some(rc) => Arc::new(LoadAwareMap::new(ns, Arc::clone(&totals), rc)),
            None => Arc::new(ModuloMap::new(ns)),
        };
        let mut parts: Vec<HashMap<usize, TrackingForm>> =
            (0..ns).map(|_| HashMap::new()).collect();
        let mut bad: Vec<HashSet<usize>> = (0..ns).map(|_| HashSet::new()).collect();
        for &e in quarantined {
            bad[map.shard_of(e)].insert(e);
        }
        for e in 0..store.num_edges() {
            parts[map.shard_of(e)].insert(e, store.form(e).clone());
        }

        let mut to_shards = Vec::with_capacity(ns);
        let mut receivers = Vec::with_capacity(ns);
        for _ in 0..ns {
            let (tx, rx) = channel::unbounded::<ShardMsg>();
            to_shards.push(tx);
            receivers.push(rx);
        }
        let lanes: Arc<Vec<Mutex<IngestLane>>> = Arc::new(
            (0..ns).map(|_| Mutex::new(IngestLane { next_seq: 0, buf: VecDeque::new() })).collect(),
        );
        let health: Arc<Vec<AtomicU8>> =
            Arc::new((0..ns).map(|_| AtomicU8::new(HEALTHY)).collect());
        let durable_seq: Arc<Vec<AtomicU64>> =
            Arc::new((0..ns).map(|_| AtomicU64::new(0)).collect());

        // Bounded supervisor inbox: each shard has at most one unprocessed
        // exit event at a time (the supervisor respawns a worker before
        // draining the next event, so a shard cannot enqueue a second exit
        // until its first was handled), plus one shutdown message and a
        // couple of in-flight migration requests — 2×ns+4 leaves slack for
        // all of them without ever blocking a dying worker.
        let (events_tx, events_rx) = channel::bounded::<SupervisorMsg>(2 * ns + 4);
        let supervisor = Supervisor::start(
            parts,
            bad,
            cfg.fault.clone(),
            cfg.durability.clone(),
            cfg.panic_threshold,
            receivers,
            Arc::clone(&lanes),
            Arc::clone(&health),
            Arc::clone(&durable_seq),
            Arc::clone(&metrics),
            Arc::clone(&engine),
            Arc::clone(&subs),
            Arc::clone(&map),
            to_shards.clone(),
            events_tx.clone(),
        );
        let supervisor_thread = std::thread::Builder::new()
            .name("stq-supervisor".into())
            .spawn(move || supervisor.run(events_rx))
            .expect("spawn supervisor");

        let overload =
            cfg.overload.as_ref().map(|oc| OverloadState::new(oc.clone(), &sensing, &sampled, ns));
        let state = Arc::new(ServerState {
            sensing,
            sampled,
            totals,
            cfg: cfg.clone(),
            map,
            to_shards,
            lanes,
            health,
            durable_seq,
            metrics: Arc::clone(&metrics),
            engine,
            subs,
            degraded,
            deg_store,
            deg_dirty: AtomicBool::new(false),
            overload,
            resp_capacity: 2 * ns * (cfg.max_retries as usize + 1),
        });
        let (jobs_tx, jobs_rx) = channel::bounded::<Job>(cfg.queue_capacity.max(1));
        let mut dispatcher_threads = Vec::with_capacity(cfg.dispatchers);
        for d in 0..cfg.dispatchers {
            let st = Arc::clone(&state);
            let rx = jobs_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("stq-dispatch-{d}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        st.metrics.queue_depth.store(rx.len() as u64, Ordering::Relaxed);
                        serve(&st, job);
                    }
                })
                .expect("spawn dispatcher");
            dispatcher_threads.push(handle);
        }

        Runtime {
            metrics,
            state: Some(state),
            jobs: Some(jobs_tx),
            dispatcher_threads,
            supervisor_thread: Some(supervisor_thread),
            supervisor_tx: Some(events_tx),
            next_id: AtomicU64::new(0),
        }
    }

    /// The live metric registry (valid before and after shutdown).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Cache accounting of the dispatchers' shared query-plan engine.
    pub fn engine_stats(&self) -> stq_core::engine::EngineStats {
        self.state.as_ref().expect("runtime is running").engine.stats()
    }

    /// Registers a standing subscription on `region`: the region is
    /// compiled once through the shared plan engine (LRU-cached), its
    /// boundary edges are indexed in the registry's routing table, and from
    /// here on every ingested crossing on those edges moves the
    /// subscription's `[lower, upper]` bracket by a count delta — no
    /// re-execution. Returns [`SubscribeError::Unresolvable`] when the
    /// sampled graph cannot cover the region (the miss case of `query`).
    pub fn subscribe(
        &self,
        region: QueryRegion,
        approx: Approximation,
    ) -> Result<SubscriptionHandle, SubscribeError> {
        let st = self.state.as_ref().expect("runtime is running");
        let (tx, rx) = channel::unbounded::<BracketUpdate>();
        let reg = st.subs.subscribe(&st.sensing, &st.sampled, &region, approx, Some(tx))?;
        st.metrics.subscriptions.store(st.subs.len() as u64, Ordering::Relaxed);
        st.metrics.trace_subscription(SubscriptionTrace {
            subscription: reg.id.0,
            epoch: reg.bracket.epoch,
            value: reg.bracket.value,
            lower: reg.bracket.lower,
            upper: reg.bracket.upper,
            cause: "registered",
        });
        Ok(SubscriptionHandle {
            id: reg.id,
            baseline: reg.bracket,
            plan_cache_hit: reg.plan_cache_hit,
            boundary_edges: reg.boundary_edges,
            updates: rx,
        })
    }

    /// Deregisters a standing subscription. Returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let st = self.state.as_ref().expect("runtime is running");
        let existed = st.subs.unsubscribe(id);
        st.metrics.subscriptions.store(st.subs.len() as u64, Ordering::Relaxed);
        if existed {
            st.metrics.trace_subscription(SubscriptionTrace {
                subscription: id.0,
                epoch: st.subs.epoch(),
                value: 0.0,
                lower: 0.0,
                upper: 0.0,
                cause: "unsubscribed",
            });
        }
        existed
    }

    /// The current delta-maintained bracket of one subscription.
    pub fn standing_bracket(&self, id: SubscriptionId) -> Option<StandingBracket> {
        self.state.as_ref().expect("runtime is running").subs.bracket(id)
    }

    /// All live `(id, bracket)` pairs, sorted by id.
    pub fn standing_brackets(&self) -> Vec<(SubscriptionId, StandingBracket)> {
        self.state.as_ref().expect("runtime is running").subs.brackets()
    }

    /// Registry accounting (subscriptions, epoch, deltas, re-snapshots).
    pub fn subscription_stats(&self) -> RegistryStats {
        self.state.as_ref().expect("runtime is running").subs.stats()
    }

    /// Forces a new subscription epoch: every standing bracket is
    /// recomputed from the registry's mirror through its compiled plan and
    /// re-pushed (`cause == Resnapshot`) — the same sound hand-off the
    /// supervisor performs on crash recovery, callable directly for
    /// repair-driven topology changes and for differential testing of the
    /// epoch protocol. Returns the new epoch.
    pub fn resnapshot_subscriptions(&self) -> u64 {
        let st = self.state.as_ref().expect("runtime is running");
        let updates = st.subs.advance_epoch([]);
        Metrics::add(&st.metrics.sub_resnapshots, updates.len() as u64);
        let epoch = st.subs.epoch();
        st.metrics.sub_epoch.store(epoch, Ordering::Relaxed);
        for u in &updates {
            st.metrics.trace_subscription(SubscriptionTrace {
                subscription: u.subscription.0,
                epoch: u.epoch,
                value: u.bracket.value,
                lower: u.bracket.lower,
                upper: u.bracket.upper,
                cause: "resnapshot",
            });
        }
        epoch
    }

    /// Certifies quarantined-edge flow intervals into the subscription
    /// registry from the degraded-mode imputer, then re-snapshots so every
    /// standing bracket tightens at once. `t` must be at or past the last
    /// event time so net-flow-at-`t` equals the lifetime net flow the
    /// registry folds. Returns how many edges were certified; 0 when
    /// degraded mode is off, the imputer found no finite interval, or an
    /// event has been ingested since the answerer was built (certificates
    /// would no longer be anchored to the mirrored counts).
    pub fn certify_standing_brackets(&self, t: f64) -> usize {
        let st = self.state.as_ref().expect("runtime is running");
        let Some(deg) = st.degraded.as_ref() else { return 0 };
        let Some(imp) = deg.imputer() else { return 0 };
        let Some(store) = st.deg_store.as_ref() else { return 0 };
        if st.deg_dirty.load(Ordering::Acquire) {
            return 0;
        }
        let mut installed = 0usize;
        for (edge, iv) in imp.intervals_at(store, t) {
            if iv.is_finite() && st.subs.certify_quarantined(edge, iv.lo, iv.hi) {
                installed += 1;
            }
        }
        if installed > 0 {
            self.resnapshot_subscriptions();
        }
        installed
    }

    /// Streams one boundary-crossing event into the owning shard. The event
    /// is sequence-stamped, retained in the redo buffer until the shard
    /// acknowledges durability, and folded into the shard's forms (and WAL)
    /// by the worker. The per-edge lifetime totals grow *before* the shard
    /// applies the event, so degradation bounds for silent shards stay
    /// sound at every instant — and the subscription registry applies the
    /// event's bracket deltas in the same step (the event-driven push path:
    /// standing answers are fresh the moment `ingest` returns, without any
    /// re-execution).
    ///
    /// A malformed event (unknown edge, non-finite timestamp) is refused
    /// with an [`IngestError`] before touching any shared state; refusals
    /// are counted in the `ingest_rejected` metric.
    pub fn ingest(&self, c: Crossing) -> Result<(), IngestError> {
        let st = self.state.as_ref().expect("runtime is running");
        check_event(st, &c)?;
        // The degraded answerer's brackets are certified against the
        // construction-time store; any new event invalidates them.
        st.deg_dirty.store(true, Ordering::Release);
        // Routes the event through the registry: bumps the lifetime totals
        // (inside the registry lock) and delta-pushes affected brackets.
        let push_t0 = Instant::now();
        let obs = st.subs.on_ingest(&c);
        if obs.deltas > 0 {
            st.metrics.delta_push_latency.record(push_t0.elapsed().as_micros() as u64);
            Metrics::add(&st.metrics.deltas_pushed, obs.deltas as u64);
        }
        dispatch_one(st, c);
        self.maybe_rebalance(st);
        Ok(())
    }

    /// Streams a batch of events, grouped into per-shard columnar lanes and
    /// WAL-appended as one group-commit frame per lane (a single sync for
    /// the whole lane instead of one per record). Semantically equivalent
    /// to calling [`Runtime::ingest`] once per event in order — shard
    /// states, recovery digests, totals, and standing brackets come out
    /// bit-identical — but malformed events are skipped (and counted)
    /// instead of failing the batch.
    pub fn ingest_batch(&self, events: &[Crossing]) -> IngestReport {
        let st = self.state.as_ref().expect("runtime is running");
        if events.is_empty() {
            return IngestReport::default();
        }
        let mut valid: Vec<Crossing> = Vec::with_capacity(events.len());
        for &c in events {
            if check_event(st, &c).is_ok() {
                valid.push(c);
            }
        }
        let rejected = events.len() - valid.len();
        if valid.is_empty() {
            return IngestReport { accepted: 0, rejected, lanes: 0 };
        }
        st.deg_dirty.store(true, Ordering::Release);
        // One registry lock for the whole batch: totals and standing
        // brackets advance event by event in input order, exactly as the
        // sequential path would.
        let push_t0 = Instant::now();
        let obs = st.subs.on_ingest_batch(&valid);
        if obs.deltas > 0 {
            st.metrics.delta_push_latency.record(push_t0.elapsed().as_micros() as u64);
            Metrics::add(&st.metrics.deltas_pushed, obs.deltas as u64);
        }
        // Ingest pressure surfaces on the read-side admission gate while
        // the batch is in flight, so a write flood degrades reads honestly
        // instead of invisibly starving them.
        let charged = st.overload.as_ref().map_or(0, |ov| ov.charge_ingest(valid.len()));
        // Group by owning shard into columnar lanes. Per-edge event order
        // is preserved: an edge maps to exactly one shard at a time, and
        // within a lane events keep input order.
        let mut lanes_by_shard: HashMap<usize, ColumnarBatch> = HashMap::new();
        for &c in &valid {
            lanes_by_shard
                .entry(st.map.shard_of(c.edge))
                .or_default()
                .push(c.edge, c.forward, c.time);
        }
        let mut shards: Vec<usize> = lanes_by_shard.keys().copied().collect();
        shards.sort_unstable();
        let lanes_used = shards.len();
        for shard in shards {
            let lane_batch = lanes_by_shard.remove(&shard).expect("grouped lane");
            // A migration may have re-routed some of the lane's edges
            // between grouping and the lane lock: dispatch the still-owned
            // prefix set as one batch and detour the moved rest through the
            // per-event path (which re-reads the map under the lock).
            let mut moved: Vec<Crossing> = Vec::new();
            {
                let mut lane = st.lanes[shard].lock();
                let mut own = ColumnarBatch::with_capacity(lane_batch.len());
                for (edge, forward, time) in lane_batch.iter() {
                    if st.map.shard_of(edge) == shard {
                        own.push(edge, forward, time);
                    } else {
                        moved.push(Crossing { edge, forward, time });
                    }
                }
                if !own.is_empty() {
                    let durable = st.durable_seq[shard].load(Ordering::Acquire);
                    while lane.buf.front().is_some_and(|&(s, _)| s <= durable) {
                        lane.buf.pop_front();
                    }
                    let first_seq = lane.next_seq + 1;
                    for (edge, forward, time) in own.iter() {
                        lane.next_seq += 1;
                        let seq = lane.next_seq;
                        lane.buf.push_back((seq, Crossing { edge, forward, time }));
                    }
                    st.map.record_route(shard, own.len() as u64);
                    let _ =
                        st.to_shards[shard].send(ShardMsg::IngestBatch { first_seq, lane: own });
                }
            }
            for c in moved {
                dispatch_one(st, c);
            }
        }
        Metrics::bump(&st.metrics.ingest_batches);
        if let Some(ov) = st.overload.as_ref() {
            ov.release(charged);
        }
        self.maybe_rebalance(st);
        IngestReport { accepted: valid.len(), rejected, lanes: lanes_used }
    }

    /// Fires the load-aware rebalance check after an ingest step.
    fn maybe_rebalance(&self, st: &ServerState) {
        if st.map.rebalance_due() {
            self.rebalance_now();
        }
    }

    /// Plans and executes one load-aware rebalance round through the
    /// supervisor (which serializes it against crash recoveries). Returns
    /// the number of edges migrated — 0 when the map has no rebalancing
    /// (modulo), the plan is empty, or the migration aborted.
    pub fn rebalance_now(&self) -> usize {
        let st = self.state.as_ref().expect("runtime is running");
        let moves = st.map.plan_rebalance();
        if moves.is_empty() {
            return 0;
        }
        let Some(tx) = self.supervisor_tx.as_ref() else { return 0 };
        let (done_tx, done_rx) = channel::bounded(1);
        if tx.send(SupervisorMsg::Migrate { moves, done: done_tx }).is_err() {
            return 0;
        }
        match done_rx.recv_timeout(Duration::from_secs(30)) {
            Ok(outcome) if outcome.committed => outcome.edges_moved,
            _ => 0,
        }
    }

    /// Cumulative events routed to each shard by the shard map — the
    /// imbalance witness benchmarks compute `max/mean − 1` from.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.state.as_ref().expect("runtime is running").map.loads()
    }

    /// The shard map's migration epoch: 0 until the first committed
    /// migration, then incremented once per commit. Every layer (ingest,
    /// dispatch, recovery, subscription re-snapshot) observes a commit at
    /// the same point in its event order.
    pub fn map_epoch(&self) -> u64 {
        self.state.as_ref().expect("runtime is running").map.epoch()
    }

    /// Barrier: waits until every shard has applied all previously ingested
    /// events (and synced its WAL, when durability is on). Returns each
    /// shard's highest applied sequence number.
    pub fn flush_ingest(&self) -> Vec<u64> {
        let st = self.state.as_ref().expect("runtime is running");
        let waits: Vec<Receiver<u64>> = st
            .to_shards
            .iter()
            .map(|tx| {
                let (ack_tx, ack_rx) = channel::bounded(1);
                let _ = tx.send(ShardMsg::Flush(ack_tx));
                ack_rx
            })
            .collect();
        waits
            .into_iter()
            .map(|rx| rx.recv_timeout(Duration::from_secs(30)).expect("shard flush"))
            .collect()
    }

    /// State digest per shard (see `stq_durability::state_digest`) — the
    /// byte-identity witness recovery tests compare across runs.
    pub fn shard_digests(&self) -> Vec<u64> {
        let st = self.state.as_ref().expect("runtime is running");
        let waits: Vec<Receiver<(usize, u64)>> = st
            .to_shards
            .iter()
            .map(|tx| {
                let (ack_tx, ack_rx) = channel::bounded(1);
                let _ = tx.send(ShardMsg::Digest(ack_tx));
                ack_rx
            })
            .collect();
        waits
            .into_iter()
            .map(|rx| rx.recv_timeout(Duration::from_secs(30)).expect("shard digest").1)
            .collect()
    }

    /// Current health of every shard.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        let st = self.state.as_ref().expect("runtime is running");
        st.health.iter().map(|h| ShardHealth::from_u8(h.load(Ordering::Acquire))).collect()
    }

    /// Stamps the configured default deadline on specs without one.
    fn with_default_deadline(&self, mut spec: QuerySpec) -> QuerySpec {
        if spec.deadline.is_none() {
            if let Some(d) = self
                .state
                .as_ref()
                .and_then(|st| st.overload.as_ref())
                .and_then(|ov| ov.cfg.default_deadline)
            {
                spec.deadline = Some(Instant::now() + d);
            }
        }
        spec
    }

    /// Serves an already-expired job without any shard traffic: the plan
    /// (cached) still yields a sound worst-case bracket from the lifetime
    /// totals, so even a budget-starved client gets honest bounds.
    fn reply_expired(&self, job: Job) {
        let st = self.state.as_ref().expect("runtime is running");
        let answer = expired_answer(st, job.id, &job.spec, Instant::now());
        record_served(st, &answer);
        let _ = job.reply.send(answer);
    }

    /// Enqueues a query; blocks only when the submission queue is full.
    ///
    /// A spec with a deadline never blocks past it: if the queue stays full
    /// until the deadline, the query is answered immediately with
    /// `expired == true` and a sound worst-case bracket instead of
    /// stalling the caller indefinitely.
    pub fn submit(&self, spec: QuerySpec) -> PendingAnswer {
        let spec = self.with_default_deadline(spec);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        let jobs = self.jobs.as_ref().expect("runtime is running");
        let job = Job { id, spec, cost_milli: 0, reply: tx };
        match job.spec.deadline {
            None => assert!(jobs.send(job).is_ok(), "dispatcher pool alive"),
            Some(dl) => {
                let now = Instant::now();
                if dl <= now {
                    self.reply_expired(job);
                    return PendingAnswer(rx);
                }
                match jobs.send_timeout(job, dl - now) {
                    Ok(()) => {}
                    Err(channel::SendTimeoutError::Timeout(job)) => {
                        self.reply_expired(job);
                        return PendingAnswer(rx);
                    }
                    Err(channel::SendTimeoutError::Disconnected(_)) => {
                        unreachable!("dispatcher pool alive")
                    }
                }
            }
        }
        self.metrics.queue_depth.store(jobs.len() as u64, Ordering::Relaxed);
        PendingAnswer(rx)
    }

    /// Non-blocking submission: where [`Runtime::submit`] queues, this
    /// rejects. The query is refused with a [`Rejected`] `retry_after`
    /// hint when the admission gate's estimated-cost capacity is exhausted
    /// (overload control on) or the submission queue is full — in both
    /// cases before any plan, queue slot, or shard traffic is spent on it.
    pub fn try_submit(&self, spec: QuerySpec) -> Result<PendingAnswer, Rejected> {
        let spec = self.with_default_deadline(spec);
        let st = self.state.as_ref().expect("runtime is running");
        let jobs = self.jobs.as_ref().expect("runtime is running");
        let mut cost_milli = 0u64;
        if let Some(ov) = st.overload.as_ref() {
            match ov.try_admit(ov.price(spec.region.junctions.len())) {
                Ok(milli) => cost_milli = milli,
                Err(retry_after) => {
                    Metrics::bump(&st.metrics.admission_rejected);
                    return Err(Rejected { retry_after });
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        let job = Job { id, spec, cost_milli, reply: tx };
        if job.spec.deadline.is_some_and(|dl| dl <= Instant::now()) {
            // Expired on arrival: answer straight away, no queue slot.
            if let Some(ov) = st.overload.as_ref() {
                ov.release(job.cost_milli);
            }
            let job = Job { cost_milli: 0, ..job };
            self.reply_expired(job);
            return Ok(PendingAnswer(rx));
        }
        match jobs.try_send(job) {
            Ok(()) => {
                self.metrics.queue_depth.store(jobs.len() as u64, Ordering::Relaxed);
                Ok(PendingAnswer(rx))
            }
            Err(channel::TrySendError::Full(job)) => {
                if let Some(ov) = st.overload.as_ref() {
                    ov.release(job.cost_milli);
                }
                Metrics::bump(&st.metrics.admission_rejected);
                // Rough drain hint: one full backoff schedule.
                let retry_after = st
                    .overload
                    .as_ref()
                    .map(|ov| ov.queue_retry_after())
                    .unwrap_or(st.cfg.shard_timeout * (st.cfg.max_retries + 1));
                Err(Rejected { retry_after })
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                unreachable!("dispatcher pool alive")
            }
        }
    }

    /// Serves one query synchronously.
    pub fn query(&self, spec: QuerySpec) -> ServedAnswer {
        self.submit(spec).wait()
    }

    /// Drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // 1. Close the submission queue: dispatchers drain and exit.
        self.jobs = None;
        for h in self.dispatcher_threads.drain(..) {
            let _ = h.join();
        }
        // 2. Drop the last owner of the shard senders: shards drain and exit.
        self.state = None;
        // 3. Tell the supervisor to stop respawning; it joins every worker
        //    thread it ever spawned before returning.
        if let Some(tx) = self.supervisor_tx.take() {
            let _ = tx.send(SupervisorMsg::Shutdown);
        }
        if let Some(h) = self.supervisor_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Validates one event against the deployment; refusals bump the
/// `ingest_rejected` counter so operators can see malformed traffic.
fn check_event(st: &ServerState, c: &Crossing) -> Result<(), IngestError> {
    let err = if c.edge >= st.totals.len() {
        IngestError::UnknownEdge { edge: c.edge, num_edges: st.totals.len() }
    } else if !c.time.is_finite() {
        IngestError::NonFiniteTime { edge: c.edge }
    } else {
        return Ok(());
    };
    Metrics::bump(&st.metrics.ingest_rejected);
    Err(err)
}

/// Sequence-stamps one validated event and sends it to its owning shard.
///
/// The lane lock covers the map re-read, trim, sequence assignment, redo
/// push, AND the channel send, so sequences arrive at the worker in order.
/// The re-read makes routing race-free against migrations: a migration
/// commits its new assignment while holding the involved lane locks, so a
/// map read under a lane lock that still routes here is current — on a
/// mismatch we simply retry against the new owner.
fn dispatch_one(st: &ServerState, c: Crossing) {
    loop {
        let shard = st.map.shard_of(c.edge);
        let mut lane = st.lanes[shard].lock();
        if st.map.shard_of(c.edge) != shard {
            continue; // migrated between the read and the lock; re-route
        }
        let durable = st.durable_seq[shard].load(Ordering::Acquire);
        while lane.buf.front().is_some_and(|&(s, _)| s <= durable) {
            lane.buf.pop_front();
        }
        lane.next_seq += 1;
        let seq = lane.next_seq;
        lane.buf.push_back((seq, c));
        st.map.record_route(shard, 1);
        let _ = st.to_shards[shard].send(ShardMsg::Ingest { seq, event: c });
        return;
    }
}

fn serve(st: &ServerState, job: Job) {
    let start = Instant::now();
    // Deadline short-circuit at the dispatch hop: a job whose budget ran
    // out while it sat in the queue is answered from the worst-case totals
    // without any fan-out.
    let answer = if job.spec.deadline.is_some_and(|dl| Instant::now() >= dl) {
        expired_answer(st, job.id, &job.spec, start)
    } else {
        compute(st, job.id, &job.spec, start)
    };
    if let Some(ov) = st.overload.as_ref() {
        ov.release(job.cost_milli);
    }
    record_served(st, &answer);
    // The client may have given up on the PendingAnswer; that's fine.
    let _ = job.reply.send(answer);
}

/// Folds one served answer into the metric registry and trace ring (shared
/// by the dispatcher path and the expired-at-submit short-circuit).
fn record_served(st: &ServerState, answer: &ServedAnswer) {
    let m = &st.metrics;
    m.latency.record(answer.latency.as_micros() as u64);
    Metrics::bump(&m.queries);
    if answer.miss {
        Metrics::bump(&m.misses);
    }
    if answer.degraded {
        Metrics::bump(&m.degraded);
    }
    if answer.expired {
        Metrics::bump(&m.deadline_expired);
    }
    match answer.brownout {
        0 => {}
        b if stride_for(b) == 0 => Metrics::bump(&m.shed),
        _ => Metrics::bump(&m.downgraded),
    }
    match answer.strategy {
        DegradedStrategy::None => {}
        DegradedStrategy::Demoted => Metrics::bump(&m.degraded_demoted),
        DegradedStrategy::MultiFaceDetour => Metrics::bump(&m.degraded_detour),
        DegradedStrategy::Imputation => Metrics::bump(&m.degraded_imputed),
        DegradedStrategy::LearnedFallback => Metrics::bump(&m.degraded_learned),
    }
    if answer.strategy != DegradedStrategy::None {
        let width = answer.upper - answer.lower;
        if width.is_finite() {
            m.degraded_width.record(width.round().max(0.0) as u64);
        }
    }
    m.trace(QueryTrace {
        query_id: answer.query_id,
        shards: answer.shards,
        retries: answer.retries,
        coverage: answer.coverage,
        latency_us: answer.latency.as_micros() as u64,
        plan_us: answer.plan_latency.as_micros() as u64,
        plan_cache_hit: answer.plan_cache_hit,
        degraded: answer.degraded,
        miss: answer.miss,
        strategy: answer.strategy.label(),
        brownout: answer.brownout,
        expired: answer.expired,
    });
}

/// Maps a breaker transition onto its metric counter.
fn record_transition(st: &ServerState, tr: Option<Transition>) {
    match tr {
        Some(Transition::Opened) => Metrics::bump(&st.metrics.breaker_opened),
        Some(Transition::HalfOpened) => Metrics::bump(&st.metrics.breaker_half_open),
        Some(Transition::Closed) => Metrics::bump(&st.metrics.breaker_closed),
        None => {}
    }
}

/// The all-edges-missing bracket of one plan: every boundary edge
/// contributes its lifetime worst case `[−total_out, +total_in]`, the
/// estimate is 0. The same monotone `min` / `max(0, ·)` transforms as the
/// aggregator fold keep the Static-kind bracket sound.
fn worst_case_bracket(
    st: &ServerState,
    plan: &stq_core::engine::QueryPlan,
    kind: QueryKind,
) -> (f64, f64, f64) {
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for be in &plan.boundary {
        let fwd = st.totals[be.edge][0].load(Ordering::Relaxed) as f64;
        let bwd = st.totals[be.edge][1].load(Ordering::Relaxed) as f64;
        let (total_in, total_out) = if be.inward_forward { (fwd, bwd) } else { (bwd, fwd) };
        lo -= total_out;
        hi += total_in;
    }
    match kind {
        QueryKind::Snapshot(_) | QueryKind::Transient(..) => (0.0, lo, hi),
        QueryKind::Static(..) => (0.0, lo.max(0.0), hi.max(0.0)),
    }
}

/// Serves a query whose deadline already elapsed: the (cached) plan still
/// yields a sound worst-case bracket, but no shard is contacted.
fn expired_answer(st: &ServerState, id: u64, spec: &QuerySpec, start: Instant) -> ServedAnswer {
    let plan_t0 = Instant::now();
    let (plan, plan_cache_hit) =
        st.engine.plan(&st.sensing, &st.sampled, &spec.region, spec.approx);
    let plan_latency = plan_t0.elapsed();
    if plan.miss {
        return ServedAnswer {
            query_id: id,
            value: 0.0,
            lower: 0.0,
            upper: 0.0,
            coverage: 0.0,
            miss: true,
            degraded: false,
            strategy: DegradedStrategy::None,
            confidence: 0.0,
            quarantined: 0,
            shards: 0,
            retries: 0,
            plan_cache_hit,
            plan_latency,
            latency: start.elapsed(),
            expired: true,
            brownout: 0,
        };
    }
    let (value, lower, upper) = worst_case_bracket(st, &plan, spec.kind);
    let coverage = if plan.boundary.is_empty() { 1.0 } else { 0.0 };
    ServedAnswer {
        query_id: id,
        value,
        lower,
        upper,
        coverage,
        miss: false,
        degraded: coverage < 1.0,
        strategy: DegradedStrategy::None,
        confidence: 0.0,
        quarantined: 0,
        shards: 0,
        retries: 0,
        plan_cache_hit,
        plan_latency,
        latency: start.elapsed(),
        expired: true,
        brownout: 0,
    }
}

fn compute(st: &ServerState, id: u64, spec: &QuerySpec, start: Instant) -> ServedAnswer {
    // Plan: resolve the region and derive the boundary chain — or reuse a
    // cached plan for a region the runtime has served before.
    let plan_t0 = Instant::now();
    let (plan, plan_cache_hit) =
        st.engine.plan(&st.sensing, &st.sampled, &spec.region, spec.approx);
    let plan_latency = plan_t0.elapsed();
    st.metrics.plan_latency.record(plan_latency.as_micros() as u64);
    Metrics::bump(if plan_cache_hit {
        &st.metrics.plan_cache_hits
    } else {
        &st.metrics.plan_cache_misses
    });
    if plan.miss {
        // The serving graph cannot cover the region — but the degraded
        // answerer's detour / imputation machinery may still certify a
        // bracket on its repaired graphs.
        if let Some(da) = consult_degraded(st, spec) {
            return ServedAnswer {
                query_id: id,
                value: da.value,
                lower: da.bracket.lower,
                upper: da.bracket.upper,
                coverage: 0.0,
                miss: false,
                degraded: true,
                strategy: da.strategy,
                confidence: da.confidence,
                quarantined: 0,
                shards: 0,
                retries: 0,
                plan_cache_hit,
                plan_latency,
                latency: start.elapsed(),
                expired: false,
                brownout: 0,
            };
        }
        return ServedAnswer {
            query_id: id,
            value: 0.0,
            lower: 0.0,
            upper: 0.0,
            coverage: 0.0,
            miss: true,
            degraded: false,
            strategy: DegradedStrategy::None,
            confidence: 0.0,
            quarantined: 0,
            shards: 0,
            retries: 0,
            plan_cache_hit,
            plan_latency,
            latency: start.elapsed(),
            expired: false,
            brownout: 0,
        };
    }
    let exec_t0 = Instant::now();
    let boundary = &plan.boundary;

    // Brownout: the current precision level picks a boundary-sampling
    // stride. Level 0 serves every edge (the classic path); higher levels
    // serve every 2nd / 4th / no edge — the skipped ones fall to the same
    // worst-case-totals degradation as silent shards, so the answer is
    // cheaper and wider but still sound.
    let level = st.overload.as_ref().map(|ov| ov.brownout.level()).unwrap_or(0);

    // Fan out: group the served boundary edges by owning shard, tagged with
    // their position in the chain so the aggregate fold preserves term
    // order.
    let mut pending: HashMap<usize, Vec<(usize, BoundaryEdge)>> = HashMap::new();
    for (idx, be) in plan.shed_boundary(stride_for(level)) {
        pending.entry(st.map.shard_of(be.edge)).or_default().push((idx, be));
    }
    let fanout = pending.len();
    let mut slots: Vec<Option<EdgeCounts>> = vec![None; boundary.len()];
    let mut refused_total = 0usize;
    // Bounded per-query response channel (see `ServerState::resp_capacity`);
    // shards `try_send`, so a late answer past the cap is dropped, never a
    // blocked worker.
    let (tx, rx) = channel::bounded::<ShardResponse>(st.resp_capacity.max(1));
    let mut retries_used = 0u32;
    let mut expired_mid = false;

    let healthy = |shard: usize| st.health[shard].load(Ordering::Acquire) == HEALTHY;
    for attempt in 0..=st.cfg.max_retries {
        // Deadline short-circuit at the fan-out hop: no further attempts
        // once the budget is gone — whatever already reported is folded,
        // the rest degrades.
        if spec.deadline.is_some_and(|dl| Instant::now() >= dl) {
            expired_mid = true;
            break;
        }
        // Unhealthy / recovering shards are skipped outright: their edges
        // degrade to worst-case bounds instead of stalling the query. A
        // shard that finishes recovery before a later attempt rejoins then.
        // Open circuit breakers skip the same way (no retry storm against a
        // repeatedly-silent shard), except for the one half-open probe.
        let mut awaiting: HashSet<usize> = HashSet::new();
        let mut skipped_unhealthy = 0u64;
        for &shard in pending.keys() {
            if !healthy(shard) {
                skipped_unhealthy += 1;
                continue;
            }
            let (gate, tr) = match st.overload.as_ref() {
                Some(ov) => ov.breakers.admit(shard),
                None => (Gate::Allow, None),
            };
            record_transition(st, tr);
            match gate {
                Gate::Allow | Gate::Probe => {
                    awaiting.insert(shard);
                }
                Gate::Skip => Metrics::bump(&st.metrics.breaker_skipped),
            }
        }
        if skipped_unhealthy > 0 {
            Metrics::add(&st.metrics.skipped_unhealthy, skipped_unhealthy);
        }
        for (&shard, edges) in pending.iter().filter(|(s, _)| awaiting.contains(s)) {
            Metrics::bump(&st.metrics.shard_requests);
            let _ = st.to_shards[shard].send(ShardMsg::Query(ShardRequest {
                query_id: id,
                attempt,
                kind: spec.kind,
                edges: edges.clone(),
                deadline: spec.deadline,
                reply: tx.clone(),
            }));
        }
        let waited = !awaiting.is_empty();
        // Shards whose worker panicked on this attempt: they answered (so
        // the channel is live) but produced nothing — once every awaited
        // shard has failed, waiting out the timeout is pointless.
        let mut panicked_now: HashSet<usize> = HashSet::new();
        // Exponential backoff: attempt k waits 2^k × the base window —
        // clamped to the query deadline, which no attempt may overshoot.
        let mut deadline = Instant::now() + st.cfg.shard_timeout * (1u32 << attempt);
        if let Some(dl) = spec.deadline {
            deadline = deadline.min(dl);
        }
        while !awaiting.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Wait in short slices so a worker dying mid-attempt (health
            // flips away from Healthy) releases the query after one slice
            // instead of the full backoff window.
            match rx.recv_timeout((deadline - now).min(HEALTH_RECHECK)) {
                Ok(resp) if resp.panicked => {
                    if awaiting.contains(&resp.shard) {
                        panicked_now.insert(resp.shard);
                        if awaiting.iter().all(|s| panicked_now.contains(s)) {
                            break; // every awaited shard failed; retry now
                        }
                    }
                }
                Ok(resp) => {
                    // First response per shard wins; duplicates and answers
                    // from superseded attempts are ignored.
                    if pending.remove(&resp.shard).is_some() {
                        awaiting.remove(&resp.shard);
                        refused_total += resp.refused.len();
                        for c in resp.counts {
                            slots[c.idx] = Some(c);
                        }
                        // Edges a migration moved away from the responding
                        // shard mid-query re-enter the fan-out keyed by
                        // their current owner; a later attempt serves them
                        // there (or they degrade soundly at exhaustion).
                        for (idx, be) in resp.moved {
                            pending.entry(st.map.shard_of(be.edge)).or_default().push((idx, be));
                        }
                        if let Some(ov) = st.overload.as_ref() {
                            record_transition(st, ov.breakers.success(resp.shard));
                        }
                    }
                }
                Err(_) => {
                    let before = awaiting.len();
                    awaiting.retain(|&s| healthy(s) || panicked_now.contains(&s));
                    if awaiting.len() != before
                        && !awaiting.is_empty()
                        && awaiting.iter().all(|s| panicked_now.contains(s))
                    {
                        break;
                    }
                }
            }
        }
        // Breaker bookkeeping: a shard that stayed silent through its
        // attempt window counts one failure. Panicked workers are excluded
        // — they answered (the supervisor's escalation path owns them) —
        // and so are workers the health check removed mid-wait.
        if let Some(ov) = st.overload.as_ref() {
            for &shard in &awaiting {
                if !panicked_now.contains(&shard) {
                    record_transition(st, ov.breakers.failure(shard));
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        if waited {
            Metrics::bump(&st.metrics.timeouts);
        }
        if attempt < st.cfg.max_retries {
            retries_used += 1;
            Metrics::bump(&st.metrics.retries);
        }
    }

    // Aggregate in boundary order. A reported edge contributes its exact
    // terms; a missing edge contributes 0 to the estimate and its lifetime
    // worst case `[−total_out, +total_in]` to the bounds.
    let mut answered = 0usize;
    let (mut est_a, mut lo_a, mut hi_a) = (0.0f64, 0.0f64, 0.0f64);
    let (mut est_b, mut lo_b, mut hi_b) = (0.0f64, 0.0f64, 0.0f64);
    for (idx, &be) in boundary.iter().enumerate() {
        match slots[idx] {
            Some(c) => {
                answered += 1;
                est_a += c.a;
                lo_a += c.a;
                hi_a += c.a;
                est_b += c.b;
                lo_b += c.b;
                hi_b += c.b;
            }
            None => {
                let fwd = st.totals[be.edge][0].load(Ordering::Relaxed) as f64;
                let bwd = st.totals[be.edge][1].load(Ordering::Relaxed) as f64;
                let (total_in, total_out) = if be.inward_forward { (fwd, bwd) } else { (bwd, fwd) };
                lo_a -= total_out;
                hi_a += total_in;
                lo_b -= total_out;
                hi_b += total_in;
            }
        }
    }
    let coverage = if boundary.is_empty() { 1.0 } else { answered as f64 / boundary.len() as f64 };
    let (mut value, mut lower, mut upper) = match spec.kind {
        QueryKind::Snapshot(_) | QueryKind::Transient(..) => (est_a, lo_a, hi_a),
        // min and max(0, ·) are monotone, so applying them to the endpoint
        // bounds keeps lower ≤ exact ≤ upper.
        QueryKind::Static(..) => {
            (est_a.min(est_b).max(0.0), lo_a.min(lo_b).max(0.0), hi_a.min(hi_b).max(0.0))
        }
    };

    // Quarantine-degraded answers escalate through the repair strategies:
    // the certified degraded-mode bracket replaces the worst-case-totals
    // one (whose quarantined-edge terms fold corrupted lifetime counts).
    let (mut strategy, mut confidence) = (DegradedStrategy::None, coverage);
    if refused_total > 0 && coverage < 1.0 {
        if let Some(da) = consult_degraded(st, spec) {
            value = da.value;
            lower = da.bracket.lower;
            upper = da.bracket.upper;
            strategy = da.strategy;
            confidence = da.confidence;
        }
    }

    let exec_us = exec_t0.elapsed().as_micros() as u64;
    st.metrics.execute_latency.record(exec_us);
    // Feed the brownout controller; on a level shift, crossing level 2
    // also toggles subscription delta-push shedding (with a coalesced
    // catch-up push on the way back down).
    if let Some(ov) = st.overload.as_ref() {
        let depth = st.metrics.queue_depth.load(Ordering::Relaxed) as usize;
        if let Some((from, to)) = ov.brownout.observe(depth, exec_us) {
            st.metrics.brownout_level.store(to as u64, Ordering::Relaxed);
            Metrics::bump(&st.metrics.brownout_shifts);
            if from < 2 && to >= 2 {
                st.subs.set_shed_pushes(true);
            } else if from >= 2 && to < 2 {
                let coalesced = st.subs.set_shed_pushes(false);
                Metrics::add(&st.metrics.sub_coalesced, coalesced.len() as u64);
            }
        }
    }
    ServedAnswer {
        query_id: id,
        value,
        lower,
        upper,
        coverage,
        miss: false,
        degraded: coverage < 1.0,
        strategy,
        confidence,
        quarantined: refused_total,
        shards: fanout,
        retries: retries_used,
        plan_cache_hit,
        plan_latency,
        latency: start.elapsed(),
        expired: expired_mid,
        brownout: level,
    }
}

/// The degraded-mode consult gate: an answerer must be configured, no event
/// may have been ingested since startup (the brackets are certified against
/// the construction-time store), and the escalation must land on a non-miss
/// bracket.
fn consult_degraded(st: &ServerState, spec: &QuerySpec) -> Option<DegradedAnswer> {
    let deg = st.degraded.as_ref()?;
    if st.deg_dirty.load(Ordering::Acquire) {
        return None;
    }
    let store = st.deg_store.as_ref()?;
    let a = deg.answer(&st.sensing, store, &spec.region, spec.kind);
    (!a.bracket.miss).then_some(a)
}
