//! A columnar [`CountSource`]: every directed timestamp log in one flat
//! arena behind an offset table.
//!
//! A [`crate::FormStore`] keeps two `Vec<Time>` per edge, so a
//! boundary integration hops between `2 × |∂Q|` separately allocated
//! vectors. [`ColumnarCounts`] lays the same (sorted) sequences out
//! back-to-back in a single arena with a `2·num_edges + 1` offset table:
//! slot `2e` is edge `e`'s forward log, slot `2e + 1` its backward log.
//! Evaluating a plan's boundary then walks contiguous memory — the
//! vectorized execute path of the query engine — while answering through
//! the very same [`events_until`] rank as the exact store, so counts are
//! bit-identical to [`FormStore`]'s.

use crate::form::{events_until, CountSource, FormStore};
use crate::{EdgeIdx, Time};

/// Frozen per-edge sorted-timestamp arena with offset table.
///
/// Built once from a [`FormStore`] snapshot; immutable afterwards (streamed
/// updates go to the store it was built from, and a fresh arena is cut when
/// the serving store rolls over).
#[derive(Clone, Debug)]
pub struct ColumnarCounts {
    /// All directed logs, concatenated in slot order.
    arena: Vec<Time>,
    /// `offsets[s]..offsets[s + 1]` bounds slot `s` in the arena.
    offsets: Vec<u32>,
}

impl ColumnarCounts {
    /// Copies every form of `store` into one arena.
    ///
    /// # Panics
    /// If the store holds more than `u32::MAX` timestamps (the offset table
    /// is deliberately `u32` to halve its cache footprint).
    pub fn from_store(store: &FormStore) -> Self {
        let total: usize = store.total_events();
        assert!(u32::try_from(total).is_ok(), "arena exceeds u32 offsets");
        let mut arena = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(2 * store.num_edges() + 1);
        offsets.push(0);
        for e in 0..store.num_edges() {
            for forward in [true, false] {
                arena.extend_from_slice(store.form(e).timestamps(forward));
                offsets.push(arena.len() as u32);
            }
        }
        ColumnarCounts { arena, offsets }
    }

    /// Number of edges the arena covers.
    pub fn num_edges(&self) -> usize {
        (self.offsets.len() - 1) / 2
    }

    /// One directed log as a contiguous slice.
    pub fn log(&self, edge: EdgeIdx, forward: bool) -> &[Time] {
        let slot = 2 * edge + usize::from(!forward);
        &self.arena[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }
}

impl CountSource for ColumnarCounts {
    fn count_until(&self, edge: EdgeIdx, forward: bool, t: Time) -> f64 {
        events_until(self.log(edge, forward), t) as f64
    }

    fn storage_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<Time>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

/// A write-side columnar lane: one shard's slice of an ingest batch, laid
/// out struct-of-arrays so the ingest path streams three dense columns
/// instead of an array of structs.
///
/// Where [`ColumnarCounts`] is the frozen query-side arena, `ColumnarBatch`
/// is its moving counterpart: the batched-ingest path groups events by
/// owning shard into one lane per shard, hands each lane to its worker over
/// the shard channel, and the worker iterates the columns back into
/// individual event applications (and one group-commit WAL frame). The
/// crate deliberately knows nothing about the runtime's event type —
/// callers split it into `(edge, forward, time)` at the boundary.
#[derive(Clone, Debug, Default)]
pub struct ColumnarBatch {
    edges: Vec<EdgeIdx>,
    forwards: Vec<bool>,
    times: Vec<Time>,
}

impl ColumnarBatch {
    /// An empty lane.
    pub fn new() -> Self {
        ColumnarBatch::default()
    }

    /// An empty lane with room for `cap` events per column.
    pub fn with_capacity(cap: usize) -> Self {
        ColumnarBatch {
            edges: Vec::with_capacity(cap),
            forwards: Vec::with_capacity(cap),
            times: Vec::with_capacity(cap),
        }
    }

    /// Appends one event, preserving arrival order within the lane.
    pub fn push(&mut self, edge: EdgeIdx, forward: bool, time: Time) {
        self.edges.push(edge);
        self.forwards.push(forward);
        self.times.push(time);
    }

    /// Events in the lane.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the lane is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The events in push order, rematerialized from the columns.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeIdx, bool, Time)> + '_ {
        self.edges.iter().zip(&self.forwards).zip(&self.times).map(|((&e, &f), &t)| (e, f, t))
    }

    /// The edge column (the dispatch key the lane was grouped by).
    pub fn edges(&self) -> &[EdgeIdx] {
        &self.edges
    }

    /// Drops every event, keeping the columns' capacity.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.forwards.clear();
        self.times.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{snapshot_count, transient_count, BoundaryEdge};

    fn store() -> FormStore {
        let mut s = FormStore::new(4);
        for (i, t) in [0.5, 1.0, 2.5, 4.0].into_iter().enumerate() {
            s.record(0, true, t);
            s.record(2, i % 2 == 0, t + 0.25);
        }
        s.record(3, false, 9.0);
        s
    }

    #[test]
    fn counts_match_form_store_exactly() {
        let s = store();
        let c = ColumnarCounts::from_store(&s);
        assert_eq!(c.num_edges(), 4);
        for e in 0..4 {
            for forward in [true, false] {
                for t in [-1.0, 0.5, 0.75, 2.5, 9.0, 100.0] {
                    assert_eq!(
                        c.count_until(e, forward, t).to_bits(),
                        s.count_until(e, forward, t).to_bits(),
                        "edge {e} fwd {forward} t {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_integration_is_bit_identical() {
        let s = store();
        let c = ColumnarCounts::from_store(&s);
        let boundary =
            [BoundaryEdge::new(0, true), BoundaryEdge::new(2, false), BoundaryEdge::new(3, true)];
        for t in [0.0, 1.0, 5.0] {
            assert_eq!(
                snapshot_count(&c, &boundary, t).to_bits(),
                snapshot_count(&s, &boundary, t).to_bits()
            );
        }
        assert_eq!(
            transient_count(&c, &boundary, 0.5, 4.0).to_bits(),
            transient_count(&s, &boundary, 0.5, 4.0).to_bits()
        );
    }

    #[test]
    fn empty_store_and_empty_logs() {
        let c = ColumnarCounts::from_store(&FormStore::new(3));
        assert_eq!(c.num_edges(), 3);
        assert!(c.log(1, true).is_empty());
        assert_eq!(c.count_until(2, false, 1e9), 0.0);
        assert_eq!(c.storage_bytes(), 7 * 4);
    }

    #[test]
    fn columnar_batch_roundtrips_in_push_order() {
        let mut b = ColumnarBatch::with_capacity(4);
        assert!(b.is_empty());
        let events = [(3usize, true, 1.5), (0, false, 2.0), (3, true, 2.25)];
        for &(e, f, t) in &events {
            b.push(e, f, t);
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.edges(), &[3, 0, 3]);
        let back: Vec<(usize, bool, f64)> = b.iter().collect();
        assert_eq!(back, events);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }
}
