//! Boundary integration: the query-side of Theorems 4.1–4.3.

use crate::form::CountSource;
use crate::{EdgeIdx, Time};

/// One edge of a region's boundary chain, oriented *inward*.
///
/// `inward_forward = true` means the edge's construction direction
/// (tail → head) leads into the region, so forward crossings are entries
/// (`ξ⁺`) and backward crossings exits (`ξ⁻`); `false` flips the roles —
/// the `ξ(−e) = −ξ(e)` antisymmetry of differential 1-forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundaryEdge {
    /// The sensing link on the region boundary.
    pub edge: EdgeIdx,
    /// Whether the edge's forward (tail → head) direction leads inward.
    pub inward_forward: bool,
}

impl BoundaryEdge {
    /// Convenience constructor.
    pub fn new(edge: EdgeIdx, inward_forward: bool) -> Self {
        BoundaryEdge { edge, inward_forward }
    }
}

/// Theorem 4.1 / 4.2 — the number of objects inside the region bounded by
/// `boundary` at time `t`: `Σ_{e ∈ ∂Q} C(γ⁺, t) − C(γ⁻, t)`.
///
/// Exact on fully monitored graphs (certified against the oracle in tests);
/// fractional with model-based [`CountSource`]s.
pub fn snapshot_count<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    t: Time,
) -> f64 {
    let mut total = 0.0;
    for be in boundary {
        let inn = store.count_until(be.edge, be.inward_forward, t);
        let out = store.count_until(be.edge, !be.inward_forward, t);
        total += inn - out;
    }
    total
}

/// Theorem 4.3 — the *transient* count over `[t0, t1]`: net entries minus
/// exits, `Σ_{e ∈ ∂Q} C(γ⁺, t0, t1) − C(γ⁻, t0, t1)`. Negative values mean
/// more objects left than entered (paper §4.7.4).
pub fn transient_count<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    t0: Time,
    t1: Time,
) -> f64 {
    let mut total = 0.0;
    for be in boundary {
        let inn = store.count_between(be.edge, be.inward_forward, t0, t1);
        let out = store.count_between(be.edge, !be.inward_forward, t0, t1);
        total += inn - out;
    }
    total
}

/// Static interval count — objects present during the whole interval
/// `[t0, t1]` (the paper's query type 1, §3.3).
///
/// From aggregate boundary counts the "does not temporarily leave" clause is
/// not observable, so the paper answers this query through Theorem 4.2's
/// snapshot machinery. The natural aggregate estimator is
/// `max(0, min(snapshot(t0), snapshot(t1)))`: an object present for the
/// whole interval is inside at both endpoints, so this upper-bounds the
/// exact static count while staying insensitive to pass-through traffic.
/// For `t0 = t1` it degenerates to the snapshot count — exactly how the
/// paper reduces the spatial range query of \[34\] to this query ("set t1 and
/// t2 to be very close").
pub fn static_interval_count<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    t0: Time,
    t1: Time,
) -> f64 {
    snapshot_count(store, boundary, t0).min(snapshot_count(store, boundary, t1)).max(0.0)
}

/// Conservative lower bound on the static interval count:
/// `max(0, snapshot(t0) − exits(t0, t1])` — everything present at `t0`,
/// minus every departure during the interval (each departure removes at most
/// one object that was present throughout). Guaranteed ≤ the exact static
/// count, but gross exits include pass-through traffic, so it collapses to 0
/// in busy regions; use [`static_interval_count`] for estimation.
pub fn static_interval_lower_bound<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    t0: Time,
    t1: Time,
) -> f64 {
    let at_start = snapshot_count(store, boundary, t0);
    let mut exits = 0.0;
    for be in boundary {
        exits += store.count_between(be.edge, !be.inward_forward, t0, t1);
    }
    (at_start - exits).max(0.0)
}

/// Gross directed flow across the boundary over `(t0, t1]`:
/// `(entries, exits)`. Useful for traffic-flow style applications (§3.3) and
/// for diagnostics.
pub fn gross_flow<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    t0: Time,
    t1: Time,
) -> (f64, f64) {
    let mut inn = 0.0;
    let mut out = 0.0;
    for be in boundary {
        inn += store.count_between(be.edge, be.inward_forward, t0, t1);
        out += store.count_between(be.edge, !be.inward_forward, t0, t1);
    }
    (inn, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::FormStore;

    /// Reproduces Figure 8 of the paper: faces σ and τ share edge c; target
    /// T moves σ → τ at t=1. Boundary of τ contains edge c inward-backward
    /// (T crosses `-c` into τ).
    #[test]
    fn figure8_example() {
        // Edges: 0=a,1=b (border of σ with outside), 2=c (σ|τ shared),
        // 3=d,4=e (border of τ with outside). Forward = "into τ / into σ"
        // chosen per boundary orientation below.
        let mut store = FormStore::new(5);
        // T starts outside, enters σ via b at t=0 (forward = into σ).
        store.record(1, true, 0.0);
        // T moves σ → τ via c at t=1: forward direction of c = into τ.
        store.record(2, true, 1.0);

        let sigma = [
            BoundaryEdge::new(0, true),
            BoundaryEdge::new(1, true),
            BoundaryEdge::new(2, false), // c leads out of σ in its fwd direction
        ];
        let tau =
            [BoundaryEdge::new(2, true), BoundaryEdge::new(3, true), BoundaryEdge::new(4, true)];

        // Before the move.
        assert_eq!(snapshot_count(&store, &sigma, 0.5), 1.0);
        assert_eq!(snapshot_count(&store, &tau, 0.5), 0.0);
        // After the move: σ empty again, τ holds T (Theorem 4.1 example).
        assert_eq!(snapshot_count(&store, &sigma, 2.0), 0.0);
        assert_eq!(snapshot_count(&store, &tau, 2.0), 1.0);
        // Union of σ and τ: boundary excludes the shared edge c.
        let union = [
            BoundaryEdge::new(0, true),
            BoundaryEdge::new(1, true),
            BoundaryEdge::new(3, true),
            BoundaryEdge::new(4, true),
        ];
        assert_eq!(snapshot_count(&store, &union, 2.0), 1.0);
    }

    /// Reproduces Figure 10: blue enters σ via b at t0, exits via c at t3;
    /// green enters via b at t2; red enters via a at t1.
    #[test]
    fn figure10_example() {
        let (a, b, c) = (0, 1, 2);
        let mut store = FormStore::new(3);
        let (t0, t1, t2, t3) = (0.0, 1.0, 2.0, 3.0);
        store.record(b, true, t0); // blue in
        store.record(a, true, t1); // red in
        store.record(b, true, t2); // green in
        store.record(c, false, t3); // blue out (c forward = inward)
        let boundary =
            [BoundaryEdge::new(a, true), BoundaryEdge::new(b, true), BoundaryEdge::new(c, true)];

        // Theorem 4.2: count up to t3 = 1 + 2 - 1 = 2.
        assert_eq!(snapshot_count(&store, &boundary, t3), 2.0);
        // Theorem 4.3: transient over [t1, t3] = 0 + 1 - 1 = 0.
        assert_eq!(transient_count(&store, &boundary, t1, t3), 0.0);
        // Transient over [-inf-ish, t3] = all 3 entries minus 1 exit.
        assert_eq!(transient_count(&store, &boundary, -1.0, t3), 2.0);
    }

    #[test]
    fn reentry_does_not_double_count() {
        // The highway example of §3.1.2: one vehicle enters, exits, and
        // re-enters through the same edge. Snapshot must be 1, not 2.
        let mut store = FormStore::new(1);
        store.record(0, true, 1.0); // in
        store.record(0, false, 2.0); // out
        store.record(0, true, 3.0); // in again
        let boundary = [BoundaryEdge::new(0, true)];
        assert_eq!(snapshot_count(&store, &boundary, 10.0), 1.0);
        assert_eq!(transient_count(&store, &boundary, 0.0, 10.0), 1.0);
    }

    #[test]
    fn static_interval_estimators() {
        let mut store = FormStore::new(1);
        let boundary = [BoundaryEdge::new(0, true)];
        // Two objects in before t0=5.
        store.record(0, true, 1.0);
        store.record(0, true, 2.0);
        // One leaves during the interval.
        store.record(0, false, 6.0);
        assert_eq!(static_interval_count(&store, &boundary, 5.0, 10.0), 1.0);
        assert_eq!(static_interval_lower_bound(&store, &boundary, 5.0, 10.0), 1.0);
        // Degenerates to snapshot when t0 == t1.
        assert_eq!(static_interval_count(&store, &boundary, 5.0, 5.0), 2.0);
        // Pass-through traffic (in and out inside the window) does not
        // collapse the estimator, unlike the conservative bound.
        store.record(0, true, 7.0);
        store.record(0, false, 8.0);
        assert_eq!(static_interval_count(&store, &boundary, 5.0, 10.0), 1.0);
        assert_eq!(static_interval_lower_bound(&store, &boundary, 5.0, 10.0), 0.0);
        // Never negative even when exits exceed the initial population.
        let mut store2 = FormStore::new(1);
        store2.record(0, true, 6.0);
        store2.record(0, false, 7.0);
        store2.record(0, false, 8.0); // a second exit (object present pre-t0 unseen)
        assert_eq!(static_interval_count(&store2, &boundary, 5.0, 10.0), 0.0);
    }

    #[test]
    fn gross_flow_splits_directions() {
        let mut store = FormStore::new(2);
        store.record(0, true, 1.0);
        store.record(0, true, 2.0);
        store.record(1, false, 3.0);
        let boundary = [BoundaryEdge::new(0, true), BoundaryEdge::new(1, false)];
        // Edge 1 is inward-backward, so its backward crossing is an entry.
        let (inn, out) = gross_flow(&store, &boundary, 0.0, 10.0);
        assert_eq!(inn, 3.0);
        assert_eq!(out, 0.0);
    }

    #[test]
    fn empty_boundary_counts_zero() {
        let store = FormStore::new(0);
        assert_eq!(snapshot_count(&store, &[], 1.0), 0.0);
        assert_eq!(transient_count(&store, &[], 0.0, 1.0), 0.0);
        assert_eq!(static_interval_count(&store, &[], 0.0, 1.0), 0.0);
    }
}
