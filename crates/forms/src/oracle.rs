//! Identifier-based ground-truth counter.
//!
//! The whole point of the paper is to answer distinct-count queries *without*
//! storing identifiers. This oracle stores them anyway — it exists solely so
//! tests and benchmarks can certify that the identifier-free tracking forms
//! are exact on fully monitored graphs, and to compute the exact static
//! interval count that aggregates cannot recover.

use crate::Time;
use std::collections::HashMap;

/// Opaque moving-object identifier.
pub type ObjectId = u64;
/// Junction (primal vertex) id — matches `stq_planar` vertex indices.
pub type Junction = usize;

/// Tracks every object's full location history.
#[derive(Clone, Debug, Default)]
pub struct OracleTracker {
    /// Per object: arrival events `(time, junction)`, time-sorted.
    trails: HashMap<ObjectId, Vec<(Time, Junction)>>,
}

impl OracleTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `object` arrived at `junction` at time `t`.
    ///
    /// # Panics
    /// If `t` precedes the object's last recorded event.
    pub fn record_arrival(&mut self, object: ObjectId, junction: Junction, t: Time) {
        assert!(t.is_finite(), "time must be finite");
        let trail = self.trails.entry(object).or_default();
        if let Some(&(last, _)) = trail.last() {
            assert!(t >= last, "object {object} moved back in time ({t} < {last})");
        }
        trail.push((t, junction));
    }

    /// Number of tracked objects.
    pub fn num_objects(&self) -> usize {
        self.trails.len()
    }

    /// The junction occupied by `object` at time `t`, or `None` if the
    /// object has no event at or before `t`.
    pub fn location_at(&self, object: ObjectId, t: Time) -> Option<Junction> {
        let trail = self.trails.get(&object)?;
        let idx = trail.partition_point(|&(ts, _)| ts <= t);
        if idx == 0 {
            None
        } else {
            Some(trail[idx - 1].1)
        }
    }

    /// Exact number of distinct objects inside the junction set at time `t`.
    pub fn snapshot_count(&self, in_region: &dyn Fn(Junction) -> bool, t: Time) -> usize {
        self.trails
            .keys()
            .filter(|&&o| self.location_at(o, t).map(&in_region).unwrap_or(false))
            .count()
    }

    /// Exact net change of population over `(t0, t1]`.
    pub fn transient_count(&self, in_region: &dyn Fn(Junction) -> bool, t0: Time, t1: Time) -> i64 {
        self.snapshot_count(in_region, t1) as i64 - self.snapshot_count(in_region, t0) as i64
    }

    /// Exact number of distinct objects that stay inside the region for the
    /// *entire* interval `[t0, t1]` — the paper's static object count
    /// (§3.3, query type 1), including the "does not temporarily leave"
    /// clause that aggregates can only lower-bound.
    pub fn static_interval_count(
        &self,
        in_region: &dyn Fn(Junction) -> bool,
        t0: Time,
        t1: Time,
    ) -> usize {
        let mut count = 0;
        'objects: for (&o, trail) in &self.trails {
            // Must be inside at t0...
            match self.location_at(o, t0) {
                Some(j) if in_region(j) => {}
                _ => continue,
            }
            // ...and never step outside during (t0, t1].
            let lo = trail.partition_point(|&(ts, _)| ts <= t0);
            for &(ts, j) in &trail[lo..] {
                if ts > t1 {
                    break;
                }
                if !in_region(j) {
                    continue 'objects;
                }
            }
            count += 1;
        }
        count
    }

    /// Exact gross counts over `(t0, t1]`: `(entries, exits)` — transitions
    /// of any object from outside to inside and vice versa.
    pub fn gross_flow(
        &self,
        in_region: &dyn Fn(Junction) -> bool,
        t0: Time,
        t1: Time,
    ) -> (usize, usize) {
        let mut entries = 0;
        let mut exits = 0;
        for (&o, trail) in &self.trails {
            let mut inside = self.location_at(o, t0).map(&in_region).unwrap_or(false);
            let lo = trail.partition_point(|&(ts, _)| ts <= t0);
            for &(ts, j) in &trail[lo..] {
                if ts > t1 {
                    break;
                }
                let now = in_region(j);
                if now && !inside {
                    entries += 1;
                } else if !now && inside {
                    exits += 1;
                }
                inside = now;
            }
        }
        (entries, exits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_set(set: &'static [Junction]) -> impl Fn(Junction) -> bool {
        move |j| set.contains(&j)
    }

    #[test]
    fn location_history() {
        let mut o = OracleTracker::new();
        o.record_arrival(1, 10, 0.0);
        o.record_arrival(1, 11, 5.0);
        o.record_arrival(1, 12, 9.0);
        assert_eq!(o.location_at(1, -1.0), None);
        assert_eq!(o.location_at(1, 0.0), Some(10));
        assert_eq!(o.location_at(1, 4.9), Some(10));
        assert_eq!(o.location_at(1, 5.0), Some(11));
        assert_eq!(o.location_at(1, 100.0), Some(12));
        assert_eq!(o.location_at(2, 0.0), None);
    }

    #[test]
    fn snapshot_and_transient() {
        let mut o = OracleTracker::new();
        // Object 1 enters region {5,6} at t=1, leaves at t=4.
        o.record_arrival(1, 0, 0.0);
        o.record_arrival(1, 5, 1.0);
        o.record_arrival(1, 9, 4.0);
        // Object 2 stays inside from t=2.
        o.record_arrival(2, 6, 2.0);
        let region = in_set(&[5, 6]);
        assert_eq!(o.snapshot_count(&region, 0.5), 0);
        assert_eq!(o.snapshot_count(&region, 1.5), 1);
        assert_eq!(o.snapshot_count(&region, 3.0), 2);
        assert_eq!(o.snapshot_count(&region, 5.0), 1);
        assert_eq!(o.transient_count(&region, 0.5, 3.0), 2);
        assert_eq!(o.transient_count(&region, 3.0, 5.0), -1);
    }

    #[test]
    fn static_interval_strictness() {
        let mut o = OracleTracker::new();
        // Object 1: inside the whole interval.
        o.record_arrival(1, 5, 0.0);
        // Object 2: inside at t0 but pops out at t=2 and returns at t=3 —
        // must NOT count (the "does not temporarily leave" clause).
        o.record_arrival(2, 5, 0.0);
        o.record_arrival(2, 9, 2.0);
        o.record_arrival(2, 5, 3.0);
        // Object 3: enters after t0 — must not count.
        o.record_arrival(3, 5, 1.5);
        let region = in_set(&[5]);
        assert_eq!(o.static_interval_count(&region, 1.0, 4.0), 1);
        // Degenerate interval = snapshot.
        assert_eq!(o.static_interval_count(&region, 1.0, 1.0), 2);
    }

    #[test]
    fn gross_flow_counts_transitions() {
        let mut o = OracleTracker::new();
        o.record_arrival(1, 0, 0.0);
        o.record_arrival(1, 5, 1.0); // enter
        o.record_arrival(1, 0, 2.0); // exit
        o.record_arrival(1, 5, 3.0); // enter again
        let region = in_set(&[5]);
        let (inn, out) = o.gross_flow(&region, 0.0, 10.0);
        assert_eq!((inn, out), (2, 1));
    }

    #[test]
    #[should_panic(expected = "back in time")]
    fn time_travel_rejected() {
        let mut o = OracleTracker::new();
        o.record_arrival(1, 0, 5.0);
        o.record_arrival(1, 1, 4.0);
    }
}
