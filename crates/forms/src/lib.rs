//! # stq-forms
//!
//! Discrete differential 1-forms with paired incoming/outgoing counts — the
//! paper's solution to the **double-counting problem** (§4.7).
//!
//! Every monitored edge carries two monotone timestamp sequences, one per
//! traversal direction (Eq. 8: `γ⁺`, `γ⁻`). Queries integrate these along the
//! boundary chain of a region:
//!
//! - snapshot count (Theorem 4.1 / 4.2): objects inside at time `t`,
//! - transient count (Theorem 4.3): net entries minus exits over `[t₁, t₂]`,
//! - static interval count: a lower-bound estimator for objects present
//!   during the *whole* interval.
//!
//! Because each object contributes `+1` on entry and `−1` on exit across the
//! boundary, re-entering objects cancel instead of double-counting, without
//! any identifier ever being stored.
//!
//! The [`oracle`] module provides an identifier-based ground-truth counter
//! used only by tests and benchmarks to certify exactness of the form-based
//! counts on fully-monitored graphs.

pub mod audit;
pub mod columnar;
pub mod form;
pub mod oracle;
pub mod privacy;
pub mod query;

pub use audit::{
    audit, AuditConfig, AuditReport, ComponentSpec, EdgeHealth, EdgeVerdict, Evidence, Violation,
};
pub use columnar::{ColumnarBatch, ColumnarCounts};
pub use form::{events_until, CountSource, FormStore, TrackingForm};
pub use oracle::OracleTracker;
pub use privacy::PrivateCounts;
pub use query::{
    gross_flow, snapshot_count, static_interval_count, static_interval_lower_bound,
    transient_count, BoundaryEdge,
};

/// Timestamps are plain seconds; only ordering and differences matter.
pub type Time = f64;
/// Edges are dense indices `0..num_edges`, matching
/// `stq_planar::embedding::EdgeId`.
pub type EdgeIdx = usize;
