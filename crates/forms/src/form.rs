//! Tracking forms: per-edge directed crossing logs (paper Eqs. 7–8).

use crate::{EdgeIdx, Time};

/// Rank of `t` in a sorted timestamp sequence: the number of events with
/// `time ≤ t` — the paper's `C(γ_t(e), t)` on one directed log.
///
/// This is *the* count primitive shared by every store: the exact
/// [`TrackingForm`], the columnar arena of [`crate::columnar`], and the
/// recent-event buffer of `stq_learned::BufferedSeries` all answer
/// cumulative counts through this one `partition_point` rank, so boundary
/// semantics (ties included, empty sequence → 0) cannot drift between them.
pub fn events_until(seq: &[Time], t: Time) -> usize {
    seq.partition_point(|&x| x <= t)
}

/// The two timestamp sequences of one edge's tracking form.
///
/// `fwd` logs traversals in the edge's construction direction (tail → head),
/// `bwd` the opposite. Both are monotone non-decreasing: events arrive in
/// time order per edge, matching a physical sensor appending to its log
/// (`γ_t = γ_{t−1} ⊕ t`, Eq. 8).
#[derive(Clone, Debug, Default)]
pub struct TrackingForm {
    fwd: Vec<Time>,
    bwd: Vec<Time>,
}

impl TrackingForm {
    /// Creates an empty form.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a crossing at time `t` in the given direction.
    ///
    /// # Panics
    /// If `t` is not finite or precedes the last recorded event in the same
    /// direction (sensors observe time monotonically).
    pub fn record(&mut self, forward: bool, t: Time) {
        assert!(t.is_finite(), "crossing time must be finite");
        let seq = if forward { &mut self.fwd } else { &mut self.bwd };
        if let Some(&last) = seq.last() {
            assert!(t >= last, "crossing times must be monotone per direction ({t} < {last})");
        }
        seq.push(t);
    }

    /// Builds a form directly from raw timestamp sequences, bypassing the
    /// monotonicity check of [`TrackingForm::record`]. Corrupted sensors
    /// (clock skew, replayed logs) produce out-of-order sequences, and the
    /// integrity auditor in [`mod@crate::audit`] must be able to ingest them
    /// verbatim to detect exactly that.
    ///
    /// # Panics
    /// If any timestamp is not finite.
    pub fn from_sequences(fwd: Vec<Time>, bwd: Vec<Time>) -> Self {
        assert!(
            fwd.iter().chain(bwd.iter()).all(|t| t.is_finite()),
            "crossing times must be finite"
        );
        TrackingForm { fwd, bwd }
    }

    /// Whether a direction's log is monotone non-decreasing — the hard
    /// invariant every healthy sensor satisfies (it observes time in order).
    pub fn is_monotone(&self, forward: bool) -> bool {
        let seq = if forward { &self.fwd } else { &self.bwd };
        seq.windows(2).all(|w| w[0] <= w[1])
    }

    /// Events with `time ≤ t` in a direction — the paper's `C(γ_t(e), t)`.
    pub fn count_until(&self, forward: bool, t: Time) -> usize {
        events_until(if forward { &self.fwd } else { &self.bwd }, t)
    }

    /// Events in the half-open window `(t0, t1]` — `C(γ, t0, t1)` (§4.7.4).
    pub fn count_between(&self, forward: bool, t0: Time, t1: Time) -> usize {
        self.count_until(forward, t1).saturating_sub(self.count_until(forward, t0))
    }

    /// Total events in a direction.
    pub fn total(&self, forward: bool) -> usize {
        if forward {
            self.fwd.len()
        } else {
            self.bwd.len()
        }
    }

    /// The raw timestamp sequence (for model fitting in `stq-learned`).
    pub fn timestamps(&self, forward: bool) -> &[Time] {
        if forward {
            &self.fwd
        } else {
            &self.bwd
        }
    }

    /// Bytes needed to store the explicit sequences (8 bytes per timestamp)
    /// — the storage baseline the regression models are compared against
    /// (paper Fig. 11e).
    pub fn storage_bytes(&self) -> usize {
        (self.fwd.len() + self.bwd.len()) * std::mem::size_of::<Time>()
    }
}

/// Anything that can answer directed cumulative crossing counts per edge.
///
/// Implemented by the exact [`FormStore`] and by the regression-model store
/// in `stq-learned`; the query evaluators in [`crate::query`] are generic
/// over this trait, so exact and learned answers share one code path.
pub trait CountSource {
    /// Estimated number of events with `time ≤ t` on `edge` in `direction`.
    /// Fractional values are allowed (model inference).
    fn count_until(&self, edge: EdgeIdx, forward: bool, t: Time) -> f64;

    /// Estimated events in `(t0, t1]`.
    fn count_between(&self, edge: EdgeIdx, forward: bool, t0: Time, t1: Time) -> f64 {
        self.count_until(edge, forward, t1) - self.count_until(edge, forward, t0)
    }

    /// Total storage footprint in bytes.
    fn storage_bytes(&self) -> usize;
}

/// The exact store: one [`TrackingForm`] per edge.
#[derive(Clone, Debug)]
pub struct FormStore {
    forms: Vec<TrackingForm>,
}

impl FormStore {
    /// Creates a store for `num_edges` edges, all empty.
    pub fn new(num_edges: usize) -> Self {
        FormStore { forms: vec![TrackingForm::new(); num_edges] }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.forms.len()
    }

    /// Records a crossing of `edge` in the given direction at time `t`.
    pub fn record(&mut self, edge: EdgeIdx, forward: bool, t: Time) {
        self.forms[edge].record(forward, t);
    }

    /// Access to one edge's form.
    pub fn form(&self, edge: EdgeIdx) -> &TrackingForm {
        &self.forms[edge]
    }

    /// Replaces one edge's form wholesale — used by corrupted ingestion (a
    /// faulty sensor's log is built externally) and by the repair layer
    /// (un-flipping or deduplicating a form rewrites it).
    pub fn set_form(&mut self, edge: EdgeIdx, form: TrackingForm) {
        self.forms[edge] = form;
    }

    /// Total number of recorded events across all edges and directions.
    pub fn total_events(&self) -> usize {
        self.forms.iter().map(|f| f.total(true) + f.total(false)).sum()
    }
}

impl CountSource for FormStore {
    fn count_until(&self, edge: EdgeIdx, forward: bool, t: Time) -> f64 {
        self.forms[edge].count_until(forward, t) as f64
    }

    fn storage_bytes(&self) -> usize {
        self.forms.iter().map(|f| f.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_until_boundary_conditions() {
        // Empty sequence: always 0, at any t.
        assert_eq!(events_until(&[], 5.0), 0);
        assert_eq!(events_until(&[], f64::NEG_INFINITY), 0);
        // t exactly equal to a stored timestamp: the tie is *included*.
        let seq = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(events_until(&seq, 2.0), 3);
        assert_eq!(events_until(&seq, 1.0), 1);
        assert_eq!(events_until(&seq, 3.0), 4);
        // Strictly between / outside stored timestamps.
        assert_eq!(events_until(&seq, 0.5), 0);
        assert_eq!(events_until(&seq, 2.5), 3);
        assert_eq!(events_until(&seq, 99.0), 4);
    }

    #[test]
    fn record_and_count() {
        let mut f = TrackingForm::new();
        f.record(true, 1.0);
        f.record(true, 2.0);
        f.record(true, 2.0); // equal times allowed
        f.record(false, 1.5);
        assert_eq!(f.count_until(true, 0.5), 0);
        assert_eq!(f.count_until(true, 1.0), 1);
        assert_eq!(f.count_until(true, 2.0), 3);
        assert_eq!(f.count_until(true, 99.0), 3);
        assert_eq!(f.count_until(false, 1.5), 1);
    }

    #[test]
    fn window_is_half_open() {
        let mut f = TrackingForm::new();
        for t in [1.0, 2.0, 3.0] {
            f.record(true, t);
        }
        assert_eq!(f.count_between(true, 1.0, 3.0), 2); // excludes t=1, includes t=3
        assert_eq!(f.count_between(true, 0.0, 1.0), 1);
        assert_eq!(f.count_between(true, 3.0, 10.0), 0);
        assert_eq!(f.count_between(true, 5.0, 4.0), 0); // inverted window
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_rejected() {
        let mut f = TrackingForm::new();
        f.record(true, 2.0);
        f.record(true, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let mut f = TrackingForm::new();
        f.record(true, f64::NAN);
    }

    #[test]
    fn directions_independent() {
        let mut f = TrackingForm::new();
        f.record(true, 5.0);
        f.record(false, 1.0); // earlier than fwd's last: fine, separate log
        assert_eq!(f.total(true), 1);
        assert_eq!(f.total(false), 1);
    }

    #[test]
    fn store_roundtrip() {
        let mut s = FormStore::new(3);
        s.record(0, true, 1.0);
        s.record(2, false, 4.0);
        s.record(2, false, 5.0);
        assert_eq!(s.count_until(0, true, 2.0), 1.0);
        assert_eq!(s.count_until(2, false, 4.5), 1.0);
        assert_eq!(s.count_between(2, false, 4.0, 5.0), 1.0);
        assert_eq!(s.total_events(), 3);
        assert_eq!(s.storage_bytes(), 3 * 8);
    }
}
