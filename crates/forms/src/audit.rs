//! 1-form integrity auditing: oracle-free detection of corrupted sensors.
//!
//! Theorems 4.1–4.3 make the paired in/out counts a discrete 1-form, and
//! 1-forms obey an exact conservation law on the sampled graph: the
//! population of every face (merged component) equals the running net inflow
//! over its boundary and **can never be negative**. A dead, flipped, or
//! lossy sensor breaks that invariant in ways that are checkable from the
//! monitored edges alone — no ground-truth oracle, no object identifiers.
//!
//! The auditor combines three detectors:
//!
//! 1. **Local hard invariants** — each direction's timestamp log must be
//!    monotone (a sensor observes time in order), and exact duplicate
//!    timestamps are measure-zero for continuous motion, so repeated ones
//!    betray a duplicating sensor.
//! 2. **Conservation scan** — per non-exterior component, boundary events
//!    are signed (+1 inward, −1 outward) and prefix-summed in time order; a
//!    negative running population is impossible for real traffic and
//!    implicates every boundary edge of the violated component.
//! 3. **Silence statistics** — a sensor that is dead for a window leaves a
//!    gap in its event log far larger than its typical inter-event spacing,
//!    and a sensor that logs *nothing* while its sibling boundary edges are
//!    busy is most plausibly dead. These are heuristics: they can only cost
//!    coverage (a healthy-but-quiet edge gets quarantined), never soundness.
//!
//! Each monitored edge is classified [`EdgeHealth::Healthy`],
//! [`EdgeHealth::Suspect`] (questionable but plausibly repairable), or
//! [`EdgeHealth::Dead`] (data unusable), with a confidence score and the
//! evidence that led there. The quarantine-and-repair layer in `stq-core`
//! consumes the report.

use std::collections::BTreeMap;

use crate::form::FormStore;
use crate::{EdgeIdx, Time};

/// The auditor's classification of one monitored edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeHealth {
    /// No evidence against the edge.
    Healthy,
    /// Implicated by conservation violations or duplicate timestamps;
    /// repair (un-flip, dedup) may restore it exactly.
    Suspect,
    /// Hard invariant broken or dead-sensor signature; the data cannot be
    /// trusted at any point in the horizon.
    Dead,
}

/// One piece of evidence against an edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Evidence {
    /// A direction's timestamp log runs backwards.
    NonMonotone {
        /// Which direction is out of order.
        forward: bool,
    },
    /// `pairs` adjacent exact-duplicate timestamps across both directions.
    DuplicateTimestamps {
        /// Number of adjacent equal pairs.
        pairs: usize,
    },
    /// The edge lies on the boundary of a component whose recorded
    /// population went negative.
    Conservation {
        /// The violated component.
        component: usize,
        /// How far below zero the recorded population dipped.
        deficit: f64,
    },
    /// The edge's longest silent gap dwarfs its typical spacing.
    SilentGap {
        /// Longest gap between consecutive events (horizon-clamped).
        max_gap: f64,
        /// Median inter-event gap.
        median_gap: f64,
    },
    /// The edge logged nothing while sibling boundary edges were busy.
    SilentSibling {
        /// Events on the busiest sibling edge.
        busiest_sibling: usize,
    },
}

/// Verdict for one monitored edge.
#[derive(Clone, Debug)]
pub struct EdgeVerdict {
    /// The edge under audit.
    pub edge: EdgeIdx,
    /// Final classification (worst evidence wins).
    pub health: EdgeHealth,
    /// Confidence in the classification, in `[0, 1]`. `Healthy` verdicts
    /// carry confidence 1 minus the strongest (sub-threshold) suspicion.
    pub confidence: f64,
    /// Everything held against the edge.
    pub evidence: Vec<Evidence>,
}

/// A conservation violation on one component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// The component whose recorded population went negative.
    pub component: usize,
    /// Magnitude of the worst dip below zero.
    pub deficit: f64,
    /// When the population first went negative.
    pub at: Time,
}

/// One component of the sampled graph, described by its inward-oriented
/// boundary. `inward_forward = true` means a forward crossing of the edge
/// enters the component. The caller must *not* include the exterior
/// component: its boundary contains unmonitored entry ramps, so the
/// outside world is not conserved from monitored data.
#[derive(Clone, Debug)]
pub struct ComponentSpec {
    /// Component id (matching `SampledGraph::component_of` in `stq-core`).
    pub id: usize,
    /// Boundary edges with inward orientation flags.
    pub boundary: Vec<(EdgeIdx, bool)>,
}

/// Tuning knobs for the detectors. Defaults are deliberately conservative:
/// false positives cost coverage, false negatives cost soundness, so the
/// silence detectors lean toward flagging.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Minimum adjacent duplicate-timestamp pairs before an edge is
    /// suspected of duplication (a lone tie can be a legitimate collision).
    pub dup_pairs_threshold: usize,
    /// Silent-gap trigger: `max_gap > gap_factor × median_gap`.
    pub gap_factor: f64,
    /// Minimum events on an edge before the gap-ratio test is meaningful.
    pub min_events_for_gap: usize,
    /// Events on the busiest sibling edge required before a completely
    /// silent edge is presumed dead rather than merely quiet.
    pub silent_sibling_min: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            dup_pairs_threshold: 2,
            gap_factor: 8.0,
            min_events_for_gap: 6,
            silent_sibling_min: 8,
        }
    }
}

/// The full audit result: per-edge verdicts plus the raw violations.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    verdicts: BTreeMap<EdgeIdx, EdgeVerdict>,
    violations: Vec<Violation>,
}

impl AuditReport {
    /// Classification of `edge` (`Healthy` if it was not audited).
    pub fn health(&self, edge: EdgeIdx) -> EdgeHealth {
        self.verdicts.get(&edge).map_or(EdgeHealth::Healthy, |v| v.health)
    }

    /// Confidence of the verdict on `edge` (1.0 for unaudited edges).
    pub fn confidence(&self, edge: EdgeIdx) -> f64 {
        self.verdicts.get(&edge).map_or(1.0, |v| v.confidence)
    }

    /// Full verdict for `edge`, if it was audited.
    pub fn verdict(&self, edge: EdgeIdx) -> Option<&EdgeVerdict> {
        self.verdicts.get(&edge)
    }

    /// All verdicts, ordered by edge id.
    pub fn verdicts(&self) -> impl Iterator<Item = &EdgeVerdict> {
        self.verdicts.values()
    }

    /// Edges classified `Suspect` or `Dead`, ordered by edge id.
    pub fn flagged(&self) -> Vec<EdgeIdx> {
        self.verdicts.values().filter(|v| v.health != EdgeHealth::Healthy).map(|v| v.edge).collect()
    }

    /// Edges classified `Dead`.
    pub fn dead(&self) -> Vec<EdgeIdx> {
        self.verdicts.values().filter(|v| v.health == EdgeHealth::Dead).map(|v| v.edge).collect()
    }

    /// Edges classified `Suspect`.
    pub fn suspects(&self) -> Vec<EdgeIdx> {
        self.verdicts.values().filter(|v| v.health == EdgeHealth::Suspect).map(|v| v.edge).collect()
    }

    /// The conservation violations found, one per violated component.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when every audited edge came back `Healthy`.
    pub fn is_clean(&self) -> bool {
        self.verdicts.values().all(|v| v.health == EdgeHealth::Healthy)
    }
}

/// Runs the full audit.
///
/// `monitored` lists every edge carrying a sensor (local checks run on all
/// of them); `components` describes the non-exterior components of the
/// sampled graph with inward-oriented boundaries (conservation and sibling
/// checks run per component); `horizon` is the observation window.
pub fn audit(
    store: &FormStore,
    monitored: &[EdgeIdx],
    components: &[ComponentSpec],
    horizon: (Time, Time),
    cfg: &AuditConfig,
) -> AuditReport {
    let mut evidence: BTreeMap<EdgeIdx, Vec<Evidence>> = BTreeMap::new();
    for &e in monitored {
        evidence.entry(e).or_default();
    }

    // 1. Local hard invariants.
    for &e in monitored {
        let form = store.form(e);
        for forward in [true, false] {
            if !form.is_monotone(forward) {
                evidence.get_mut(&e).unwrap().push(Evidence::NonMonotone { forward });
            }
        }
        let pairs =
            duplicate_pairs(form.timestamps(true)) + duplicate_pairs(form.timestamps(false));
        if pairs >= cfg.dup_pairs_threshold {
            evidence.get_mut(&e).unwrap().push(Evidence::DuplicateTimestamps { pairs });
        }
    }

    // 2. Conservation scan per component.
    let mut violations = Vec::new();
    for comp in components {
        if let Some(v) = conservation_violation(store, comp) {
            let share = v.deficit / comp.boundary.len().max(1) as f64;
            for &(e, _) in &comp.boundary {
                if let Some(ev) = evidence.get_mut(&e) {
                    ev.push(Evidence::Conservation { component: comp.id, deficit: share });
                }
            }
            violations.push(v);
        }
    }

    // 3. Silence statistics: gap ratio on busy edges, sibling contrast on
    // completely silent ones.
    let mut busiest: BTreeMap<EdgeIdx, usize> = BTreeMap::new();
    for comp in components {
        let max_events = comp
            .boundary
            .iter()
            .map(|&(e, _)| store.form(e).total(true) + store.form(e).total(false))
            .max()
            .unwrap_or(0);
        for &(e, _) in &comp.boundary {
            let b = busiest.entry(e).or_insert(0);
            *b = (*b).max(max_events);
        }
    }
    for &e in monitored {
        let form = store.form(e);
        let n = form.total(true) + form.total(false);
        if n == 0 {
            let sib = busiest.get(&e).copied().unwrap_or(0);
            if sib >= cfg.silent_sibling_min {
                evidence
                    .get_mut(&e)
                    .unwrap()
                    .push(Evidence::SilentSibling { busiest_sibling: sib });
            }
            continue;
        }
        if n >= cfg.min_events_for_gap {
            if let Some((max_gap, median_gap)) = gap_stats(form, horizon) {
                if median_gap > 0.0 && max_gap > cfg.gap_factor * median_gap {
                    evidence.get_mut(&e).unwrap().push(Evidence::SilentGap { max_gap, median_gap });
                }
            }
        }
    }

    // 4. Classify.
    let verdicts =
        evidence.into_iter().map(|(edge, evs)| (edge, classify(edge, evs, cfg))).collect();
    AuditReport { verdicts, violations }
}

/// Signed-prefix conservation scan of one component. Returns the worst dip
/// below zero, if any. Ties are resolved entries-first: an object entering
/// at the same instant another leaves must not read as a dip.
pub fn conservation_violation(store: &FormStore, comp: &ComponentSpec) -> Option<Violation> {
    let mut events: Vec<(Time, i32)> = Vec::new();
    for &(e, inward_forward) in &comp.boundary {
        let form = store.form(e);
        for &t in form.timestamps(inward_forward) {
            events.push((t, 1));
        }
        for &t in form.timestamps(!inward_forward) {
            events.push((t, -1));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1)));
    let mut pop = 0i64;
    let mut worst = 0i64;
    let mut at = None;
    for (t, sign) in events {
        pop += sign as i64;
        if pop < worst {
            worst = pop;
            at = Some(t);
        }
    }
    at.map(|t| Violation { component: comp.id, deficit: -worst as f64, at: t })
}

fn duplicate_pairs(seq: &[Time]) -> usize {
    let mut sorted = seq.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted.windows(2).filter(|w| w[0] == w[1]).count()
}

/// (max gap, median gap) over the merged event stream of both directions,
/// including the leading/trailing silences against the horizon ends.
fn gap_stats(form: &crate::TrackingForm, horizon: (Time, Time)) -> Option<(f64, f64)> {
    let mut ts: Vec<Time> =
        form.timestamps(true).iter().chain(form.timestamps(false)).copied().collect();
    if ts.is_empty() {
        return None;
    }
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (t0, t1) = horizon;
    let mut gaps = Vec::with_capacity(ts.len() + 1);
    gaps.push((ts[0] - t0).max(0.0));
    gaps.extend(ts.windows(2).map(|w| w[1] - w[0]));
    gaps.push((t1 - ts[ts.len() - 1]).max(0.0));
    let max_gap = gaps.iter().cloned().fold(0.0, f64::max);
    // Median over *positive* gaps: duplicated timestamps create zero gaps
    // that would drag the median to 0 and make every edge look gappy.
    let mut positive: Vec<f64> = gaps.into_iter().filter(|&g| g > 0.0).collect();
    if positive.is_empty() {
        return None;
    }
    positive.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = positive[positive.len() / 2];
    Some((max_gap, median))
}

fn classify(edge: EdgeIdx, evidence: Vec<Evidence>, cfg: &AuditConfig) -> EdgeVerdict {
    let mut health = EdgeHealth::Healthy;
    let mut confidence = 0.0f64;
    let mut kinds = 0u32;
    let mut conservation_weight = 0.0;
    for ev in &evidence {
        let (h, c) = match *ev {
            // Time running backwards is impossible for a working sensor, and
            // unknown jitter cannot be inverted: the data is unusable.
            Evidence::NonMonotone { .. } => (EdgeHealth::Dead, 1.0),
            // Duplicates are repairable by dedup: suspect, not dead.
            Evidence::DuplicateTimestamps { pairs } => {
                (EdgeHealth::Suspect, (0.4 + 0.15 * pairs as f64).min(1.0))
            }
            Evidence::Conservation { deficit, .. } => {
                conservation_weight += deficit;
                (EdgeHealth::Suspect, 1.0 - (-conservation_weight).exp())
            }
            Evidence::SilentGap { max_gap, median_gap } => {
                let ratio = max_gap / median_gap.max(1e-12);
                (EdgeHealth::Dead, (1.0 - cfg.gap_factor / ratio).clamp(0.3, 0.95))
            }
            Evidence::SilentSibling { .. } => (EdgeHealth::Dead, 0.6),
        };
        if h > health {
            health = h;
        }
        confidence = confidence.max(c);
        kinds |= 1
            << match ev {
                Evidence::NonMonotone { .. } => 0,
                Evidence::DuplicateTimestamps { .. } => 1,
                Evidence::Conservation { .. } => 2,
                Evidence::SilentGap { .. } | Evidence::SilentSibling { .. } => 3,
            };
    }
    // Independent detector families agreeing is stronger than either alone.
    if kinds.count_ones() >= 2 {
        confidence = (confidence + 0.2).min(1.0);
    }
    if health == EdgeHealth::Healthy {
        confidence = 1.0 - confidence;
    }
    EdgeVerdict { edge, health, confidence, evidence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackingForm;

    /// One component, boundary `e0` (forward = inward) and `e1`
    /// (forward = outward). Traffic: objects enter via `e0.fwd` and exit
    /// via `e1.fwd`.
    fn two_edge_component() -> ComponentSpec {
        ComponentSpec { id: 0, boundary: vec![(0, true), (1, false)] }
    }

    fn clean_store(crossings: usize) -> FormStore {
        let mut s = FormStore::new(2);
        for k in 0..crossings {
            let t = k as f64 * 10.0;
            s.record(0, true, t + 1.0); // enter
            s.record(1, true, t + 2.0); // exit
        }
        s
    }

    fn run(store: &FormStore) -> AuditReport {
        audit(store, &[0, 1], &[two_edge_component()], (0.0, 100.0), &AuditConfig::default())
    }

    #[test]
    fn clean_traffic_is_clean() {
        let report = run(&clean_store(8));
        assert!(report.is_clean(), "verdicts: {:?}", report.verdicts().collect::<Vec<_>>());
        assert!(report.violations().is_empty());
        assert_eq!(report.health(0), EdgeHealth::Healthy);
        assert!(report.confidence(0) > 0.9);
    }

    #[test]
    fn flipped_edge_violates_conservation() {
        let mut s = clean_store(8);
        // Flip edge 0: all entries recorded as exits.
        let flipped = TrackingForm::from_sequences(
            s.form(0).timestamps(false).to_vec(),
            s.form(0).timestamps(true).to_vec(),
        );
        s.set_form(0, flipped);
        let report = run(&s);
        assert!(!report.violations().is_empty());
        assert_ne!(report.health(0), EdgeHealth::Healthy);
        assert_ne!(report.health(1), EdgeHealth::Healthy, "whole boundary implicated");
    }

    #[test]
    fn dead_edge_detected_by_conservation_and_silence() {
        let mut s = clean_store(8);
        s.set_form(0, TrackingForm::new()); // sensor 0 dead: exits unmatched
        let report = run(&s);
        assert!(!report.violations().is_empty());
        assert_eq!(report.health(0), EdgeHealth::Dead, "silent while sibling busy");
        assert!(report.confidence(0) >= 0.6);
    }

    #[test]
    fn non_monotone_log_is_dead_with_certainty() {
        let mut s = clean_store(8);
        let mut fwd = s.form(0).timestamps(true).to_vec();
        fwd.swap(2, 5);
        let skewed = TrackingForm::from_sequences(fwd, s.form(0).timestamps(false).to_vec());
        s.set_form(0, skewed);
        let report = run(&s);
        assert_eq!(report.health(0), EdgeHealth::Dead);
        assert_eq!(report.confidence(0), 1.0);
        assert!(report
            .verdict(0)
            .unwrap()
            .evidence
            .iter()
            .any(|e| matches!(e, Evidence::NonMonotone { .. })));
    }

    #[test]
    fn duplicate_timestamps_are_suspect() {
        let mut s = clean_store(8);
        let mut fwd = Vec::new();
        for &t in s.form(0).timestamps(true) {
            fwd.push(t);
            fwd.push(t); // every event logged twice
        }
        s.set_form(0, TrackingForm::from_sequences(fwd, s.form(0).timestamps(false).to_vec()));
        let report = run(&s);
        assert_eq!(report.health(0), EdgeHealth::Suspect);
        assert!(report
            .verdict(0)
            .unwrap()
            .evidence
            .iter()
            .any(|e| matches!(e, Evidence::DuplicateTimestamps { pairs } if *pairs >= 8)));
    }

    #[test]
    fn dead_window_detected_by_gap() {
        // Sensor alive 0–30 and 470–500 of a 500 s horizon: huge mid gap.
        let mut s = FormStore::new(2);
        let e0: Vec<f64> =
            (0..6).map(|k| k as f64 * 5.0).chain((0..6).map(|k| 470.0 + k as f64 * 5.0)).collect();
        s.set_form(0, TrackingForm::from_sequences(e0, Vec::new()));
        // Edge 1 keeps steady traffic the whole horizon so only edge 0 gaps.
        let exits: Vec<f64> = (0..6)
            .map(|k| k as f64 * 5.0 + 1.0)
            .chain((0..40).map(|k| 41.0 + k as f64 * 10.0))
            .chain((0..6).map(|k| 471.0 + k as f64 * 5.0))
            .collect();
        let entries: Vec<f64> = (0..40).map(|k| 40.0 + k as f64 * 10.0).collect();
        s.set_form(1, TrackingForm::from_sequences(exits, entries));
        let report =
            audit(&s, &[0, 1], &[two_edge_component()], (0.0, 500.0), &AuditConfig::default());
        assert_eq!(report.health(0), EdgeHealth::Dead);
        assert!(report
            .verdict(0)
            .unwrap()
            .evidence
            .iter()
            .any(|e| matches!(e, Evidence::SilentGap { .. })));
    }

    #[test]
    fn simultaneous_entry_exit_is_not_a_dip() {
        let mut s = FormStore::new(2);
        s.record(0, true, 5.0); // an object enters at t = 5...
        s.record(1, true, 5.0); // ...and another exits at exactly t = 5
        let comp = two_edge_component();
        // Entry-first tie ordering: population never dips negative.
        assert!(conservation_violation(&s, &comp).is_none());
    }
}
