//! Differentially private count sources.
//!
//! The paper defers formal privacy guarantees to Ghosh et al. \[20\]
//! ("Differentially Private Range Counting in Planar Graphs for Spatial
//! Sensing", INFOCOM 2020), noting that "one can extend our method using
//! methods from \[20\] to include privacy guarantees" (§4.1). This module
//! implements that extension's core mechanism: per-edge Laplace noise on the
//! directed cumulative counts, calibrated to the sensitivity of a single
//! crossing event.
//!
//! One object's trajectory touches each *directed* edge count at most
//! `max_crossings_per_edge` times, so adding `Laplace(Δ/ε)` noise with
//! `Δ = max_crossings_per_edge` to every directed cumulative count makes
//! each per-edge release ε-differentially private in the single-crossing
//! neighbouring model; a boundary query then aggregates noisy releases and
//! its error grows as `O(√|∂Q| · Δ/ε)` — the classic accuracy/privacy
//! trade-off, surfaced by [`PrivateCounts::expected_query_sd`].
//!
//! Noise is drawn *once per (edge, direction, query timestamp bucket)* and
//! memoized via a deterministic pseudo-random function keyed on the store's
//! seed, so repeated identical queries see identical noise (no averaging
//! attack across repeats of the same release).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::form::CountSource;
use crate::{EdgeIdx, Time};

/// An ε-differentially-private view over any [`CountSource`].
pub struct PrivateCounts<S> {
    inner: S,
    epsilon: f64,
    sensitivity: f64,
    seed: u64,
    /// Temporal release granularity: queries within the same bucket reuse
    /// the same noise draw (coarser buckets = fewer releases = less total
    /// privacy loss under composition).
    bucket: Time,
    cache: RefCell<HashMap<(EdgeIdx, bool, i64), f64>>,
}

impl<S: CountSource> PrivateCounts<S> {
    /// Wraps `inner` with Laplace noise of scale `sensitivity / epsilon`.
    ///
    /// # Panics
    /// If `epsilon`, `sensitivity` or `bucket` are not strictly positive.
    pub fn new(inner: S, epsilon: f64, sensitivity: f64, bucket: Time, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(bucket > 0.0, "bucket must be positive");
        PrivateCounts {
            inner,
            epsilon,
            sensitivity,
            seed,
            bucket,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The Laplace scale `b = Δ/ε`.
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Standard deviation of the noise added to a query over a boundary of
    /// `boundary_len` edges: each edge contributes two independent Laplace
    /// draws (one per direction), each with variance `2b²`.
    pub fn expected_query_sd(&self, boundary_len: usize) -> f64 {
        let b = self.noise_scale();
        (2.0 * boundary_len as f64 * 2.0 * b * b).sqrt()
    }

    /// The wrapped exact source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Deterministic Laplace draw for a release key.
    fn laplace_for(&self, edge: EdgeIdx, forward: bool, bucket_idx: i64) -> f64 {
        let key = (edge, forward, bucket_idx);
        if let Some(&n) = self.cache.borrow().get(&key) {
            return n;
        }
        // SplitMix64-style keyed hashing to a uniform in (0,1).
        let mut z = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(edge as u64 + 1))
            .wrapping_add((forward as u64) << 17)
            .wrapping_add((bucket_idx as u64).wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let u = ((z >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0 - 1e-12) - 0.5;
        // Inverse-CDF Laplace: -b · sgn(u) · ln(1 − 2|u|).
        let b = self.noise_scale();
        let noise = -b * u.signum() * (1.0 - 2.0 * u.abs()).ln();
        self.cache.borrow_mut().insert(key, noise);
        noise
    }
}

impl<S: CountSource> CountSource for PrivateCounts<S> {
    fn count_until(&self, edge: EdgeIdx, forward: bool, t: Time) -> f64 {
        let bucket_idx = (t / self.bucket).floor() as i64;
        let exact = self.inner.count_until(edge, forward, t);
        (exact + self.laplace_for(edge, forward, bucket_idx)).max(0.0)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::FormStore;
    use crate::query::{snapshot_count, BoundaryEdge};

    fn busy_store() -> FormStore {
        let mut s = FormStore::new(8);
        for e in 0..8 {
            for i in 0..200 {
                s.record(e, i % 2 == 0, i as f64);
            }
        }
        s
    }

    #[test]
    fn noise_is_deterministic_per_release() {
        let p = PrivateCounts::new(busy_store(), 1.0, 1.0, 10.0, 42);
        let exact = busy_store();
        // Same bucket (50..60): identical noise draw on both probes.
        let n_a = p.count_until(3, true, 55.0) - exact.count_until(3, true, 55.0);
        let n_b = p.count_until(3, true, 57.0) - exact.count_until(3, true, 57.0);
        assert!((n_a - n_b).abs() < 1e-12, "same release bucket must reuse the noise draw");
        // Repeating the same probe is also stable (no averaging attack).
        let again = p.count_until(3, true, 55.0) - exact.count_until(3, true, 55.0);
        assert!((n_a - again).abs() < 1e-12);
        // A different bucket draws fresh noise.
        let n_c = p.count_until(3, true, 65.0) - exact.count_until(3, true, 65.0);
        assert_ne!(n_a, n_c);
    }

    #[test]
    fn noise_magnitude_scales_with_epsilon() {
        let loose = PrivateCounts::new(busy_store(), 10.0, 1.0, 10.0, 7);
        let tight = PrivateCounts::new(busy_store(), 0.1, 1.0, 10.0, 7);
        let exact = busy_store();
        let mut err_loose = 0.0;
        let mut err_tight = 0.0;
        for e in 0..8 {
            for t in [30.0, 90.0, 150.0] {
                err_loose += (loose.count_until(e, true, t) - exact.count_until(e, true, t)).abs();
                err_tight += (tight.count_until(e, true, t) - exact.count_until(e, true, t)).abs();
            }
        }
        assert!(err_tight > err_loose * 5.0, "tight={err_tight} loose={err_loose}");
        assert_eq!(tight.noise_scale(), 10.0);
        assert_eq!(loose.noise_scale(), 0.1);
    }

    #[test]
    fn boundary_query_error_tracks_prediction() {
        let p = PrivateCounts::new(busy_store(), 1.0, 1.0, 10.0, 3);
        let boundary: Vec<BoundaryEdge> = (0..8).map(|e| BoundaryEdge::new(e, true)).collect();
        let exact = snapshot_count(p.inner(), &boundary, 120.0);
        let noisy = snapshot_count(&p, &boundary, 120.0);
        let sd = p.expected_query_sd(boundary.len());
        assert!(sd > 0.0);
        // 6 sigma bound: flaky only with probability ~1e-8.
        assert!((noisy - exact).abs() < 6.0 * sd, "|{noisy} - {exact}| vs sd {sd}");
    }

    #[test]
    fn counts_never_negative() {
        let empty = FormStore::new(4);
        let p = PrivateCounts::new(empty, 0.5, 1.0, 10.0, 11);
        for e in 0..4 {
            for t in [0.0, 10.0, 100.0] {
                assert!(p.count_until(e, true, t) >= 0.0);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PrivateCounts::new(busy_store(), 1.0, 1.0, 10.0, 1);
        let b = PrivateCounts::new(busy_store(), 1.0, 1.0, 10.0, 2);
        let va = a.count_until(0, true, 25.0);
        let vb = b.count_until(0, true, 25.0);
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_rejected() {
        let _ = PrivateCounts::new(FormStore::new(1), 0.0, 1.0, 10.0, 1);
    }
}
