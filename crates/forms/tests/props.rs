//! Property tests: the identifier-free tracking forms agree with the
//! identifier-based oracle on randomly generated movement histories.

use proptest::prelude::*;
use stq_forms::form::CountSource;
use stq_forms::{
    snapshot_count, transient_count, BoundaryEdge, FormStore, OracleTracker, PrivateCounts,
};

/// A random movement history on a ring of `cells` junction cells, where cell
/// `i` borders cell `i+1 mod cells` through edge `i` (forward = towards the
/// higher cell). Objects hop to adjacent cells at integer times.
#[derive(Clone, Debug)]
struct RingWorld {
    cells: usize,
    /// Per object: starting cell and a sequence of ±1 moves.
    objects: Vec<(usize, Vec<bool>)>,
}

fn ring_world() -> impl Strategy<Value = RingWorld> {
    (3usize..10)
        .prop_flat_map(|cells| {
            let objs = proptest::collection::vec(
                (0..cells, proptest::collection::vec(any::<bool>(), 0..30)),
                1..8,
            );
            (Just(cells), objs)
        })
        .prop_map(|(cells, objects)| RingWorld { cells, objects })
}

/// Replays the world into a form store and an oracle.
fn replay(w: &RingWorld) -> (FormStore, OracleTracker) {
    let mut events: Vec<(f64, usize, bool)> = Vec::new(); // (t, edge, forward)
    let mut oracle = OracleTracker::new();
    for (oid, (start, moves)) in w.objects.iter().enumerate() {
        let mut cell = *start;
        oracle.record_arrival(oid as u64, cell, 0.0);
        for (step, &up) in moves.iter().enumerate() {
            let t = (step + 1) as f64;
            let next = if up { (cell + 1) % w.cells } else { (cell + w.cells - 1) % w.cells };
            // Crossing edge between cell and next: edge i sits between cell
            // i and i+1; moving up from cell c crosses edge c (forward),
            // moving down from c crosses edge c-1 (backward).
            let (edge, forward) =
                if up { (cell, true) } else { ((cell + w.cells - 1) % w.cells, false) };
            events.push((t, edge, forward));
            oracle.record_arrival(oid as u64, next, t);
            cell = next;
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut store = FormStore::new(w.cells);
    for (t, e, fwd) in events {
        store.record(e, fwd, t);
    }
    (store, oracle)
}

/// Boundary of the contiguous region `[lo, hi)` of ring cells (`lo < hi`,
/// not the whole ring): edge `lo−1` inward-forward, edge `hi−1`
/// inward-backward.
fn region_boundary(w: &RingWorld, lo: usize, hi: usize) -> Vec<BoundaryEdge> {
    vec![
        BoundaryEdge::new((lo + w.cells - 1) % w.cells, true),
        BoundaryEdge::new((hi + w.cells - 1) % w.cells, false),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The paper's central exactness claim, randomized: snapshot via forms
    /// equals the oracle's distinct count, for any region, any time, any
    /// movement pattern — objects that started inside are visible because
    /// the probe subtracts the t=0 population (all objects placed at t=0
    /// count as "already inside" and the test accounts for them).
    #[test]
    fn forms_equal_oracle_population_change(w in ring_world(), lo in 0usize..8, span in 1usize..5,
                                            probe in 0usize..30) {
        let lo = lo % w.cells;
        let span = span.min(w.cells - 1);
        let hi = lo + span;
        let inside = |j: usize| {
            let j = j % w.cells;
            (lo..hi).contains(&j) || (lo..hi).contains(&(j + w.cells))
        };
        let (store, oracle) = replay(&w);
        let boundary = region_boundary(&w, lo, hi % w.cells);
        let t = probe as f64 + 0.5;
        // Forms see the *change* since t=0 (objects were placed, not walked
        // in); oracle sees absolute population.
        let initial = oracle.snapshot_count(&inside, 0.0) as f64;
        let formed = snapshot_count(&store, &boundary, t);
        let truth = oracle.snapshot_count(&inside, t) as f64;
        prop_assert!((formed + initial - truth).abs() < 1e-9,
            "forms {formed} + initial {initial} != oracle {truth}");
    }

    #[test]
    fn transient_equals_population_difference(w in ring_world(), lo in 0usize..8,
                                              a in 0usize..15, b in 15usize..31) {
        let lo = lo % w.cells;
        let hi = lo + 1;
        let inside = |j: usize| j % w.cells == lo;
        let (store, oracle) = replay(&w);
        let boundary = region_boundary(&w, lo, hi % w.cells);
        let (t0, t1) = (a as f64 + 0.5, b as f64 + 0.5);
        let formed = transient_count(&store, &boundary, t0, t1);
        let truth = oracle.transient_count(&inside, t0, t1) as f64;
        prop_assert!((formed - truth).abs() < 1e-9);
    }

    #[test]
    fn count_window_additivity(w in ring_world(), e in 0usize..8,
                               t1 in 0.0f64..10.0, dt1 in 0.0f64..10.0, dt2 in 0.0f64..10.0) {
        let (store, _) = replay(&w);
        let e = e % w.cells;
        let (a, b, c) = (t1, t1 + dt1, t1 + dt1 + dt2);
        for fwd in [true, false] {
            let ab = store.count_between(e, fwd, a, b);
            let bc = store.count_between(e, fwd, b, c);
            let ac = store.count_between(e, fwd, a, c);
            prop_assert!((ab + bc - ac).abs() < 1e-9);
        }
    }

    #[test]
    fn counts_monotone_in_time(w in ring_world(), e in 0usize..8) {
        let (store, _) = replay(&w);
        let e = e % w.cells;
        let mut prev = -1.0;
        for k in 0..40 {
            let c = store.count_until(e, true, k as f64);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    #[test]
    fn private_counts_bounded_noise(w in ring_world(), eps in 0.5f64..5.0, seed in 0u64..100) {
        let (store, _) = replay(&w);
        let cells = w.cells;
        let exact = replay(&w).0;
        let p = PrivateCounts::new(store, eps, 1.0, 5.0, seed);
        for e in 0..cells {
            for t in [3.0, 17.0, 29.0] {
                let noisy = p.count_until(e, true, t);
                let clean = exact.count_until(e, true, t);
                // Laplace tail: 40b bound fails with probability e^-40.
                prop_assert!((noisy - clean).abs() <= 40.0 / eps + 1e-9);
                prop_assert!(noisy >= 0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Integrity-audit properties. The worlds here start every object in a
// "depot" cell 0 that is excluded from the audit — it plays the exterior
// component's role (unknown initial population), so every audited cell
// begins empty and the 1-form conservation law holds exactly.
// ---------------------------------------------------------------------------

use stq_forms::{audit, AuditConfig, ComponentSpec, Evidence, TrackingForm};

/// A depot random walk: objects start in cell 0 and move ±1 per step with
/// per-object time jitter, so no two crossings collide exactly.
#[derive(Clone, Debug)]
struct DepotWalk {
    cells: usize,
    moves: Vec<Vec<bool>>,
}

fn depot_walk() -> impl Strategy<Value = DepotWalk> {
    (4usize..10)
        .prop_flat_map(|cells| {
            let moves =
                proptest::collection::vec(proptest::collection::vec(any::<bool>(), 0..40), 1..8);
            (Just(cells), moves)
        })
        .prop_map(|(cells, moves)| DepotWalk { cells, moves })
}

fn walk_store(w: &DepotWalk) -> FormStore {
    let mut store = FormStore::new(w.cells);
    let mut events: Vec<(f64, usize, bool)> = Vec::new();
    for (oid, moves) in w.moves.iter().enumerate() {
        let mut cell = 0usize;
        for (step, &up) in moves.iter().enumerate() {
            let t = (step + 1) as f64 + oid as f64 / 64.0;
            let (edge, forward) =
                if up { (cell, true) } else { ((cell + w.cells - 1) % w.cells, false) };
            events.push((t, edge, forward));
            cell = if up { (cell + 1) % w.cells } else { (cell + w.cells - 1) % w.cells };
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (t, e, fwd) in events {
        store.record(e, fwd, t);
    }
    store
}

/// Components for cells `1..cells` (cell 0 is the unaudited depot). Cell
/// `i` is entered by forward crossings of edge `i-1` and backward crossings
/// of edge `i`.
fn ring_components(cells: usize) -> Vec<ComponentSpec> {
    (1..cells).map(|i| ComponentSpec { id: i, boundary: vec![(i - 1, true), (i, false)] }).collect()
}

/// A deterministic tour world for targeted corruption: each of `objects`
/// objects leaves the depot and walks the full ring once (every edge
/// crossed forward exactly once per object, jittered per object).
fn tour_store(cells: usize, objects: usize) -> FormStore {
    let mut store = FormStore::new(cells);
    for edge in 0..cells {
        for o in 0..objects {
            store.record(edge, true, (edge + 1) as f64 + o as f64 / 64.0);
        }
    }
    store
}

fn hard_evidence(ev: &Evidence) -> bool {
    !matches!(ev, Evidence::SilentGap { .. } | Evidence::SilentSibling { .. })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fault-free ingestion never produces hard evidence: physically
    /// realizable movement conserves every audited component, per-edge
    /// logs are monotone, and jittered times never duplicate. (Silence
    /// heuristics may still fire on quiet edges — they cost coverage,
    /// never allege corruption.)
    #[test]
    fn clean_walks_produce_no_hard_evidence(w in depot_walk()) {
        let store = walk_store(&w);
        let monitored: Vec<usize> = (0..w.cells).collect();
        let comps = ring_components(w.cells);
        let horizon = (0.0, 42.0);
        let report = audit(&store, &monitored, &comps, horizon, &AuditConfig::default());
        prop_assert!(report.violations().is_empty(),
            "clean movement must conserve: {:?}", report.violations());
        for v in report.verdicts() {
            prop_assert!(v.evidence.iter().all(|e| !hard_evidence(e)),
                "edge {} holds hard evidence {:?} on clean data", v.edge, v.evidence);
        }
    }

    /// Killing one interior edge's sensor always breaks conservation on the
    /// cell behind it: the tour's exit event arrives with no recorded
    /// entry, the running population dips negative, and the dead edge is
    /// flagged. (The depot-border edge `cells-1` is excluded: deaths there
    /// are only visible to the unaudited exterior, exactly like the real
    /// deployment's entry ramps.)
    #[test]
    fn dead_interior_edge_is_always_flagged(cells in 4usize..10, objects in 1usize..6,
                                            pick in 0usize..64) {
        let edge = pick % (cells - 1);
        let mut store = tour_store(cells, objects);
        store.set_form(edge, TrackingForm::new());
        let monitored: Vec<usize> = (0..cells).collect();
        let report = audit(&store, &monitored, &ring_components(cells),
                           (0.0, cells as f64 + 1.0), &AuditConfig::default());
        prop_assert!(!report.violations().is_empty(), "a silent entry edge must break conservation");
        prop_assert!(report.flagged().contains(&edge), "dead edge {edge} not flagged");
    }

    /// Flipping one interior edge's polarity turns its recorded entries
    /// into exits: the cell behind it goes negative immediately and the
    /// flipped edge is flagged.
    #[test]
    fn flipped_interior_edge_is_always_flagged(cells in 4usize..10, objects in 1usize..6,
                                               pick in 0usize..64) {
        let edge = pick % (cells - 1);
        let mut store = tour_store(cells, objects);
        let form = store.form(edge);
        let swapped = TrackingForm::from_sequences(
            form.timestamps(false).to_vec(),
            form.timestamps(true).to_vec(),
        );
        store.set_form(edge, swapped);
        let report = audit(&store, &monitored_all(cells), &ring_components(cells),
                           (0.0, cells as f64 + 1.0), &AuditConfig::default());
        prop_assert!(!report.violations().is_empty(), "a flipped edge must break conservation");
        prop_assert!(report.flagged().contains(&edge), "flipped edge {edge} not flagged");
    }

    /// A clock running backwards (non-monotone log) is a hard local
    /// invariant: flagged on any edge, no conservation argument needed.
    #[test]
    fn skewed_edge_is_always_flagged(cells in 4usize..10, objects in 2usize..6,
                                     pick in 0usize..64) {
        let edge = pick % cells;
        let mut store = tour_store(cells, objects);
        let mut rev: Vec<f64> = store.form(edge).timestamps(true).to_vec();
        rev.reverse();
        store.set_form(edge, TrackingForm::from_sequences(rev, Vec::new()));
        let report = audit(&store, &monitored_all(cells), &ring_components(cells),
                           (0.0, cells as f64 + 1.0), &AuditConfig::default());
        prop_assert!(report.flagged().contains(&edge), "skewed edge {edge} not flagged");
        let v = report.verdict(edge).unwrap();
        prop_assert!(v.evidence.iter().any(|e| matches!(e, Evidence::NonMonotone { .. })));
    }

    /// A duplicating sensor doubles every timestamp: at least two exact
    /// duplicate pairs appear and the edge is flagged.
    #[test]
    fn duplicating_edge_is_always_flagged(cells in 4usize..10, objects in 2usize..6,
                                          pick in 0usize..64) {
        let edge = pick % cells;
        let mut store = tour_store(cells, objects);
        let doubled: Vec<f64> = store.form(edge)
            .timestamps(true)
            .iter()
            .flat_map(|&t| [t, t])
            .collect();
        store.set_form(edge, TrackingForm::from_sequences(doubled, Vec::new()));
        let report = audit(&store, &monitored_all(cells), &ring_components(cells),
                           (0.0, cells as f64 + 1.0), &AuditConfig::default());
        prop_assert!(report.flagged().contains(&edge), "duplicating edge {edge} not flagged");
        let v = report.verdict(edge).unwrap();
        prop_assert!(v.evidence.iter().any(|e| matches!(e, Evidence::DuplicateTimestamps { .. })));
    }
}

fn monitored_all(cells: usize) -> Vec<usize> {
    (0..cells).collect()
}
