//! # stq-bench
//!
//! The experiment harness reproducing every figure of the paper's §5.
//!
//! Each `fig*` binary regenerates one figure's series as plain-text tables:
//! medians with P25–P75 bands over several seeds, exactly the statistic the
//! paper plots (§5.1.1). The binaries share this library: one "paper-scale"
//! scenario, one selector-method enumeration, and one parallel runner.
//!
//! Absolute numbers differ from the paper (synthetic city and fleet instead
//! of Beijing + T-Drive/Geolife; a laptop instead of a 48-core Xeon); the
//! *shapes* — orderings, crossovers, plateaus — are the reproduction target.

use std::collections::HashSet;

use stq_baseline::BaselineIndex;
use stq_core::prelude::*;
use stq_core::query::QueryRegion;
use stq_sampling::SamplingMethod;

/// One robust summary of repeated measurements (paper §5.1.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// The 50th percentile.
    pub median: f64,
    /// The 25th percentile.
    pub p25: f64,
    /// The 75th percentile.
    pub p75: f64,
    /// Number of finite samples summarized.
    pub n: usize,
}

/// Computes median and quartiles; returns default for empty input.
pub fn stats(values: &[f64]) -> Stats {
    if values.is_empty() {
        return Stats::default();
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return Stats::default();
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
        }
    };
    Stats { median: q(0.5), p25: q(0.25), p75: q(0.75), n: v.len() }
}

/// Prints one experiment table: rows = x-axis values, columns = series.
pub fn print_table(title: &str, xlabel: &str, xs: &[f64], series: &[(String, Vec<Stats>)]) {
    println!("\n## {title}");
    print!("{xlabel:>12}");
    for (label, _) in series {
        print!(" | {label:>24}");
    }
    println!();
    print!("{:->12}", "");
    for _ in series {
        print!("-+-{:->24}", "");
    }
    println!();
    for (i, &x) in xs.iter().enumerate() {
        print!("{x:>12.4}");
        for (_, col) in series {
            let s = col.get(i).copied().unwrap_or_default();
            if s.n == 0 {
                print!(" | {:>24}", "(no data)");
            } else {
                print!(" | {:>8.4} [{:>6.4},{:>6.4}]", s.median, s.p25, s.p75);
            }
        }
        println!();
    }
}

/// The method axis of the figures: the five oblivious sampling strategies,
/// the query-adaptive submodular method, and the Euler-histogram baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// A query-oblivious sampling strategy (§4.3).
    Sampling(SamplingMethod),
    /// Query-adaptive submodular maximization (§4.4).
    Submodular,
    /// The Euler-histogram + face-sampling baseline (§5.1.2).
    Baseline,
}

impl Method {
    /// All methods, in the order the paper's legends list them.
    pub fn all() -> Vec<Method> {
        let mut v: Vec<Method> = SamplingMethod::ALL.iter().map(|&m| Method::Sampling(m)).collect();
        v.push(Method::Submodular);
        v.push(Method::Baseline);
        v
    }

    /// Human-readable legend label.
    pub fn label(&self) -> String {
        match self {
            Method::Sampling(m) => m.label().to_string(),
            Method::Submodular => "submodular".into(),
            Method::Baseline => "baseline".into(),
        }
    }
}

/// The graph-size axis of the paper's figures: fractions of the sensing
/// graph's sensors (§5.2 sweeps 0.4%–51.2% in doublings).
pub const GRAPH_SIZES: [f64; 8] = [0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512];

/// The query-area axis (fraction of the total sensing area); the paper fixes
/// 1.08% for size sweeps and varies area elsewhere.
pub const QUERY_AREAS: [f64; 6] = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16];

/// Default fixed query area for graph-size sweeps (≈ the paper's 1.08%).
pub const FIXED_QUERY_AREA: f64 = 0.0108;

/// Default fixed graph size for query-area sweeps (the paper's 6%).
pub const FIXED_GRAPH_SIZE: f64 = 0.06;

/// Temporal window for *static* interval queries. The paper's 7-day windows
/// on multi-year taxi data keep many objects inside for the whole interval;
/// our synthetic objects wander continuously, so a window of this length
/// (relative to a 10 000 s horizon) plays the same role — long enough to be
/// a real interval, short enough that regions retain occupants throughout.
pub const STATIC_WINDOW: f64 = 150.0;

/// Paper-scale scenario used by every figure binary.
pub fn paper_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 900,
        drop: 0.18,
        ramps: 12,
        mix: WorkloadMix { random_waypoint: 140, commuter: 140, transit: 60 },
        // Slow vehicles with long dwell times: a trip takes ~1 min and the
        // object then parks for ~4 min, so static-interval queries (objects
        // present for a whole window) have non-trivial answers, like the
        // parked-taxi regimes of T-Drive.
        trajectory: TrajectoryConfig {
            speed: 5.0,
            pause: 240.0,
            duration: 10_000.0,
            exit_probability: 0.05,
        },
        seed,
    })
}

/// A per-method evaluator: either a sampled graph or the baseline index.
pub enum Evaluator {
    /// A sampled sensing graph queried through the framework.
    Graph(SampledGraph),
    /// The baseline index queried through its own estimators.
    Baseline(BaselineIndex),
}

/// Builds the evaluator for `method` at sensor fraction `size` (seeded).
///
/// `historical` feeds the submodular method: the paper's premise for
/// query-adaptive selection is that "the expected query regions are known a
/// priori" (§4.4) — the evaluation workload's regions (or regions from the
/// same distribution) *are* that prior, exactly like §5.1.5's "100 query
/// regions chosen uniformly as the historical data". Other methods ignore it.
pub fn build_evaluator(
    s: &Scenario,
    method: Method,
    size: f64,
    seed: u64,
    historical: &[Vec<usize>],
) -> Evaluator {
    match method {
        Method::Sampling(sm) => {
            let cands = s.sensing.sensor_candidates();
            let m = ((cands.len() as f64 * size).round() as usize).clamp(3, cands.len());
            let ids = stq_sampling::sample(sm, &cands, m, seed);
            let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
            Evaluator::Graph(SampledGraph::from_sensors(
                &s.sensing,
                &faces,
                Connectivity::Triangulation,
            ))
        }
        Method::Submodular => {
            let own: Vec<Vec<usize>>;
            let hist = if historical.is_empty() {
                own = s.historical_regions(100, FIXED_QUERY_AREA, seed ^ 0xabc);
                &own
            } else {
                historical
            };
            let budget = (s.sensing.num_edges() as f64 * size).max(4.0);
            Evaluator::Graph(SampledGraph::from_submodular(&s.sensing, hist, budget))
        }
        Method::Baseline => {
            let cells: Vec<usize> = s.sensing.road().junctions().collect();
            let bucket = s.config.trajectory.duration / 4096.0;
            Evaluator::Baseline(BaselineIndex::build(&cells, &s.trajectories, size, bucket, seed))
        }
    }
}

/// Extracts historical junction sets from a query workload (for the
/// submodular prior).
pub fn regions_of(queries: &[(QueryRegion, f64, f64)]) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|(q, _, _)| {
            let mut v: Vec<usize> = q.junctions.iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// One query's evaluation through an [`Evaluator`].
pub struct EvalResult {
    /// The estimated count.
    pub value: f64,
    /// Whether the evaluator could not cover the region at all.
    pub miss: bool,
    /// Sensors contacted to answer.
    pub nodes_accessed: usize,
    /// Monitored links integrated over (0 for the baseline).
    pub edges_accessed: usize,
}

/// Evaluates one query (lower-bound approximation).
pub fn evaluate(s: &Scenario, ev: &Evaluator, q: &QueryRegion, kind: QueryKind) -> EvalResult {
    match ev {
        Evaluator::Graph(g) => {
            let out = answer(&s.sensing, g, &s.tracked.store, q, kind, Approximation::Lower);
            EvalResult {
                value: out.value,
                miss: out.miss,
                nodes_accessed: out.nodes_accessed,
                edges_accessed: out.edges_accessed,
            }
        }
        Evaluator::Baseline(b) => {
            let region: HashSet<usize> = q.junctions.iter().copied().collect();
            let value = match kind {
                QueryKind::Snapshot(t) => b.snapshot(&region, t),
                QueryKind::Static(t0, t1) => b.static_interval(&region, t0, t1),
                QueryKind::Transient(t0, t1) => b.transient(&region, t0, t1),
            };
            let nodes = b.nodes_accessed(&region);
            EvalResult { value, miss: nodes == 0, nodes_accessed: nodes, edges_accessed: 0 }
        }
    }
}

/// Relative errors of a method over a query set (misses count as error 1.0,
/// the natural penalty for "answered 0 of a non-zero truth"; zero-truth
/// queries are skipped, §5.1.4).
pub fn relative_errors(
    s: &Scenario,
    ev: &Evaluator,
    queries: &[(QueryRegion, f64, f64)],
    kind_of: impl Fn(f64, f64) -> QueryKind,
) -> Vec<f64> {
    let mut errs = Vec::new();
    for (q, t0, t1) in queries {
        let kind = kind_of(*t0, *t1);
        let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
        if truth.abs() < 1e-12 {
            continue;
        }
        let r = evaluate(s, ev, q, kind);
        errs.push((truth - r.value).abs() / truth.abs());
    }
    errs
}

/// Runs `jobs` closures on worker threads (scoped), preserving output order.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *results[i].lock() = Some(f(i));
            });
        }
    })
    .expect("worker panicked");
    results.into_iter().map(|m| m.into_inner().expect("job completed")).collect()
}

/// Seeds used for repetition (the paper repeats 50×; we trade repetitions
/// for runtime and report the band).
pub const SEEDS: [u64; 5] = [11, 23, 37, 51, 77];

/// Error sweep over graph sizes at a fixed query workload: one column of
/// stats per method. `queries(s, si)` supplies the per-scenario workload;
/// the submodular method receives those regions as its a-priori knowledge.
pub fn sweep_graph_sizes(
    scenarios: &[Scenario],
    methods: &[Method],
    sizes: &[f64],
    queries: impl Fn(&Scenario, usize) -> Vec<(QueryRegion, f64, f64)> + Sync,
    kind_of: impl Fn(f64, f64) -> QueryKind + Sync + Copy,
) -> Vec<(String, Vec<Stats>)> {
    parallel_map(methods.len(), |mi| {
        let method = methods[mi];
        let col: Vec<Stats> = sizes
            .iter()
            .map(|&size| {
                let mut errs = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    let qs = queries(s, si);
                    let hist = regions_of(&qs);
                    let ev = build_evaluator(s, method, size, SEEDS[si] ^ 0x51, &hist);
                    errs.extend(relative_errors(s, &ev, &qs, kind_of));
                }
                stats(&errs)
            })
            .collect();
        (method.label(), col)
    })
}

/// Error sweep over query areas at a fixed graph size.
pub fn sweep_query_areas(
    scenarios: &[Scenario],
    methods: &[Method],
    areas: &[f64],
    graph_size: f64,
    queries: impl Fn(&Scenario, usize, f64) -> Vec<(QueryRegion, f64, f64)> + Sync,
    kind_of: impl Fn(f64, f64) -> QueryKind + Sync + Copy,
) -> Vec<(String, Vec<Stats>)> {
    parallel_map(methods.len(), |mi| {
        let method = methods[mi];
        // One evaluator per scenario for the oblivious methods (they cannot
        // adapt to the workload anyway). The query-adaptive submodular
        // method instead rebuilds per area: its premise is knowing the
        // expected query regions, which differ per sweep point.
        let shared_evs: Vec<Evaluator> = scenarios
            .iter()
            .enumerate()
            .map(|(si, s)| build_evaluator(s, method, graph_size, SEEDS[si] ^ 0x51, &[]))
            .collect();
        let col: Vec<Stats> = areas
            .iter()
            .map(|&area| {
                let mut errs = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    let qs = queries(s, si, area);
                    if method == Method::Submodular {
                        let hist = regions_of(&qs);
                        let ev = build_evaluator(s, method, graph_size, SEEDS[si] ^ 0x51, &hist);
                        errs.extend(relative_errors(s, &ev, &qs, kind_of));
                    } else {
                        errs.extend(relative_errors(s, &shared_evs[si], &qs, kind_of));
                    }
                }
                stats(&errs)
            })
            .collect();
        (method.label(), col)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_quartiles() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.n, 5);
        assert_eq!(stats(&[]).n, 0);
        // NaNs are dropped.
        let s2 = stats(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s2.n, 2);
    }

    #[test]
    fn parallel_map_order_preserved() {
        let out = parallel_map(37, |i| i * i);
        assert_eq!(out.len(), 37);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn evaluator_builds_for_every_method() {
        let s = Scenario::build(ScenarioConfig {
            junctions: 120,
            mix: WorkloadMix { random_waypoint: 10, commuter: 5, transit: 5 },
            ..Default::default()
        });
        let queries = s.make_queries(5, 0.1, 1_000.0, 3);
        for method in Method::all() {
            let ev = build_evaluator(&s, method, 0.2, 7, &[]);
            for (q, t0, _) in &queries {
                let r = evaluate(&s, &ev, q, QueryKind::Snapshot(*t0));
                assert!(r.value.is_finite(), "{method:?}");
            }
            let errs = relative_errors(&s, &ev, &queries, |t0, _| QueryKind::Snapshot(t0));
            for e in errs {
                assert!(e >= 0.0);
            }
        }
    }
}
