//! Write-path sweep of the sharded runtime: columnar batched ingest and
//! load-aware shard rebalancing. Three parts:
//!
//! (a) hotspot skew — the same 1M-object / 10M-crossing stream (80% of the
//! traffic on 64 hot edges that all start on shard 0) routed by the static
//! `ModuloMap` vs the migrating `LoadAwareMap`; reports events/sec and the
//! per-shard load imbalance (`max/mean − 1`), asserting the load-aware map
//! lands at most half the modulo imbalance;
//!
//! (b) batch-size scaling — durable ingest at batch sizes 1/64/256/1024,
//! showing the group-commit effect (one WAL frame + one sync per batch);
//!
//! (c) migration-then-crash-then-recover — durable load-aware ingest with
//! scheduled mid-stream kill -9s after migrations have moved edges, digest-
//! compared against an unkilled run of the same configuration, with every
//! post-recovery answer bracket-checked against a synchronous oracle. Both
//! the digest-mismatch and soundness counters must be zero.
//!
//! Emits `results/BENCH_ingest.json` plus a human-readable table.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin ingest_sweep [-- --quick] [--seed N]
//! ```
//!
//! `--seed` re-keys the kill draws, so a CI matrix over seeds exercises
//! different crash cuts against the same assertions.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_core::tracker::Crossing;
use stq_forms::FormStore;
use stq_runtime::{
    DurabilityConfig, DurabilityFaultPlan, QuerySpec, RebalanceConfig, Runtime, RuntimeConfig,
    ServedAnswer,
};

const NUM_SHARDS: usize = 4;
const HOT_EDGES: usize = 64;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stq-ingest-sweep-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create bench wal dir");
    d
}

/// The hotspot-skewed object population: event `i` belongs to object
/// `i % objects`; 80% of the objects are commuters pinned to one of
/// [`HOT_EDGES`] hot edges that all start on shard 0 under the modulo
/// assignment (`edge % NUM_SHARDS == 0`), the rest wander the whole graph.
/// Pure function of `i`, so identical streams can be regenerated chunk by
/// chunk without materializing 10M crossings.
struct Skew {
    num_edges: usize,
    objects: usize,
    hot: Vec<usize>,
}

impl Skew {
    fn new(num_edges: usize, objects: usize) -> Self {
        let hot: Vec<usize> = (0..num_edges).step_by(NUM_SHARDS).take(HOT_EDGES).collect();
        assert_eq!(hot.len(), HOT_EDGES, "graph too small for the hotspot population");
        Skew { num_edges, objects, hot }
    }

    fn event(&self, i: usize) -> Crossing {
        let o = i % self.objects;
        let edge = if o % 5 != 0 {
            self.hot[o % HOT_EDGES]
        } else {
            (o.wrapping_mul(7919) + (i / self.objects).wrapping_mul(31)) % self.num_edges
        };
        Crossing { time: 10_000.0 + i as f64 * 1e-3, edge, forward: i % 3 != 0 }
    }
}

/// `max / mean − 1` over the per-shard routed-event counts.
fn imbalance(loads: &[u64]) -> f64 {
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean > 0.0 {
        max / mean - 1.0
    } else {
        0.0
    }
}

struct IngestOutcome {
    elapsed: f64,
    loads: Vec<u64>,
    map_epoch: u64,
    rebalances: u64,
    edges_migrated: u64,
    wal_appends: u64,
    wal_group_commits: u64,
}

/// Streams `n` skewed events through one runtime in `batch`-sized
/// `ingest_batch` calls (`batch == 1` uses the per-event path), flushes,
/// and reports throughput plus routing/durability accounting.
fn ingest_once(
    s: &Scenario,
    g: &SampledGraph,
    skew: &Skew,
    n: usize,
    batch: usize,
    cfg: RuntimeConfig,
) -> IngestOutcome {
    let rt = Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg);
    let mut buf = Vec::with_capacity(batch);
    let t0 = Instant::now();
    let mut i = 0usize;
    while i < n {
        if batch == 1 {
            rt.ingest(skew.event(i)).expect("ingest");
            i += 1;
            continue;
        }
        buf.clear();
        let k = batch.min(n - i);
        buf.extend((i..i + k).map(|j| skew.event(j)));
        let report = rt.ingest_batch(&buf);
        assert_eq!(report.rejected, 0, "the synthetic stream is well-formed");
        i += k;
    }
    rt.flush_ingest();
    let elapsed = t0.elapsed().as_secs_f64();
    let loads = rt.shard_loads();
    let report = rt.metrics().report();
    let out = IngestOutcome {
        elapsed,
        loads,
        map_epoch: report.map_epoch,
        rebalances: report.rebalances,
        edges_migrated: report.edges_migrated,
        wal_appends: report.wal_appends,
        wal_group_commits: report.wal_group_commits,
    };
    rt.shutdown();
    out
}

/// Queries exercising both the pre-recorded era and the ingested one.
fn specs(s: &Scenario, n: usize, seed: u64) -> Vec<QuerySpec> {
    s.make_queries(n, 0.15, 1_500.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            [
                QueryKind::Snapshot(t0),
                QueryKind::Snapshot(10_050.0),
                QueryKind::Transient(t0, 10_100.0),
                QueryKind::Static(t1, 10_080.0),
            ]
            .into_iter()
            .map(move |kind| QuerySpec {
                region: region.clone(),
                kind,
                approx: Approximation::Lower,
                deadline: None,
            })
        })
        .collect()
}

fn sync_value(s: &Scenario, g: &SampledGraph, oracle: &FormStore, spec: &QuerySpec) -> Option<f64> {
    let plan = QueryPlan::compile(&s.sensing, g, &spec.region, spec.approx);
    if plan.miss {
        return None;
    }
    Some(evaluate(oracle, &plan.boundary, spec.kind))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let argv: Vec<String> = std::env::args().collect();
    let chaos_seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(SEEDS[0]);
    let (junctions, sim_objects, objects, skew_events, scale_events, crash_events, query_regions) =
        if quick {
            (150, 45, 50_000, 600_000, 120_000, 40_000, 6)
        } else {
            (400, 150, 1_000_000, 10_000_000, 1_000_000, 200_000, 12)
        };

    let scenario = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: sim_objects / 3,
            commuter: sim_objects / 3,
            transit: sim_objects - 2 * (sim_objects / 3),
        },
        seed: SEEDS[0],
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        SEEDS[0] ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
    let ne = scenario.sensing.num_edges();
    let skew = Skew::new(ne, objects);
    println!(
        "# ingest_sweep — {junctions} junctions, {ne} edges, {NUM_SHARDS} shards, \
         {objects} objects, {HOT_EDGES} hot edges"
    );

    // ---- Part A: hotspot skew, modulo vs load-aware ---------------------
    let base = RuntimeConfig { num_shards: NUM_SHARDS, ..RuntimeConfig::default() };
    let balanced = RuntimeConfig {
        num_shards: NUM_SHARDS,
        rebalance: Some(RebalanceConfig::default()),
        ..RuntimeConfig::default()
    };
    let om = ingest_once(&scenario, &sampled, &skew, skew_events, 1024, base.clone());
    let la = ingest_once(&scenario, &sampled, &skew, skew_events, 1024, balanced.clone());
    let (im_mod, im_la) = (imbalance(&om.loads), imbalance(&la.loads));
    println!(
        "\nhotspot skew ({skew_events} events, batch 1024):\n\
         {:>10} | {:>10} | {:>10} | {:>6} | {:>10} | {:>6} | shard loads\n\
         {:>10} | {:>10.0} | {:>10.3} | {:>6} | {:>10} | {:>6} | {:?}\n\
         {:>10} | {:>10.0} | {:>10.3} | {:>6} | {:>10} | {:>6} | {:?}",
        "map",
        "events/s",
        "imbalance",
        "epoch",
        "rebalances",
        "moved",
        "modulo",
        skew_events as f64 / om.elapsed,
        im_mod,
        om.map_epoch,
        om.rebalances,
        om.edges_migrated,
        om.loads,
        "loadaware",
        skew_events as f64 / la.elapsed,
        im_la,
        la.map_epoch,
        la.rebalances,
        la.edges_migrated,
        la.loads,
    );
    assert!(la.map_epoch >= 1 && la.rebalances >= 1, "the skew must trigger migrations");
    assert_eq!(om.map_epoch, 0, "the modulo map never migrates");
    assert!(
        im_la <= 0.5 * im_mod,
        "load-aware imbalance {im_la:.3} must be at most half of modulo {im_mod:.3}"
    );

    // ---- Part B: batch-size scaling under durability --------------------
    println!(
        "\ndurable batch scaling ({scale_events} events):\n{:>6} | {:>10} | {:>11} | {:>13}",
        "batch", "events/s", "wal appends", "group commits"
    );
    let mut scale_rows = String::new();
    for &batch in &[1usize, 64, 256, 1024] {
        let dir = tmpdir(&format!("scale-{batch}"));
        let cfg = RuntimeConfig {
            num_shards: NUM_SHARDS,
            durability: Some(DurabilityConfig::new(dir.clone())),
            ..RuntimeConfig::default()
        };
        let o = ingest_once(&scenario, &sampled, &skew, scale_events, batch, cfg);
        let _ = std::fs::remove_dir_all(&dir);
        let evps = scale_events as f64 / o.elapsed;
        println!("{batch:>6} | {evps:>10.0} | {:>11} | {:>13}", o.wal_appends, o.wal_group_commits);
        assert_eq!(o.wal_appends, scale_events as u64, "every event must reach the WAL");
        if batch > 1 {
            assert!(o.wal_group_commits > 0, "batched ingest must group-commit");
        }
        let _ = write!(
            scale_rows,
            "{}    {{\"batch\": {batch}, \"events\": {scale_events}, \"events_per_sec\": {evps:.0}, \
             \"wal_appends\": {}, \"wal_group_commits\": {}}}",
            if scale_rows.is_empty() { "" } else { ",\n" },
            o.wal_appends,
            o.wal_group_commits
        );
    }

    // ---- Part C: migration, then crash, then recovery -------------------
    // Reference and killed runs share the stream, the batch chunking, and
    // the rebalance configuration, so their migration schedules coincide
    // (planning is keyed on routed-event counts, not wall clock); the flush
    // after every batch serializes recovery before the next migration
    // window. The killed run must reproduce the reference digests exactly.
    let batch = 256usize;
    let run_crash = |kills: &[(usize, u64)], tag: &str| -> (Vec<u64>, u64, u64, u64) {
        let dir = tmpdir(tag);
        let cfg = RuntimeConfig {
            num_shards: NUM_SHARDS,
            rebalance: Some(RebalanceConfig::default()),
            durability: Some(DurabilityConfig {
                wal_dir: dir.clone(),
                snapshot_every: 1024,
                sync_every: 32,
                faults: if kills.is_empty() {
                    DurabilityFaultPlan::none()
                } else {
                    DurabilityFaultPlan::killing(chaos_seed ^ 0xd00d, kills)
                },
            }),
            ..RuntimeConfig::default()
        };
        let rt =
            Runtime::new(scenario.sensing.clone(), sampled.clone(), &scenario.tracked.store, cfg);
        let mut buf = Vec::with_capacity(batch);
        let mut i = 0usize;
        while i < crash_events {
            buf.clear();
            let k = batch.min(crash_events - i);
            buf.extend((i..i + k).map(|j| skew.event(j)));
            rt.ingest_batch(&buf);
            rt.flush_ingest();
            i += k;
        }
        let digests = rt.shard_digests();
        let report = rt.metrics().report();
        let out = (digests, report.rebalances, report.shard_respawns, report.map_epoch);

        if !kills.is_empty() {
            // Bracket-check every served answer against the synchronous
            // oracle: recovery must stay invisible to soundness.
            let mut oracle = scenario.tracked.store.clone();
            for j in 0..crash_events {
                let c = skew.event(j);
                oracle.record(c.edge, c.forward, c.time);
            }
            let mut unsound = 0usize;
            let queries = specs(&scenario, query_regions, SEEDS[0] ^ 0x71);
            for spec in &queries {
                let served: ServedAnswer = rt.query(spec.clone());
                match sync_value(&scenario, &sampled, &oracle, spec) {
                    None => unsound += usize::from(!served.miss),
                    Some(exact) => {
                        let ok = !served.miss
                            && served.lower <= exact + 1e-9
                            && exact <= served.upper + 1e-9;
                        unsound += usize::from(!ok);
                    }
                }
            }
            assert_eq!(unsound, 0, "every post-recovery answer must bracket the oracle");
        }
        rt.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        out
    };

    let (want, ref_rebalances, _, _) = run_crash(&[], "crash-ref");
    assert!(ref_rebalances >= 1, "the crash cell's stream must trigger migrations");
    // Kill the initial hotspot shard shortly after the first migration
    // window, and later a shard the migrations moved hot edges *onto*
    // (post-migration each shard sees roughly a quarter of the stream, so
    // an eighth of the total is safely inside its per-shard sequence).
    let kills = [(0usize, 3_000u64), (1usize, (crash_events as u64) / 8)];
    let (got, rebalances, respawns, map_epoch) = run_crash(&kills, "crash-kill");
    let digest_mismatches = want.iter().zip(&got).filter(|(a, b)| a != b).count();
    println!(
        "\nmigration+crash+recovery ({crash_events} events, kills {kills:?}): \
         rebalances {rebalances}, respawns {respawns}, epoch {map_epoch}, \
         digest mismatches {digest_mismatches}, soundness violations 0"
    );
    assert!(rebalances >= 1, "migrations must have happened before and after the kills");
    assert!(respawns >= kills.len() as u64, "every scheduled kill must trigger a respawn");
    assert_eq!(digest_mismatches, 0, "recovered shards must match the unkilled reference");

    let json = format!(
        "{{\n  \"bench\": \"ingest_sweep\",\n  \"quick\": {quick},\n  \"chaos_seed\": {chaos_seed},\n  \
         \"objects\": {objects},\n  \"events\": {skew_events},\n  \"scenario\": \
         {{\"junctions\": {junctions}, \"edges\": {ne}, \"shards\": {NUM_SHARDS}, \
         \"hot_edges\": {HOT_EDGES}, \"seed\": {}}},\n  \
         \"skew\": {{\"events\": {skew_events}, \"batch\": 1024, \
         \"modulo_events_per_sec\": {:.0}, \"loadaware_events_per_sec\": {:.0}, \
         \"modulo_imbalance\": {im_mod:.4}, \"loadaware_imbalance\": {im_la:.4}, \
         \"modulo_loads\": {:?}, \"loadaware_loads\": {:?}, \
         \"map_epoch\": {}, \"rebalances\": {}, \"edges_migrated\": {}}},\n  \
         \"batch_scaling\": [\n{scale_rows}\n  ],\n  \
         \"crash\": {{\"events\": {crash_events}, \"batch\": {batch}, \"kills\": {}, \
         \"rebalances\": {rebalances}, \"respawns\": {respawns}, \"map_epoch\": {map_epoch}, \
         \"digest_mismatches\": {digest_mismatches}, \"soundness_violations\": 0, \
         \"queries\": {}}}\n}}\n",
        SEEDS[0],
        skew_events as f64 / om.elapsed,
        skew_events as f64 / la.elapsed,
        om.loads,
        la.loads,
        la.map_epoch,
        la.rebalances,
        la.edges_migrated,
        kills.len(),
        query_regions * 4,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("\nall gates passed; wrote results/BENCH_ingest.json");
}
