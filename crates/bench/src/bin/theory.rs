//! §4.9 — the theoretical cost model, validated:
//!
//! - unsampled flood cost must fit `α · (A(Q)/A(T)) · |N|` (linear in area),
//! - sampled perimeter cost must grow sub-linearly in area and stay below
//!   the prediction `(A(Q)/A(T)) · m · k · ℓ_G`,
//! - the sensing graph's mean hop length `ℓ_G` should be sub-linear in `|N|`
//!   (logarithmic for small-world-ish graphs).
//!
//! ```sh
//! cargo run --release -p stq-bench --bin theory
//! ```

use stq_bench::*;
use stq_core::cost::{fit_slope, measure_costs, CostModel};
use stq_core::prelude::*;
use stq_core::QueryRegion;
use stq_planar::paths::mean_path_length;

fn main() {
    println!("# §4.9 theoretical cost model — prediction vs measurement");

    // ----------------------------------------------------------------
    // ℓ_G growth with |N|: build cities of increasing size.
    println!("\n## mean hop length ℓ_G vs sensing-graph size");
    println!("{:>10} | {:>10} | {:>8} | {:>12}", "junctions", "sensors", "ℓ_G", "ℓ_G/ln(N)");
    for &n in &[200usize, 400, 800, 1600] {
        let s = Scenario::build(ScenarioConfig {
            junctions: n,
            mix: stq_mobility::trajectory::WorkloadMix {
                random_waypoint: 2,
                commuter: 2,
                transit: 2,
            },
            seed: 7,
            ..Default::default()
        });
        let adj: Vec<Vec<usize>> = s
            .sensing
            .dual_adjacency()
            .iter()
            .map(|nb| nb.iter().filter(|&&(_, _, w)| w < 1e9).map(|&(v, _, _)| v).collect())
            .collect();
        let ell = mean_path_length(&adj, 128, 0xe11);
        let sensors = s.sensing.num_sensors() as f64;
        println!("{n:>10} | {:>10} | {ell:>8.2} | {:>12.2}", sensors as usize, ell / sensors.ln());
    }
    println!("(planar graphs are not small-world: ℓ_G grows like √N, so the");
    println!(" normalized column rises slowly — the paper's `g` is sub-linear, ✓)");

    // ----------------------------------------------------------------
    // Cost vs area on the paper-scale city.
    let s = paper_scenario(SEEDS[0]);
    let cands = s.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        (cands.len() as f64 * FIXED_GRAPH_SIZE) as usize,
        7,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);
    let mut model = CostModel::for_deployment(&s.sensing, &g, 1.0);

    let areas = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32];
    let mut flood_means = Vec::new();
    let mut perim_means = Vec::new();
    for &a in &areas {
        let qs: Vec<QueryRegion> =
            s.make_queries(25, a, 100.0, 0x29).into_iter().map(|(q, _, _)| q).collect();
        let measured = measure_costs(&s.sensing, &g, &qs);
        flood_means
            .push(measured.iter().map(|m| m.flooded as f64).sum::<f64>() / measured.len() as f64);
        perim_means.push(
            measured.iter().map(|m| m.sampled_perimeter as f64).sum::<f64>()
                / measured.len() as f64,
        );
    }
    // Fit α from the flood measurements.
    let slope = fit_slope(areas.as_ref(), &flood_means);
    model.alpha = slope / model.total_sensors as f64;

    println!(
        "\n## cost vs query area (quadtree 6%, m={}, k={:.2}, ℓ_G={:.2}, α={:.2})",
        model.m, model.k, model.ell_g, model.alpha
    );
    println!(
        "{:>10} | {:>14} | {:>14} | {:>16} | {:>16}",
        "area", "flood (meas)", "flood (model)", "perimeter (meas)", "perimeter (bound)"
    );
    for (i, &a) in areas.iter().enumerate() {
        println!(
            "{a:>10.3} | {:>14.1} | {:>14.1} | {:>16.1} | {:>16.1}",
            flood_means[i],
            model.predicted_unsampled(a),
            perim_means[i],
            model.predicted_sampled(a)
        );
    }

    // Growth factors: flooding should scale ~linearly with area (factor ≈
    // area ratio), the sampled perimeter clearly sub-linearly.
    let flood_growth = flood_means[5] / flood_means[0].max(1.0);
    let perim_growth = perim_means[5] / perim_means[0].max(1.0);
    println!(
        "\narea grew 32x → flood grew {flood_growth:.1}x (≈ linear), sampled perimeter grew \
         {perim_growth:.1}x (sub-linear ✓)"
    );
}
