//! Standing-query benchmark: 1k standing subscriptions maintained by count
//! deltas versus re-executing the same 1k regions as snapshot queries every
//! tick, plus a verification pass that pins the two paths **bit-identical**
//! at every tick and across forced re-snapshot epochs. Emits
//! `results/BENCH_standing.json`.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin standing_sweep [-- --quick]
//! ```
//!
//! The interesting regime is many long-lived monitors over a live stream:
//! re-execution pays region dispatch plus a perimeter fold per subscription
//! per tick whether or not anything changed, while the delta path touches
//! only the subscriptions whose boundary an event actually crossed — cost
//! proportional to change, not to the number of watchers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_core::tracker::Crossing;
use stq_runtime::{QuerySpec, Runtime, RuntimeConfig, SubscriptionHandle};

/// Any finite instant past every streamed event: a snapshot there is the
/// live net occupancy a standing bracket tracks.
const T_LATE: f64 = 1.0e12;

struct Setup {
    s: Scenario,
    g: SampledGraph,
    regions: Vec<QueryRegion>,
}

fn setup(junctions: usize, objects: usize, distinct: usize, seed: u64) -> Setup {
    let s = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed,
        ..Default::default()
    });
    let cands = s.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        seed ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);

    // Distinct resolvable regions; subscriptions cycle over them (many
    // watchers, overlapping footprints — the plan cache absorbs the reuse).
    let mut regions = Vec::new();
    let mut salt = 0u64;
    while regions.len() < distinct && salt < 64 {
        salt += 1;
        for (region, _, _) in s.make_queries(distinct, 0.02, 2_000.0, seed ^ (0xe0 + salt)) {
            // Subscriptions alternate approximations, so both must resolve.
            let resolvable = [Approximation::Lower, Approximation::Upper].iter().all(|&a| {
                let plan = QueryPlan::compile(&s.sensing, &g, &region, a);
                !plan.miss && !plan.boundary.is_empty()
            });
            if !resolvable {
                continue;
            }
            regions.push(region);
            if regions.len() >= distinct {
                break;
            }
        }
    }
    assert!(!regions.is_empty(), "no resolvable regions found");
    Setup { s, g, regions }
}

/// Strictly monotone ingest stream over every sensed edge.
fn stream(num_edges: usize, n: usize) -> Vec<Crossing> {
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.01,
            edge: i % num_edges,
            forward: i % 3 != 0,
        })
        .collect()
}

fn runtime(up: &Setup) -> Runtime {
    let cfg = RuntimeConfig {
        num_shards: 8,
        dispatchers: 8,
        queue_capacity: 64,
        shard_timeout: Duration::from_millis(1_000),
        max_retries: 1,
        ..RuntimeConfig::default()
    };
    Runtime::new(up.s.sensing.clone(), up.g.clone(), &up.s.tracked.store, cfg)
}

/// Registers `n_subs` subscriptions cycling over the distinct regions and
/// returns each handle with the snapshot spec that re-executes it.
fn subscribe_all(rt: &Runtime, up: &Setup, n_subs: usize) -> Vec<(SubscriptionHandle, QuerySpec)> {
    (0..n_subs)
        .map(|i| {
            let region = up.regions[i % up.regions.len()].clone();
            let approx = if i % 2 == 0 { Approximation::Lower } else { Approximation::Upper };
            let h = rt.subscribe(region.clone(), approx).expect("region pre-checked resolvable");
            (h, QuerySpec::new(region, QueryKind::Snapshot(T_LATE), approx))
        })
        .collect()
}

struct Row {
    seed: u64,
    delta_qps: f64,
    reexec_qps: f64,
    speedup: f64,
    deltas_pushed: u64,
    delta_push_p95_us: u64,
    epochs: u64,
    mismatches: u64,
}

fn run_seed(
    seed: u64,
    junctions: usize,
    objects: usize,
    distinct: usize,
    n_subs: usize,
    ticks: usize,
    batch: usize,
) -> Row {
    let up = setup(junctions, objects, distinct, seed);
    let events = stream(up.s.sensing.num_edges(), ticks * batch);

    // ------------------------------------------------------------------
    // Delta path: register once, then just ingest — every bracket stays
    // current without a single query execution.
    let rt = runtime(&up);
    let subs = subscribe_all(&rt, &up, n_subs);
    // Keep the push channels drained so the throughput loop measures the
    // registry, not an unbounded queue growing.
    let start = Instant::now();
    for chunk in events.chunks(batch) {
        for &c in chunk {
            rt.ingest(c).expect("ingest");
        }
        rt.flush_ingest();
        for (h, _) in &subs {
            while h.updates.try_recv().is_ok() {}
        }
    }
    let delta_elapsed = start.elapsed().as_secs_f64();
    let delta_qps = (n_subs * ticks) as f64 / delta_elapsed;
    let report = rt.metrics().report();
    rt.shutdown();

    // ------------------------------------------------------------------
    // Re-execute path: the same stream, but every tick re-runs all
    // subscriptions as snapshot queries through the sharded engine.
    let rt = runtime(&up);
    let specs: Vec<QuerySpec> = subscribe_all(&rt, &up, n_subs)
        .into_iter()
        .map(|(h, spec)| {
            rt.unsubscribe(h.id);
            spec
        })
        .collect();
    let start = Instant::now();
    for chunk in events.chunks(batch) {
        for &c in chunk {
            rt.ingest(c).expect("ingest");
        }
        rt.flush_ingest();
        let pending: Vec<_> = specs.iter().map(|spec| rt.submit(spec.clone())).collect();
        for p in pending {
            std::hint::black_box(p.wait());
        }
    }
    let reexec_elapsed = start.elapsed().as_secs_f64();
    let reexec_qps = (n_subs * ticks) as f64 / reexec_elapsed;
    rt.shutdown();

    // ------------------------------------------------------------------
    // Verification: per tick, every bracket must equal its re-executed
    // snapshot bitwise; a forced re-snapshot epoch per tick must change
    // nothing. Run over the distinct regions (each approximation) — the
    // cycled copies share plans, so this covers every maintained fold.
    let rt = runtime(&up);
    let vsubs = subscribe_all(&rt, &up, (up.regions.len() * 2).min(n_subs));
    let mut mismatches = 0u64;
    for chunk in events.chunks(batch) {
        for &c in chunk {
            rt.ingest(c).expect("ingest");
        }
        rt.flush_ingest();
        for pass in 0..2 {
            if pass == 1 {
                rt.resnapshot_subscriptions();
            }
            for (h, spec) in &vsubs {
                let b = rt.standing_bracket(h.id).expect("live");
                let a = rt.query(spec.clone());
                if b.value.to_bits() != a.value.to_bits()
                    || b.lower.to_bits() != a.lower.to_bits()
                    || b.upper.to_bits() != a.upper.to_bits()
                {
                    mismatches += 1;
                }
            }
        }
    }
    let epochs = rt.subscription_stats().epoch;
    rt.shutdown();

    Row {
        seed,
        delta_qps,
        reexec_qps,
        speedup: delta_qps / reexec_qps.max(1e-9),
        deltas_pushed: report.deltas_pushed,
        delta_push_p95_us: report.delta_push_p95_us,
        epochs,
        mismatches,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (junctions, objects, distinct, n_subs, ticks, batch, nseeds) =
        if quick { (150, 45, 16, 100, 4, 200, 1) } else { (400, 150, 48, 1_000, 8, 400, 3) };

    println!(
        "# standing_sweep — {n_subs} standing queries over {distinct} distinct regions, \
         {ticks} ticks x {batch} events"
    );
    println!(
        "{:<6} | {:>14} | {:>14} | {:>8} | {:>12} | {:>12} | {:>7} | {:>10}",
        "seed",
        "delta q/s",
        "reexec q/s",
        "speedup",
        "deltas",
        "push p95 µs",
        "epochs",
        "mismatches"
    );
    let rows: Vec<Row> = SEEDS[..nseeds]
        .iter()
        .map(|&seed| {
            let r = run_seed(seed, junctions, objects, distinct, n_subs, ticks, batch);
            println!(
                "{:<6} | {:>14.0} | {:>14.0} | {:>7.2}x | {:>12} | {:>12} | {:>7} | {:>10}",
                r.seed,
                r.delta_qps,
                r.reexec_qps,
                r.speedup,
                r.deltas_pushed,
                r.delta_push_p95_us,
                r.epochs,
                r.mismatches
            );
            r
        })
        .collect();

    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    let total_mismatches: u64 = rows.iter().map(|r| r.mismatches).sum();
    println!(
        "\ndelta maintenance over re-execution: min {min_speedup:.2}x across {} seed(s), \
         {total_mismatches} bracket mismatches",
        rows.len()
    );
    assert_eq!(total_mismatches, 0, "delta-maintained brackets diverged from re-execution");
    if !quick {
        assert!(
            min_speedup >= 5.0,
            "delta path must beat re-execution by >= 5x at {n_subs} standing queries \
             (got {min_speedup:.2}x)"
        );
    }

    let mut row_json = String::new();
    for r in &rows {
        let _ = write!(
            row_json,
            "{}    {{\"seed\": {}, \"delta_qps\": {:.1}, \"reexec_qps\": {:.1}, \"speedup\": \
             {:.3}, \"deltas_pushed\": {}, \"delta_push_p95_us\": {}, \"epochs\": {}, \
             \"mismatches\": {}}}",
            if row_json.is_empty() { "" } else { ",\n" },
            r.seed,
            r.delta_qps,
            r.reexec_qps,
            r.speedup,
            r.deltas_pushed,
            r.delta_push_p95_us,
            r.epochs,
            r.mismatches
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"standing_sweep\",\n  \"quick\": {quick},\n  \"scenario\": \
         {{\"junctions\": {junctions}, \"objects\": {objects}}},\n  \"standing\": \
         {{\"subscriptions\": {n_subs}, \"distinct_regions\": {distinct}, \"ticks\": {ticks}, \
         \"events_per_tick\": {batch}}},\n  \"rows\": [\n{row_json}\n  ],\n  \
         \"min_speedup_delta_vs_reexecute\": {min_speedup:.3},\n  \"total_mismatches\": \
         {total_mismatches}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_standing.json", &json).expect("write BENCH_standing.json");
    println!("wrote results/BENCH_standing.json");
}
