//! Headline table — the abstract's claims, measured on this reproduction:
//!
//! > "a relative error of at most 13.8% with 25.6% of sensors while
//! >  achieving a speedup of 3.5×, 69.81% reduction in sensors accessed,
//! >  and a storage reduction of 99.96% compared to finding the exact count."
//!
//! ```sh
//! cargo run --release -p stq-bench --bin headline
//! ```

use std::time::Instant;

use stq_bench::*;
use stq_core::prelude::*;
use stq_forms::CountSource;
use stq_learned::RegressorKind;

fn main() {
    println!("# Headline numbers (paper abstract) — measured on this reproduction");
    let scenarios: Vec<Scenario> = parallel_map(SEEDS.len(), |i| paper_scenario(SEEDS[i]));
    let size = 0.256; // the paper's 25.6% of sensors
    let areas = [0.04, 0.08, 0.16];

    let mut err_submod = Vec::new();
    let mut err_quadtree = Vec::new();
    let mut node_reduction = Vec::new();
    let mut comm_speedups = Vec::new();
    let mut cpu_speedups = Vec::new();
    let mut storage_reduction = Vec::new();

    for (si, s) in scenarios.iter().enumerate() {
        // Error metrics use the paper's fixed ~1.08% query regions; the
        // communication metrics use the mixed larger areas below (tiny
        // regions mostly miss, making reduction ratios degenerate).
        let err_queries = s.make_queries(40, FIXED_QUERY_AREA, 2_000.0, SEEDS[si] ^ 0x90);
        let mut queries = Vec::new();
        for (ai, &area) in areas.iter().enumerate() {
            queries.extend(s.make_queries(15, area, 2_000.0, SEEDS[si] ^ (0x91 + ai as u64)));
        }
        let hist = regions_of(&err_queries);
        let quadtree = build_evaluator(
            s,
            Method::Sampling(stq_sampling::SamplingMethod::QuadTree),
            size,
            SEEDS[si] ^ 0x51,
            &[],
        );
        let submod = build_evaluator(s, Method::Submodular, size, SEEDS[si] ^ 0x51, &hist);
        let Evaluator::Graph(gq) = &quadtree else { unreachable!() };
        let Evaluator::Graph(gs) = &submod else { unreachable!() };
        let unsampled = SampledGraph::unsampled(&s.sensing);

        // Communication topology of the quadtree deployment.
        let links: Vec<(usize, usize)> = gq
            .monitored()
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(e, _)| s.sensing.dual().edge_faces[e])
            .filter(|&(a, b)| a != b)
            .collect();
        let net = stq_net::Network::new(s.sensing.num_faces(), &links);
        let full_links: Vec<(usize, usize)> = (0..s.sensing.num_edges())
            .map(|e| s.sensing.dual().edge_faces[e])
            .filter(|&(a, b)| a != b)
            .collect();
        let full_net = stq_net::Network::new(s.sensing.num_faces(), &full_links);

        for (q, t0, _) in &err_queries {
            let kind = QueryKind::Snapshot(*t0);
            let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
            let oq = answer(&s.sensing, gq, &s.tracked.store, q, kind, Approximation::Lower);
            let os = answer(&s.sensing, gs, &s.tracked.store, q, kind, Approximation::Lower);
            if truth > 0.0 {
                err_quadtree.push((truth - oq.value).abs() / truth);
                err_submod.push((truth - os.value).abs() / truth);
            }
        }
        for (q, t0, _) in &queries {
            let kind = QueryKind::Snapshot(*t0);
            let oq = answer(&s.sensing, gq, &s.tracked.store, q, kind, Approximation::Lower);
            // Sensors accessed: perimeter of the sampled region vs flooding
            // every sensor inside the query rectangle (§2.3, Fig. 11c).
            let flooded = s.sensing.sensors_in_rect(&q.rect);
            if !flooded.is_empty() && !oq.miss {
                node_reduction.push(1.0 - oq.nodes_accessed as f64 / flooded.len() as f64);
                // Simulated in-network cost: walking the sampled perimeter
                // vs flooding the whole region on the full sensing network.
                let plan = QueryPlan::compile(&s.sensing, gq, q, Approximation::Lower);
                let perimeter = s.sensing.boundary_sensors(&plan.boundary);
                if !perimeter.is_empty() {
                    let walk = net.perimeter_traversal(perimeter[0], &perimeter);
                    let flood = full_net.flood(flooded[0], &flooded);
                    if walk.hops > 0 {
                        comm_speedups.push(flood.messages as f64 / walk.messages.max(1) as f64);
                    }
                }
            }
        }

        // CPU time: sampled vs exact evaluation, same queries.
        for (q, t0, t1) in queries.iter().take(20) {
            let kind = QueryKind::Transient(*t0, *t1);
            let time_of = |g: &SampledGraph| {
                let start = Instant::now();
                for _ in 0..8 {
                    std::hint::black_box(answer(
                        &s.sensing,
                        g,
                        &s.tracked.store,
                        q,
                        kind,
                        Approximation::Lower,
                    ));
                }
                start.elapsed().as_secs_f64()
            };
            let t_sampled = time_of(gq);
            let t_exact = time_of(&unsampled);
            if t_sampled > 0.0 {
                cpu_speedups.push(t_exact / t_sampled);
            }
        }

        // Storage: regression models vs explicit timestamp logs.
        let exact_bytes: usize = gq
            .monitored()
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(e, _)| s.tracked.store.form(e).storage_bytes())
            .sum();
        let learned =
            LearnedStore::fit(&s.tracked.store, Some(gq.monitored()), RegressorKind::Linear);
        if exact_bytes > 0 {
            storage_reduction.push(1.0 - learned.storage_bytes() as f64 / exact_bytes as f64);
        }
    }

    let eq = stats(&err_quadtree);
    let es = stats(&err_submod);
    let n = stats(&node_reduction);
    let cs = stats(&comm_speedups);
    let cpu = stats(&cpu_speedups);
    let st = stats(&storage_reduction);
    println!("\n{:<42} | {:>10} | {:>18}", "metric @ 25.6% sensors", "paper", "this reproduction");
    println!("{:-<42}-+-{:->10}-+-{:->18}", "", "", "");
    println!(
        "{:<42} | {:>10} | {:>15.1}%  ",
        "rel. error, submodular (P75)",
        "<= 13.8%",
        100.0 * es.p75
    );
    println!(
        "{:<42} | {:>10} | {:>15.1}%  ",
        "rel. error, quadtree sampling (P75)",
        "-",
        100.0 * eq.p75
    );
    println!(
        "{:<42} | {:>10} | {:>15.1}%  ",
        "sensors-accessed reduction (median)",
        "69.81%",
        100.0 * n.median
    );
    println!(
        "{:<42} | {:>10} | {:>15.1}x  ",
        "in-network message speedup (median)", "3.5x", cs.median
    );
    println!("{:<42} | {:>10} | {:>15.1}x  ", "query CPU speedup (median)", "-", cpu.median);
    println!(
        "{:<42} | {:>10} | {:>15.2}%  ",
        "storage reduction, linear models (median)",
        "99.96%",
        100.0 * st.median
    );
    println!(
        "\nnotes: submodular error median {:.1}% [{:.1}%, {:.1}%] over {} evaluations;",
        100.0 * es.median,
        100.0 * es.p25,
        100.0 * es.p75,
        es.n
    );
    println!(
        "storage reduction is scale-dependent — the paper's multi-year fleet stores ~10⁴ \
         timestamps per edge where this synthetic workload stores ~25, so the constant-size \
         models save {:.1}% here and asymptotically approach the paper's 99.96% as the event \
         count grows.",
        100.0 * st.median
    );
}
