//! Durability and crash-recovery sweep of the supervised `stq-runtime`:
//! (a) WAL ingest overhead — the same crossing stream ingested with
//! durability off vs on at the default snapshot/sync cadence, asserted
//! below 10% — and (b) recovery behaviour vs snapshot interval under
//! scheduled mid-ingest kill -9s: recovery latency, replay volumes,
//! byte-identity of the respawned shards against an unkilled reference
//! run, and bracket soundness of every answer served afterwards. Emits
//! `results/BENCH_recovery.json` plus a human-readable table.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin recovery_sweep [-- --quick] [--seed N]
//! ```
//!
//! `--seed` re-keys the torn-tail fault draws (how many unsynced WAL bytes
//! survive each kill), so a CI matrix over seeds exercises different torn
//! suffixes — including mid-record cuts — against the same assertions.
//!
//! Soundness here is the paper's degradation contract: whatever a crash
//! tears off the WAL tail is re-supplied by the server's redo buffer, so
//! the recovered state is byte-identical (digest-equal) and every served
//! `[lower, upper]` must still bracket a synchronously maintained oracle.
//! Both violation counters must be zero for the run to pass.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_core::tracker::Crossing;
use stq_forms::FormStore;
use stq_runtime::{
    DurabilityConfig, DurabilityFaultPlan, QuerySpec, Runtime, RuntimeConfig, ServedAnswer,
};

const NUM_SHARDS: usize = 4;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stq-recovery-sweep-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create bench wal dir");
    d
}

/// Deterministic post-horizon ingest stream: event `i` crosses edge
/// `i % num_edges` far past everything the scenario pre-recorded, so a
/// plain `FormStore::record` oracle absorbs it monotonically.
fn stream(num_edges: usize, n: usize) -> Vec<Crossing> {
    (0..n)
        .map(|i| Crossing {
            time: 10_000.0 + i as f64 * 0.25,
            edge: i % num_edges,
            forward: i % 3 != 0,
        })
        .collect()
}

fn runtime(s: &Scenario, g: &SampledGraph, cfg: RuntimeConfig) -> Runtime {
    Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg)
}

/// Ingest + flush wall time for the whole stream, one run.
fn ingest_once(
    s: &Scenario,
    g: &SampledGraph,
    events: &[Crossing],
    durability: Option<DurabilityConfig>,
) -> (f64, u64, u64) {
    let rt = runtime(
        s,
        g,
        RuntimeConfig { num_shards: NUM_SHARDS, durability, ..RuntimeConfig::default() },
    );
    let t0 = Instant::now();
    for &c in events {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();
    let elapsed = t0.elapsed().as_secs_f64();
    let report = rt.metrics().report();
    rt.shutdown();
    (elapsed, report.wal_appends, report.snapshots_taken)
}

/// Queries that exercise both the pre-recorded era and the ingested one.
fn specs(s: &Scenario, n: usize, seed: u64) -> Vec<QuerySpec> {
    s.make_queries(n, 0.15, 1_500.0, seed)
        .into_iter()
        .flat_map(|(region, t0, t1)| {
            [
                QueryKind::Snapshot(t0),
                QueryKind::Snapshot(10_500.0),
                QueryKind::Transient(t0, 11_000.0),
                QueryKind::Static(t1, 10_800.0),
            ]
            .into_iter()
            .map(move |kind| QuerySpec {
                region: region.clone(),
                kind,
                approx: Approximation::Lower,
                deadline: None,
            })
        })
        .collect()
}

/// The synchronous oracle over an explicitly maintained store.
fn sync_value(s: &Scenario, g: &SampledGraph, oracle: &FormStore, spec: &QuerySpec) -> Option<f64> {
    let plan = QueryPlan::compile(&s.sensing, g, &spec.region, spec.approx);
    if plan.miss {
        return None;
    }
    Some(evaluate(oracle, &plan.boundary, spec.kind))
}

struct SweepOutcome {
    respawns: u64,
    wal_replayed: u64,
    redo_replayed: u64,
    snapshots: u64,
    recovery_p50_us: u64,
    recovery_max_us: u64,
    digest_mismatches: usize,
    soundness_violations: usize,
    queries: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_sweep_cell(
    s: &Scenario,
    g: &SampledGraph,
    events: &[Crossing],
    oracle: &FormStore,
    reference_digests: &[u64],
    queries: &[QuerySpec],
    snapshot_every: u64,
    kills: &[(usize, u64)],
    chaos_seed: u64,
) -> SweepOutcome {
    let dir = tmpdir(&format!("sweep-{snapshot_every}"));
    let cfg = RuntimeConfig {
        num_shards: NUM_SHARDS,
        durability: Some(DurabilityConfig {
            wal_dir: dir.clone(),
            snapshot_every,
            sync_every: 32,
            faults: DurabilityFaultPlan::killing(chaos_seed ^ 0xd00d, kills),
        }),
        ..RuntimeConfig::default()
    };
    let rt = runtime(s, g, cfg);
    for &c in events {
        rt.ingest(c).expect("ingest");
    }
    rt.flush_ingest();

    let digests = rt.shard_digests();
    let digest_mismatches = digests.iter().zip(reference_digests).filter(|(a, b)| a != b).count();

    let mut soundness_violations = 0usize;
    for spec in queries {
        let served: ServedAnswer = rt.query(spec.clone());
        match sync_value(s, g, oracle, spec) {
            None => {
                if !served.miss {
                    soundness_violations += 1;
                }
            }
            Some(exact) => {
                if served.miss || !(served.lower <= exact + 1e-9 && exact <= served.upper + 1e-9) {
                    soundness_violations += 1;
                }
            }
        }
    }

    let report = rt.metrics().report();
    let recovery = &rt.metrics().recovery_us;
    let out = SweepOutcome {
        respawns: report.shard_respawns,
        wal_replayed: report.wal_replayed,
        redo_replayed: report.redo_replayed,
        snapshots: report.snapshots_taken,
        recovery_p50_us: recovery.quantile_us(0.5),
        recovery_max_us: recovery.quantile_us(1.0),
        digest_mismatches,
        soundness_violations,
        queries: queries.len(),
    };
    rt.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let argv: Vec<String> = std::env::args().collect();
    let chaos_seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(SEEDS[0]);
    let (junctions, objects, overhead_events, sweep_events, query_regions, reps) =
        if quick { (150, 45, 100_000, 3_000, 6, 3) } else { (400, 150, 200_000, 9_000, 12, 5) };

    let scenario = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed: SEEDS[0],
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        SEEDS[0] ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
    let ne = scenario.sensing.num_edges();
    println!("# recovery_sweep — {junctions} junctions, {ne} edges, {NUM_SHARDS} shards");

    // ---- Part A: WAL ingest overhead at the default cadence -------------
    // Interleaved best-of-N on both sides: run-to-run scheduling noise on a
    // ~50 ms measurement dwarfs the per-append cost, so the fair comparison
    // is the best observed wall time of each mode across alternating runs
    // (a warm-up run is discarded first). The overhead often comes out
    // *negative*: a WAL append is a buffered 33-byte write, while an
    // acknowledged durable floor lets the server trim its redo buffer —
    // without durability that buffer retains the entire stream.
    let overhead_stream = stream(ne, overhead_events);
    let wal_dir = tmpdir("overhead");
    let defaults = DurabilityConfig::new(wal_dir.clone());
    let (snapshot_every, sync_every) = (defaults.snapshot_every, defaults.sync_every);
    let _ = ingest_once(&scenario, &sampled, &overhead_stream, None);
    let (mut t_off, mut t_on) = (f64::INFINITY, f64::INFINITY);
    let (mut wal_appends, mut snapshots) = (0, 0);
    for _ in 0..reps {
        t_off = t_off.min(ingest_once(&scenario, &sampled, &overhead_stream, None).0);
        let (t, w, sn) = ingest_once(&scenario, &sampled, &overhead_stream, Some(defaults.clone()));
        t_on = t_on.min(t);
        wal_appends = w;
        snapshots = sn;
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    let overhead_pct = (t_on / t_off - 1.0) * 100.0;
    println!(
        "\nWAL ingest overhead ({overhead_events} events, defaults snapshot={snapshot_every} \
         sync={sync_every}): off {:.1} kev/s, on {:.1} kev/s, overhead {overhead_pct:+.2}% \
         (budget < 10%)",
        overhead_events as f64 / t_off / 1e3,
        overhead_events as f64 / t_on / 1e3,
    );
    assert!(
        overhead_pct < 10.0,
        "WAL ingest overhead {overhead_pct:.2}% exceeds the 10% budget \
         (off {t_off:.4}s vs on {t_on:.4}s)"
    );

    // ---- Part B: recovery vs snapshot interval under scheduled kills ----
    let sweep_stream = stream(ne, sweep_events);
    let mut oracle = scenario.tracked.store.clone();
    for c in &sweep_stream {
        oracle.record(c.edge, c.forward, c.time);
    }
    let queries = specs(&scenario, query_regions, SEEDS[0] ^ 0x71);

    // Unkilled, undurable reference run: its digests are the ground truth
    // the killed-and-recovered runs must reproduce byte-for-byte.
    let rt_ref = runtime(
        &scenario,
        &sampled,
        RuntimeConfig { num_shards: NUM_SHARDS, ..RuntimeConfig::default() },
    );
    for &c in &sweep_stream {
        rt_ref.ingest(c).expect("ingest");
    }
    rt_ref.flush_ingest();
    let reference_digests = rt_ref.shard_digests();
    rt_ref.shutdown();

    // Two kill -9s per cell, mid-stream (per-shard append offsets).
    let per_shard = (sweep_events / NUM_SHARDS) as u64;
    let kills = [(0usize, per_shard / 6), (1usize, per_shard / 3)];

    println!(
        "\n{:>13} | {:>8} | {:>12} | {:>13} | {:>9} | {:>11} | {:>11} | {:>8} | {:>6}",
        "snapshot_every",
        "respawns",
        "wal replayed",
        "redo replayed",
        "snapshots",
        "rec p50 µs",
        "rec max µs",
        "digest≠",
        "unsound"
    );
    let mut json_rows = String::new();
    for &snapshot_every in &[256u64, 1024, 4096] {
        let o = run_sweep_cell(
            &scenario,
            &sampled,
            &sweep_stream,
            &oracle,
            &reference_digests,
            &queries,
            snapshot_every,
            &kills,
            chaos_seed,
        );
        println!(
            "{:>13} | {:>8} | {:>12} | {:>13} | {:>9} | {:>11} | {:>11} | {:>8} | {:>6}",
            snapshot_every,
            o.respawns,
            o.wal_replayed,
            o.redo_replayed,
            o.snapshots,
            o.recovery_p50_us,
            o.recovery_max_us,
            o.digest_mismatches,
            o.soundness_violations
        );
        assert!(o.respawns >= kills.len() as u64, "every scheduled kill must trigger a respawn");
        assert_eq!(
            o.digest_mismatches, 0,
            "recovered shards must be byte-identical to the unkilled reference"
        );
        assert_eq!(o.soundness_violations, 0, "every post-recovery answer must bracket the oracle");
        let _ = write!(
            json_rows,
            "{}    {{\"snapshot_every\": {}, \"events\": {}, \"kills\": {}, \"respawns\": {}, \
             \"wal_replayed\": {}, \"redo_replayed\": {}, \"snapshots\": {}, \
             \"recovery_p50_us\": {}, \"recovery_max_us\": {}, \"queries\": {}, \
             \"digest_mismatches\": {}, \"soundness_violations\": {}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            snapshot_every,
            sweep_events,
            kills.len(),
            o.respawns,
            o.wal_replayed,
            o.redo_replayed,
            o.snapshots,
            o.recovery_p50_us,
            o.recovery_max_us,
            o.queries,
            o.digest_mismatches,
            o.soundness_violations
        );
    }
    println!("\nall cells: digests byte-identical, zero soundness violations");

    let json = format!(
        "{{\n  \"bench\": \"recovery_sweep\",\n  \"quick\": {},\n  \"chaos_seed\": {chaos_seed},\n  \"scenario\": \
         {{\"junctions\": {}, \"objects\": {}, \"edges\": {}, \"shards\": {}, \"seed\": {}}},\n  \
         \"wal_overhead\": {{\"events\": {}, \"reps\": {}, \"snapshot_every\": {snapshot_every}, \
         \"sync_every\": {sync_every}, \"off_secs\": {:.5}, \"on_secs\": {:.5}, \"overhead_pct\": {:.3}, \
         \"budget_pct\": 10.0, \"wal_appends\": {}, \"snapshots\": {}}},\n  \
         \"recovery_cells\": [\n{}\n  ]\n}}\n",
        quick,
        junctions,
        objects,
        ne,
        NUM_SHARDS,
        SEEDS[0],
        overhead_events,
        reps,
        t_off,
        t_on,
        overhead_pct,
        wal_appends,
        snapshots,
        json_rows
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("wrote results/BENCH_recovery.json");
}
