//! Plan/execute split benchmark for the `QueryEngine`: batched execution
//! against cold vs warm plan caches, compared with the scalar
//! recompile-every-query `answer` path, plus a plan-cache hit-rate sweep
//! and the 8-shard runtime serving the same repeated-region workload with
//! the cache on and off. Emits `results/BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin engine_sweep [-- --quick]
//! ```
//!
//! The interesting regime is repeated regions: dashboards and monitors ask
//! the same handful of rectangles over and over with moving time windows.
//! Compiling a plan (region resolution + boundary walk) costs far more
//! than executing it (a `partition_point` fold over the perimeter), so a
//! warm cache turns every query into just the fold — that is where the
//! batched/warm speedup over the scalar path comes from, independent of
//! core count.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_forms::{ColumnarCounts, CountSource};
use stq_runtime::{QuerySpec, Runtime, RuntimeConfig, ServedAnswer};

/// A repeated-region workload: `distinct` resolvable regions, each asked
/// `reps` times with all three query kinds.
struct Workload {
    regions: Vec<(QueryRegion, f64, f64)>,
    /// Flattened (region index, kind) request stream.
    requests: Vec<(usize, QueryKind)>,
}

fn build_workload(s: &Scenario, g: &SampledGraph, distinct: usize, reps: usize) -> Workload {
    let mut regions = Vec::new();
    let mut salt = 0u64;
    while regions.len() < distinct && salt < 64 {
        salt += 1;
        for (region, t0, t1) in s.make_queries(distinct, 0.02, 2_000.0, SEEDS[0] ^ (0xe0 + salt)) {
            let plan = QueryPlan::compile(&s.sensing, g, &region, Approximation::Lower);
            if plan.miss || plan.boundary.is_empty() {
                continue;
            }
            regions.push((region, t0, t1));
            if regions.len() >= distinct {
                break;
            }
        }
    }
    assert!(!regions.is_empty(), "no resolvable regions found");
    let mut requests = Vec::new();
    for _ in 0..reps {
        for (i, (_, t0, t1)) in regions.iter().enumerate() {
            for kind in [
                QueryKind::Snapshot(*t0),
                QueryKind::Transient(*t0, *t1),
                QueryKind::Static(*t0, *t1),
            ] {
                requests.push((i, kind));
            }
        }
    }
    Workload { regions, requests }
}

/// Scalar baseline: recompile + fold per request, exactly what callers did
/// before the engine existed.
fn time_scalar(s: &Scenario, g: &SampledGraph, w: &Workload) -> (f64, f64) {
    let start = Instant::now();
    let mut sum = 0.0;
    for &(i, kind) in &w.requests {
        let o =
            answer(&s.sensing, g, &s.tracked.store, &w.regions[i].0, kind, Approximation::Lower);
        sum += o.value;
    }
    let elapsed = start.elapsed().as_secs_f64();
    (w.requests.len() as f64 / elapsed, std::hint::black_box(sum))
}

/// Engine path: obtain a plan per request (cache hit or compile, depending
/// on `capacity` and warm-up), then execute the whole batch.
fn time_engine<S: CountSource + Sync + ?Sized>(
    s: &Scenario,
    g: &SampledGraph,
    w: &Workload,
    store: &S,
    capacity: usize,
    warm: bool,
) -> (f64, f64, EngineStats) {
    let engine = QueryEngine::new(capacity);
    if warm {
        for (q, _, _) in &w.regions {
            engine.plan(&s.sensing, g, q, Approximation::Lower);
        }
    }
    let start = Instant::now();
    let mut batch = Vec::with_capacity(w.requests.len());
    for &(i, kind) in &w.requests {
        let (plan, _) = engine.plan(&s.sensing, g, &w.regions[i].0, Approximation::Lower);
        batch.push((plan, kind));
    }
    let outcomes = engine.execute_batch(store, &batch);
    let elapsed = start.elapsed().as_secs_f64();
    let sum: f64 = outcomes.iter().map(|o| o.value).sum();
    (w.requests.len() as f64 / elapsed, std::hint::black_box(sum), engine.stats())
}

/// Plan-cache hit rate under a skewed access pattern (80% of lookups hit
/// the hottest 20% of regions) for a sweep of cache capacities.
fn hit_rate_sweep(
    s: &Scenario,
    g: &SampledGraph,
    w: &Workload,
    capacities: &[usize],
    lookups: usize,
) -> Vec<(usize, f64)> {
    let hot = (w.regions.len() / 5).max(1);
    let mut rng = StdRng::seed_from_u64(SEEDS[0] ^ 0x77);
    let seq: Vec<usize> = (0..lookups)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..w.regions.len())
            }
        })
        .collect();
    capacities
        .iter()
        .map(|&cap| {
            let engine = QueryEngine::new(cap);
            for &i in &seq {
                engine.plan(&s.sensing, g, &w.regions[i].0, Approximation::Lower);
            }
            let st = engine.stats();
            (cap, st.hits as f64 / (st.hits + st.misses).max(1) as f64)
        })
        .collect()
}

/// One runtime cell: the 8-shard config serving the repeated-region
/// workload with a given plan-cache capacity.
struct RuntimeOutcome {
    throughput: f64,
    plan_hits: u64,
    plan_misses: u64,
    plan_p95_us: u64,
    execute_p95_us: u64,
    cached_plans: usize,
}

fn run_runtime(s: &Scenario, g: &SampledGraph, w: &Workload, plan_cache: usize) -> RuntimeOutcome {
    let cfg = RuntimeConfig {
        num_shards: 8,
        dispatchers: 8,
        queue_capacity: 64,
        shard_timeout: Duration::from_millis(1_000),
        max_retries: 1,
        plan_cache,
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg);
    let specs: Vec<QuerySpec> = w
        .requests
        .iter()
        .map(|&(i, kind)| QuerySpec {
            region: w.regions[i].0.clone(),
            kind,
            approx: Approximation::Lower,
            deadline: None,
        })
        .collect();
    let start = Instant::now();
    let pending: Vec<_> = specs.into_iter().map(|spec| rt.submit(spec)).collect();
    let answers: Vec<ServedAnswer> = pending.into_iter().map(|p| p.wait()).collect();
    let elapsed = start.elapsed().as_secs_f64();
    let report = rt.metrics().report();
    let stats = rt.engine_stats();
    rt.shutdown();
    RuntimeOutcome {
        throughput: answers.len() as f64 / elapsed,
        plan_hits: report.plan_cache_hits,
        plan_misses: report.plan_cache_misses,
        plan_p95_us: report.plan_p95_us,
        execute_p95_us: report.execute_p95_us,
        cached_plans: stats.cached,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (junctions, objects, distinct, reps) =
        if quick { (150, 45, 12, 8) } else { (400, 150, 32, 12) };

    let s = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed: SEEDS[0],
        ..Default::default()
    });
    let cands = s.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        SEEDS[0] ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);

    let w = build_workload(&s, &g, distinct, reps);
    let col = ColumnarCounts::from_store(&s.tracked.store);
    println!(
        "# engine_sweep — {} junctions, {} distinct regions x {} reps x 3 kinds = {} requests",
        junctions,
        w.regions.len(),
        reps,
        w.requests.len()
    );

    // ------------------------------------------------------------------
    // 1. Batched engine vs scalar path on the repeated-region stream.
    let (scalar_qps, scalar_sum) = time_scalar(&s, &g, &w);
    let (cold_qps, cold_sum, _) = time_engine(&s, &g, &w, &s.tracked.store, 0, false);
    let (warm_qps, warm_sum, warm_stats) = time_engine(&s, &g, &w, &s.tracked.store, 256, true);
    let (warm_col_qps, warm_col_sum, _) = time_engine(&s, &g, &w, &col, 256, true);
    assert_eq!(scalar_sum.to_bits(), cold_sum.to_bits(), "cold batch must match scalar");
    assert_eq!(scalar_sum.to_bits(), warm_sum.to_bits(), "warm batch must match scalar");
    assert_eq!(scalar_sum.to_bits(), warm_col_sum.to_bits(), "columnar must match scalar");
    let speedup_warm = warm_qps / scalar_qps.max(1e-9);
    println!("\n## batched vs scalar (same answers, bit-identical)");
    println!("{:<26} | {:>12} | {:>8}", "path", "tput q/s", "speedup");
    for (label, qps) in [
        ("scalar answer()", scalar_qps),
        ("engine, cold cache", cold_qps),
        ("engine, warm cache", warm_qps),
        ("engine, warm + columnar", warm_col_qps),
    ] {
        println!("{label:<26} | {:>12.0} | {:>7.2}x", qps, qps / scalar_qps.max(1e-9));
    }
    println!(
        "warm cache: {} hits / {} misses ({} plans resident)",
        warm_stats.hits, warm_stats.misses, warm_stats.cached
    );

    // ------------------------------------------------------------------
    // 2. Hit-rate sweep over cache capacities (80/20 skewed lookups).
    let caps = [0usize, 2, 4, 8, 16, 32, 64];
    let lookups = if quick { 400 } else { 2_000 };
    let sweep = hit_rate_sweep(&s, &g, &w, &caps, lookups);
    println!("\n## plan-cache hit rate, 80/20 skewed access over {} regions", w.regions.len());
    println!("{:<10} | {:>8}", "capacity", "hit rate");
    for &(cap, rate) in &sweep {
        println!("{cap:<10} | {:>7.1}%", 100.0 * rate);
    }

    // ------------------------------------------------------------------
    // 3. The 8-shard runtime with the plan cache off vs on.
    println!("\n## 8-shard runtime, plan cache off vs on");
    let rt_off = run_runtime(&s, &g, &w, 0);
    let rt_on = run_runtime(&s, &g, &w, 256);
    println!(
        "{:<18} | {:>10} | {:>10} | {:>10} | {:>12} | {:>14}",
        "plan cache", "tput q/s", "plan hits", "misses", "plan p95 µs", "execute p95 µs"
    );
    for (label, o) in [("off (0)", &rt_off), ("on (256)", &rt_on)] {
        println!(
            "{label:<18} | {:>10.0} | {:>10} | {:>10} | {:>12} | {:>14}",
            o.throughput, o.plan_hits, o.plan_misses, o.plan_p95_us, o.execute_p95_us
        );
    }

    println!(
        "\nrepeated-region warm-batch speedup over the scalar path: {:.2}x \
         (plan reuse; compile = resolve + boundary walk, execute = perimeter fold)",
        speedup_warm
    );

    // ------------------------------------------------------------------
    // JSON artifact.
    let mut sweep_rows = String::new();
    for &(cap, rate) in &sweep {
        let _ = write!(
            sweep_rows,
            "{}    {{\"capacity\": {cap}, \"hit_rate\": {rate:.4}}}",
            if sweep_rows.is_empty() { "" } else { ",\n" }
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_sweep\",\n  \"quick\": {quick},\n  \"scenario\": \
         {{\"junctions\": {junctions}, \"objects\": {objects}, \"seed\": {}}},\n  \"workload\": \
         {{\"distinct_regions\": {}, \"reps\": {reps}, \"requests\": {}}},\n  \"throughput_qps\": \
         {{\"scalar\": {scalar_qps:.1}, \"engine_cold\": {cold_qps:.1}, \"engine_warm\": \
         {warm_qps:.1}, \"engine_warm_columnar\": {warm_col_qps:.1}}},\n  \
         \"speedup_warm_batched_vs_scalar\": {speedup_warm:.3},\n  \"hit_rate_sweep\": [\n{}\n  ],\n  \
         \"runtime_8_shard\": [\n    {{\"plan_cache\": 0, \"throughput_qps\": {:.1}, \
         \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \"plan_p95_us\": {}, \
         \"execute_p95_us\": {}, \"cached_plans\": {}}},\n    {{\"plan_cache\": 256, \
         \"throughput_qps\": {:.1}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
         \"plan_p95_us\": {}, \"execute_p95_us\": {}, \"cached_plans\": {}}}\n  ]\n}}\n",
        SEEDS[0],
        w.regions.len(),
        w.requests.len(),
        sweep_rows,
        rt_off.throughput,
        rt_off.plan_hits,
        rt_off.plan_misses,
        rt_off.plan_p95_us,
        rt_off.execute_p95_us,
        rt_off.cached_plans,
        rt_on.throughput,
        rt_on.plan_hits,
        rt_on.plan_misses,
        rt_on.plan_p95_us,
        rt_on.execute_p95_us,
        rt_on.cached_plans,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote results/BENCH_engine.json");
}
