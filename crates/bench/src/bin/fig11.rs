//! Figure 11 — transient queries and system costs:
//! (a) lower-bound transient error vs graph size,
//! (b) transient error vs query area,
//! (c) nodes accessed vs query area (sampled 6% & 51.2%, unsampled, baseline),
//! (d) query execution time vs query area (sampled vs unsampled),
//! (e) per-edge storage CDF: explicit timestamps vs regression models.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin fig11
//! ```

use std::time::Instant;

use stq_bench::*;
use stq_core::prelude::*;
use stq_forms::CountSource;
use stq_learned::RegressorKind;

fn main() {
    println!("# Figure 11 — transient count error, communication, time, storage");
    println!("(median [P25,P75] over {} seeds)", SEEDS.len());

    let scenarios: Vec<Scenario> = parallel_map(SEEDS.len(), |i| paper_scenario(SEEDS[i]));
    let methods = Method::all();

    // (a) transient error vs graph size.
    let series_a = sweep_graph_sizes(
        &scenarios,
        &methods,
        &GRAPH_SIZES,
        |s, si| s.make_queries(30, FIXED_QUERY_AREA, 2_000.0, SEEDS[si] ^ 0x3),
        QueryKind::Transient,
    );
    print_table(
        "Fig 11a: transient error vs sampled graph size (query area 1.08%)",
        "graph size",
        &GRAPH_SIZES,
        &series_a,
    );

    // (b) transient error vs query area.
    let series_b = sweep_query_areas(
        &scenarios,
        &methods,
        &QUERY_AREAS,
        FIXED_GRAPH_SIZE,
        |s, si, area| s.make_queries(30, area, 2_000.0, SEEDS[si] ^ 0x13),
        QueryKind::Transient,
    );
    print_table(
        "Fig 11b: transient error vs query area (graph size 6%)",
        "query area",
        &QUERY_AREAS,
        &series_b,
    );

    // (c) nodes accessed vs query area.
    let configs: Vec<(String, Option<f64>)> = vec![
        ("sampled 6% (quadtree)".into(), Some(0.06)),
        ("sampled 51.2% (quadtree)".into(), Some(0.512)),
        ("unsampled G (flood)".into(), None),
        ("baseline 6% (flood)".into(), Some(-0.06)), // negative marks baseline
    ];
    let series_c: Vec<(String, Vec<Stats>)> = parallel_map(configs.len(), |ci| {
        let (label, cfg) = &configs[ci];
        let col: Vec<Stats> = QUERY_AREAS
            .iter()
            .map(|&area| {
                let mut nodes = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    let queries = s.make_queries(20, area, 2_000.0, SEEDS[si] ^ 0x21);
                    match cfg {
                        Some(f) if *f > 0.0 => {
                            let ev = build_evaluator(
                                s,
                                Method::Sampling(stq_sampling::SamplingMethod::QuadTree),
                                *f,
                                SEEDS[si] ^ 0x51,
                                &[],
                            );
                            for (q, t0, _) in &queries {
                                let r = evaluate(s, &ev, q, QueryKind::Snapshot(*t0));
                                nodes.push(r.nodes_accessed as f64);
                            }
                        }
                        Some(f) => {
                            let ev =
                                build_evaluator(s, Method::Baseline, -f, SEEDS[si] ^ 0x51, &[]);
                            for (q, t0, _) in &queries {
                                let r = evaluate(s, &ev, q, QueryKind::Snapshot(*t0));
                                nodes.push(r.nodes_accessed as f64);
                            }
                        }
                        None => {
                            // Unsampled in-network flooding: every sensor in
                            // the query rectangle participates (§2.3).
                            for (q, _, _) in &queries {
                                nodes.push(s.sensing.sensors_in_rect(&q.rect).len() as f64);
                            }
                        }
                    }
                }
                stats(&nodes)
            })
            .collect();
        (label.clone(), col)
    });
    print_table("Fig 11c: nodes accessed vs query area", "query area", &QUERY_AREAS, &series_c);

    // (d) execution time vs query area (µs per query, measured).
    let s0 = &scenarios[0];
    let sampled6 = build_evaluator(
        s0,
        Method::Sampling(stq_sampling::SamplingMethod::QuadTree),
        0.06,
        SEEDS[0] ^ 0x51,
        &[],
    );
    let unsampled = Evaluator::Graph(SampledGraph::unsampled(&s0.sensing));
    let mut series_d: Vec<(String, Vec<Stats>)> = Vec::new();
    for (label, ev) in [("sampled 6%", &sampled6), ("unsampled G", &unsampled)] {
        let col: Vec<Stats> = QUERY_AREAS
            .iter()
            .map(|&area| {
                let queries = s0.make_queries(25, area, 2_000.0, 0x99);
                let mut times = Vec::new();
                for (q, t0, t1) in &queries {
                    let start = Instant::now();
                    let r = evaluate(s0, ev, q, QueryKind::Transient(*t0, *t1));
                    let dt = start.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(r.value);
                    times.push(dt);
                }
                stats(&times)
            })
            .collect();
        series_d.push((label.to_string(), col));
    }
    print_table(
        "Fig 11d: query execution time (µs) vs query area",
        "query area",
        &QUERY_AREAS,
        &series_d,
    );

    // (e) storage CDF: bytes per monitored edge, explicit vs linear model.
    println!("\n## Fig 11e: per-edge storage CDF (bytes, 6% quadtree sampled graph)");
    let Evaluator::Graph(g6) = &sampled6 else { unreachable!() };
    let exact_sizes: Vec<f64> = g6
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(e, _)| s0.tracked.store.form(e).storage_bytes() as f64)
        .collect();
    let learned =
        stq_core::LearnedStore::fit(&s0.tracked.store, Some(g6.monitored()), RegressorKind::Linear);
    let model_per_edge = learned.storage_bytes() as f64 / learned.num_modelled() as f64;
    let mut sorted = exact_sizes.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("{:>8} | {:>16} | {:>16}", "CDF", "exact bytes", "model bytes");
    for pct in [10, 25, 50, 75, 90, 95, 99, 100] {
        let idx = ((pct as f64 / 100.0) * (sorted.len() - 1) as f64) as usize;
        println!("{:>7}% | {:>16.0} | {:>16.0}", pct, sorted[idx], model_per_edge);
    }
    let total_exact: f64 = exact_sizes.iter().sum();
    println!(
        "\ntotal: exact {:.1} KiB vs models {:.1} KiB  ({:.2}% of exact) over {} edges",
        total_exact / 1024.0,
        learned.storage_bytes() as f64 / 1024.0,
        100.0 * learned.storage_bytes() as f64 / total_exact,
        learned.num_modelled(),
    );
}
