//! Figure 14 — connectivity and learned-store ablations:
//! (a) k-NN (k = 3, 5, 8) vs triangulation: lower-bound error vs query area
//!     (QuadTree sampling, graph size 6%),
//! (b) monitored sensing edges relative to `G` per connectivity,
//! (c) extra error of regression models vs explicit storage — static,
//! (d) the same — transient.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin fig14
//! ```

use stq_bench::*;
use stq_core::prelude::*;
use stq_learned::RegressorKind;
use stq_sampling::SamplingMethod;

fn quadtree_faces(s: &Scenario, size: f64, seed: u64) -> Vec<usize> {
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * size).round() as usize).clamp(3, cands.len());
    stq_sampling::sample(SamplingMethod::QuadTree, &cands, m, seed)
        .into_iter()
        .map(|x| x as usize)
        .collect()
}

fn main() {
    println!("# Figure 14 — k-NN connectivity and regression-model overhead");
    println!("(median [P25,P75] over {} seeds)", SEEDS.len());

    let scenarios: Vec<Scenario> = parallel_map(SEEDS.len(), |i| paper_scenario(SEEDS[i]));

    let conns: Vec<(String, Connectivity)> = vec![
        ("triangulation".into(), Connectivity::Triangulation),
        ("knn k=3".into(), Connectivity::Knn(3)),
        ("knn k=5".into(), Connectivity::Knn(5)),
        ("knn k=8".into(), Connectivity::Knn(8)),
    ];

    // Build one graph per (connectivity, seed).
    let graphs: Vec<Vec<SampledGraph>> = parallel_map(conns.len(), |ci| {
        scenarios
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let faces = quadtree_faces(s, FIXED_GRAPH_SIZE, SEEDS[si] ^ 0x51);
                SampledGraph::from_sensors(&s.sensing, &faces, conns[ci].1)
            })
            .collect()
    });

    // (a) error vs query area per connectivity.
    let series_a: Vec<(String, Vec<Stats>)> = parallel_map(conns.len(), |ci| {
        let col: Vec<Stats> = QUERY_AREAS
            .iter()
            .map(|&area| {
                let mut errs = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    let ev = Evaluator::Graph(graphs[ci][si].clone());
                    let queries = s.make_queries(30, area, 2_000.0, SEEDS[si] ^ 0x61);
                    errs.extend(relative_errors(s, &ev, &queries, |t0, _| QueryKind::Snapshot(t0)));
                }
                stats(&errs)
            })
            .collect();
        (conns[ci].0.clone(), col)
    });
    print_table(
        "Fig 14a: lower-bound error vs query area per connectivity (quadtree 6%)",
        "query area",
        &QUERY_AREAS,
        &series_a,
    );

    // (b) monitored-edge fraction and boundary edges accessed per query.
    println!("\n## Fig 14b: edges monitored / accessed per connectivity (quadtree 6%)");
    println!(
        "{:>16} | {:>22} | {:>26}",
        "connectivity", "monitored edges / |E|", "boundary edges per query"
    );
    for (ci, (label, _)) in conns.iter().enumerate() {
        let mut fracs = Vec::new();
        let mut accessed = Vec::new();
        for (si, s) in scenarios.iter().enumerate() {
            let g = &graphs[ci][si];
            fracs.push(g.num_monitored_edges() as f64 / s.sensing.num_edges() as f64);
            let queries = s.make_queries(20, 0.04, 2_000.0, SEEDS[si] ^ 0x71);
            for (q, t0, _) in &queries {
                let out = answer(
                    &s.sensing,
                    g,
                    &s.tracked.store,
                    q,
                    QueryKind::Snapshot(*t0),
                    Approximation::Lower,
                );
                if !out.miss {
                    accessed.push(out.edges_accessed as f64);
                }
            }
        }
        let f = stats(&fracs);
        let a = stats(&accessed);
        println!("{label:>16} | {:>22.4} | {:>26.1}", f.median, a.median);
    }

    // (c,d) regression-model extra error vs explicit storage, same sampled
    // graph (triangulation), per model family.
    let mut kinds = RegressorKind::standard_set();
    // A finer piecewise model: at this workload's ~24 events per edge
    // direction it degenerates to an exact step CDF (still constant-size),
    // showing the accuracy/size knob the §4.8 buffer design exposes.
    kinds.push(RegressorKind::PiecewiseLinear(64));
    for (title, which) in [("Fig 14c: static", 0usize), ("Fig 14d: transient", 1)] {
        let series: Vec<(String, Vec<Stats>)> = parallel_map(kinds.len(), |ki| {
            let kind = kinds[ki];
            let col: Vec<Stats> = QUERY_AREAS
                .iter()
                .map(|&area| {
                    // Aggregate-normalized penalty per seed:
                    // Σ|exact − model| / Σ|exact| over the query batch —
                    // the model-induced extra error isolated from sampling
                    // error (§5.8), robust to single-digit counts.
                    let mut extra = Vec::new();
                    for (si, s) in scenarios.iter().enumerate() {
                        let g = &graphs[0][si];
                        let learned =
                            LearnedStore::fit(&s.tracked.store, Some(g.monitored()), kind);
                        let queries = s.make_queries(20, area, 2_000.0, SEEDS[si] ^ 0x81);
                        let mut num = 0.0;
                        let mut den = 0.0;
                        for (q, t0, t1) in &queries {
                            let qk = if which == 0 {
                                QueryKind::Static(*t0, *t1)
                            } else {
                                QueryKind::Transient(*t0, *t1)
                            };
                            let exact = answer(
                                &s.sensing,
                                g,
                                &s.tracked.store,
                                q,
                                qk,
                                Approximation::Lower,
                            );
                            if exact.miss {
                                continue;
                            }
                            let model =
                                answer(&s.sensing, g, &learned, q, qk, Approximation::Lower);
                            num += (exact.value - model.value).abs();
                            den += exact.value.abs();
                        }
                        if den > 0.0 {
                            extra.push(num / den);
                        }
                    }
                    stats(&extra)
                })
                .collect();
            (kind.label(), col)
        });
        print_table(
            &format!("{title}: model-induced extra relative error vs query area"),
            "query area",
            &QUERY_AREAS,
            &series,
        );
    }

    // Model storage summary (complements Fig 11e).
    println!("\n## model storage (bytes/edge, triangulation 6%, seed {})", SEEDS[0]);
    let s0 = &scenarios[0];
    let g0 = &graphs[0][0];
    use stq_forms::CountSource;
    let exact_bytes: usize = g0
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(e, _)| s0.tracked.store.form(e).storage_bytes())
        .sum();
    println!("{:>12} | {:>12} | {:>14}", "model", "bytes/edge", "vs exact");
    println!(
        "{:>12} | {:>12.1} | {:>13.1}%",
        "exact",
        exact_bytes as f64 / g0.num_monitored_edges() as f64,
        100.0
    );
    for kind in &kinds {
        let learned = LearnedStore::fit(&s0.tracked.store, Some(g0.monitored()), *kind);
        println!(
            "{:>12} | {:>12.1} | {:>13.2}%",
            kind.label(),
            learned.storage_bytes() as f64 / learned.num_modelled() as f64,
            100.0 * learned.storage_bytes() as f64 / exact_bytes as f64
        );
    }
}
