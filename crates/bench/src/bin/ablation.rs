//! Ablations of the design choices DESIGN.md calls out:
//! 1. triangulation vs k-NN face granularity (the §4.5 trade-off),
//! 2. lazy (CELF) vs naive greedy submodular maximization (§4.4),
//! 3. weighted (query-adaptive) vs plain uniform sampling (§4.3's
//!    "number of times each node appeared in previous queries" weighting),
//! 4. dispatch strategies: server aggregation vs perimeter traversal (§4.6),
//! 5. Euler-histogram temporal bucket width (baseline resolution).
//!
//! ```sh
//! cargo run --release -p stq-bench --bin ablation
//! ```

use std::time::Instant;

use stq_bench::*;
use stq_core::prelude::*;
use stq_submod::{greedy, lazy_greedy, partition_atoms, total_gain, AtomObjective, Objective};

fn main() {
    println!("# Ablations");
    let s = paper_scenario(SEEDS[0]);

    // ------------------------------------------------------------------
    // 1. Connectivity granularity.
    println!("\n## 1. sampled-graph face granularity (quadtree 6%)");
    let cands = s.sensing.sensor_candidates();
    let m = (cands.len() as f64 * FIXED_GRAPH_SIZE) as usize;
    let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 7);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    println!(
        "{:>16} | {:>10} | {:>14} | {:>18}",
        "connectivity", "faces", "mon. edges", "median face cells"
    );
    for (label, conn) in [
        ("triangulation", Connectivity::Triangulation),
        ("knn k=3", Connectivity::Knn(3)),
        ("knn k=5", Connectivity::Knn(5)),
        ("knn k=8", Connectivity::Knn(8)),
    ] {
        let g = SampledGraph::from_sensors(&s.sensing, &faces, conn);
        let mut sizes: Vec<f64> = g.components().iter().map(|c| c.len() as f64).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{label:>16} | {:>10} | {:>14} | {:>18.1}",
            g.components().len(),
            g.num_monitored_edges(),
            sizes[sizes.len() / 2]
        );
    }

    // ------------------------------------------------------------------
    // 2. Lazy vs naive greedy.
    println!("\n## 2. submodular maximization: naive vs lazy (CELF) greedy");
    let historical = s.historical_regions(100, FIXED_QUERY_AREA * 4.0, 0xabc);
    let emb = s.sensing.road().embedding();
    let atoms = partition_atoms(&historical, emb.edges(), emb.num_vertices());
    let sizes: Vec<usize> = historical.iter().map(|q| q.len()).collect();
    let obj = AtomObjective::new(atoms, sizes);
    let budget = s.sensing.num_edges() as f64 * 0.06;
    println!("ground set: {} atoms, budget {budget:.0} edges", obj.len());

    let start = Instant::now();
    let naive = greedy(&obj, budget);
    let t_naive = start.elapsed();
    let start = Instant::now();
    let (lazy, evals) = lazy_greedy(&obj, budget, false);
    let t_lazy = start.elapsed();
    println!(
        "naive : {:>4} atoms, utility {:>8.3}, {:>8.1?} ({} evals)",
        naive.len(),
        total_gain(&obj, &naive),
        t_naive,
        obj.len() * naive.len().max(1),
    );
    println!(
        "lazy  : {:>4} atoms, utility {:>8.3}, {:>8.1?} ({} evals)",
        lazy.len(),
        total_gain(&obj, &lazy),
        t_lazy,
        evals
    );

    // ------------------------------------------------------------------
    // 3. Query-adaptive weighting of uniform sampling.
    println!("\n## 3. uniform vs historically-weighted sampling (6% sensors)");
    // Weight sensors by how often their faces border historical queries.
    let mut weight = vec![0.0f64; s.sensing.num_faces()];
    for h in &historical {
        let set: std::collections::HashSet<usize> = h.iter().copied().collect();
        let b = s.sensing.boundary_of(&set, None);
        for f in s.sensing.boundary_sensors(&b) {
            weight[f] += 1.0;
        }
    }
    let weights: Vec<f64> = cands.iter().map(|&(_, id)| weight[id as usize] + 0.01).collect();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let weighted_ids = stq_sampling::weighted(&cands, &weights, m, &mut rng);
    let plain_ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, m, 5);

    let queries = s.make_queries(40, FIXED_QUERY_AREA * 4.0, 2_000.0, 0xabc); // in-distribution
    for (label, idset) in [("uniform", &plain_ids), ("weighted", &weighted_ids)] {
        let f: Vec<usize> = idset.iter().map(|&x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &f, Connectivity::Triangulation);
        let ev = Evaluator::Graph(g);
        let errs = relative_errors(&s, &ev, &queries, |t0, _| QueryKind::Snapshot(t0));
        let st = stats(&errs);
        println!("{label:>10}: median rel. error {:.3} [{:.3},{:.3}]", st.median, st.p25, st.p75);
    }

    // ------------------------------------------------------------------
    // 4. Dispatch strategies on the communication topology.
    println!("\n## 4. query dispatch: server aggregation vs perimeter traversal (§4.6)");
    let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);
    let links: Vec<(usize, usize)> = g
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &mn)| mn)
        .map(|(e, _)| s.sensing.dual().edge_faces[e])
        .filter(|&(a, b)| a != b)
        .collect();
    let net = stq_net::Network::new(s.sensing.num_faces(), &links);
    let mut hops_server = Vec::new();
    let mut hops_walk = Vec::new();
    for (q, _, _) in s.make_queries(25, 0.04, 2_000.0, 0x171) {
        let plan = QueryPlan::compile(&s.sensing, &g, &q, Approximation::Lower);
        if plan.miss {
            continue;
        }
        let perimeter = s.sensing.boundary_sensors(&plan.boundary);
        if perimeter.is_empty() {
            continue;
        }
        hops_server.push(net.server_aggregation(perimeter[0], &perimeter).hops as f64);
        hops_walk.push(net.perimeter_traversal(perimeter[0], &perimeter).hops as f64);
    }
    println!(
        "server aggregation: median {:.0} hops | perimeter traversal: median {:.0} hops",
        stats(&hops_server).median,
        stats(&hops_walk).median
    );

    // ------------------------------------------------------------------
    // 5. Baseline bucket width.
    println!("\n## 5. Euler-histogram bucket width vs error (baseline, 25.6% faces)");
    let cells: Vec<usize> = s.sensing.road().junctions().collect();
    let queries = s.make_queries(40, 0.04, 2_000.0, 0x191);
    for div in [64.0, 512.0, 4096.0] {
        let bucket = s.config.trajectory.duration / div;
        let idx = stq_baseline::BaselineIndex::build(&cells, &s.trajectories, 0.256, bucket, 9);
        let ev = Evaluator::Baseline(idx);
        let errs = relative_errors(&s, &ev, &queries, |t0, _| QueryKind::Snapshot(t0));
        let st = stats(&errs);
        println!(
            "bucket {:>8.1}s: median rel. error {:.3} [{:.3},{:.3}]",
            bucket, st.median, st.p25, st.p75
        );
    }
}
