//! Throughput/latency sweep of the `stq-runtime` sharded serving layer:
//! shard-count scaling under injected in-network message delay, and a
//! fault-rate sweep showing retry cost and graceful degradation. Emits
//! `results/BENCH_runtime.json` plus a human-readable table.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin runtime_sweep [-- --quick]
//! ```
//!
//! The shard-scaling rows inject a 1–2 ms delay on every shard message —
//! the in-network regime the paper targets, where sensor-hop latency, not
//! CPU, dominates (§4.6). A single shard serializes those waits; multiple
//! shards overlap them, so throughput scales with shard count even on one
//! core. The workload keeps query perimeters small (≤ 10 boundary edges)
//! so a query touches a strict subset of the shards, exactly the
//! perimeter ≪ region setting of §4.5.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_runtime::{FaultPlan, QuerySpec, Runtime, RuntimeConfig, ServedAnswer};

/// One sweep configuration.
struct Cell {
    group: &'static str,
    shards: usize,
    dispatchers: usize,
    drop_p: f64,
    delay_ms: u64,
    timeout: Duration,
    retries: u32,
}

/// Measurements for one cell.
struct Outcome {
    elapsed: f64,
    served: usize,
    throughput: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    degraded: u64,
    retries: u64,
    dropped: u64,
    mean_coverage: f64,
}

fn fault_of(cell: &Cell) -> FaultPlan {
    let delay_p = if cell.delay_ms > 0 { 1.0 } else { 0.0 };
    FaultPlan::lossy(SEEDS[0] ^ 0x6e, cell.drop_p, delay_p, 0.0, cell.delay_ms)
}

/// Builds the serving workload: resolvable queries with small perimeters
/// (1–10 boundary edges), all three kinds per region.
fn workload(s: &Scenario, g: &SampledGraph, want: usize) -> (Vec<QuerySpec>, f64) {
    let mut specs = Vec::new();
    let mut boundary_edges = 0usize;
    let mut salt = 0u64;
    while specs.len() < want * 3 && salt < 64 {
        salt += 1;
        for (region, t0, t1) in s.make_queries(want, 0.015, 2_000.0, SEEDS[0] ^ (0xb0 + salt)) {
            let plan = QueryPlan::compile(&s.sensing, g, &region, Approximation::Lower);
            if plan.miss {
                continue;
            }
            let b = plan.boundary.len();
            if !(1..=10).contains(&b) {
                continue;
            }
            boundary_edges += 3 * b;
            for kind in
                [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1), QueryKind::Static(t0, t1)]
            {
                specs.push(QuerySpec {
                    region: region.clone(),
                    kind,
                    approx: Approximation::Lower,
                    deadline: None,
                });
            }
            if specs.len() >= want * 3 {
                break;
            }
        }
    }
    assert!(!specs.is_empty(), "workload generation found no small-perimeter queries");
    let mean_boundary = boundary_edges as f64 / specs.len() as f64;
    (specs, mean_boundary)
}

fn run_cell(s: &Scenario, g: &SampledGraph, specs: &[QuerySpec], cell: &Cell) -> Outcome {
    let cfg = RuntimeConfig {
        num_shards: cell.shards,
        dispatchers: cell.dispatchers,
        queue_capacity: 64,
        shard_timeout: cell.timeout,
        max_retries: cell.retries,
        fault: fault_of(cell),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg);
    let start = Instant::now();
    // Submit everything up front (backpressure comes from the bounded
    // queue), then collect; this is the concurrent regime the runtime is
    // built for, not a call/response loop.
    let pending: Vec<_> = specs.iter().cloned().map(|spec| rt.submit(spec)).collect();
    let answers: Vec<ServedAnswer> = pending.into_iter().map(|p| p.wait()).collect();
    let elapsed = start.elapsed().as_secs_f64();
    let report = rt.metrics().report();
    let covered: Vec<f64> = answers.iter().filter(|a| !a.miss).map(|a| a.coverage).collect();
    let mean_coverage = covered.iter().sum::<f64>() / (covered.len() as f64).max(1.0);
    rt.shutdown();
    Outcome {
        elapsed,
        served: answers.len(),
        throughput: answers.len() as f64 / elapsed,
        p50_us: report.p50_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
        degraded: report.degraded,
        retries: report.retries,
        dropped: report.dropped,
        mean_coverage,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (junctions, objects, regions, rounds) =
        if quick { (150, 45, 12, 2) } else { (400, 150, 40, 4) };

    let scenario = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed: SEEDS[0],
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        SEEDS[0] ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);

    let (base, mean_boundary) = workload(&scenario, &sampled, regions);
    let specs: Vec<QuerySpec> = (0..rounds).flat_map(|_| base.iter().cloned()).collect();
    println!(
        "# runtime_sweep — {} junctions, {} queries/cell, mean perimeter {:.1} edges",
        junctions,
        specs.len(),
        mean_boundary
    );

    let mut cells = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        cells.push(Cell {
            group: "shard-scaling",
            shards,
            dispatchers: 16,
            drop_p: 0.0,
            delay_ms: 2,
            timeout: Duration::from_millis(1_000),
            retries: 1,
        });
    }
    for &drop_p in &[0.0f64, 0.1, 0.3] {
        cells.push(Cell {
            group: "fault-rate",
            shards: 4,
            dispatchers: 4,
            drop_p,
            delay_ms: 0,
            timeout: Duration::from_millis(10),
            retries: 3,
        });
    }

    println!(
        "\n{:<14} | {:>6} | {:>5} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8} | {:>6}",
        "group", "shards", "drop", "tput q/s", "p50 µs", "p95 µs", "p99 µs", "degraded", "cover"
    );
    let mut json_rows = String::new();
    let mut scaling = Vec::new();
    for cell in &cells {
        let o = run_cell(&scenario, &sampled, &specs, cell);
        println!(
            "{:<14} | {:>6} | {:>5.2} | {:>9.0} | {:>8} | {:>8} | {:>8} | {:>8} | {:>6.3}",
            cell.group,
            cell.shards,
            cell.drop_p,
            o.throughput,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            o.degraded,
            o.mean_coverage
        );
        if cell.group == "shard-scaling" {
            scaling.push((cell.shards, o.throughput));
        }
        let _ = write!(
            json_rows,
            "{}    {{\"group\": \"{}\", \"shards\": {}, \"dispatchers\": {}, \"drop_p\": {}, \
             \"delay_ms\": {}, \"queries\": {}, \"elapsed_s\": {:.4}, \"throughput_qps\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"degraded\": {}, \"retries\": {}, \
             \"dropped\": {}, \"mean_coverage\": {:.4}}}",
            if json_rows.is_empty() { "" } else { ",\n" },
            cell.group,
            cell.shards,
            cell.dispatchers,
            cell.drop_p,
            cell.delay_ms,
            o.served,
            o.elapsed,
            o.throughput,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            o.degraded,
            o.retries,
            o.dropped,
            o.mean_coverage
        );
    }

    let single = scaling.iter().find(|(s, _)| *s == 1).map(|&(_, t)| t).unwrap_or(0.0);
    let best = scaling.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap_or((1, single));
    println!(
        "\nshard scaling under 2ms message delay: {} shards serve {:.1}x the \
         single-shard throughput ({:.0} vs {:.0} q/s)",
        best.0,
        best.1 / single.max(1e-9),
        best.1,
        single
    );

    let json = format!(
        "{{\n  \"bench\": \"runtime_sweep\",\n  \"quick\": {},\n  \"scenario\": \
         {{\"junctions\": {}, \"objects\": {}, \"seed\": {}}},\n  \"workload\": \
         {{\"queries_per_cell\": {}, \"mean_boundary_edges\": {:.2}, \"max_boundary_edges\": 10}},\n  \
         \"scaling_speedup\": {{\"shards\": {}, \"vs_single_shard\": {:.3}}},\n  \"cells\": [\n{}\n  ]\n}}\n",
        quick,
        junctions,
        objects,
        SEEDS[0],
        specs.len(),
        mean_boundary,
        best.0,
        best.1 / single.max(1e-9),
        json_rows
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("wrote results/BENCH_runtime.json");
}
