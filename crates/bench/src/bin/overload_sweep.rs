//! Overload sweep of the serving runtime: open-loop offered load at 1–4×
//! the measured saturation rate, comparing the naive blocking baseline
//! against the overload-controlled configuration (cost-based admission,
//! deadline budgets, brownout precision shedding). Emits
//! `results/BENCH_overload.json` plus a human-readable table.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin overload_sweep [-- --quick --seed N]
//! ```
//!
//! Every completed answer — full precision, strided, shed, or expired — is
//! checked against the synchronous oracle: `soundness_violations` counts
//! answers whose `[lower, upper]` bracket misses the exact value, and must
//! be 0. **Goodput** is on-time sound answers that carry information
//! (coverage > 0) per second of wall clock; fully shed and expired answers
//! are honest but uninformative, so they count against the shed/expired
//! fractions instead. The headline claim: the controlled runtime keeps
//! goodput and tail latency bounded at 2–4× saturation while the blocking
//! baseline's pacing collapses.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_core::query::evaluate;
use stq_runtime::{
    BrownoutConfig, FaultPlan, OverloadConfig, QuerySpec, Runtime, RuntimeConfig, ServedAnswer,
};

/// Client-visible response budget: answers later than this are not goodput
/// (and the controlled runtime stamps it as the query deadline).
const BUDGET: Duration = Duration::from_millis(100);

struct Workload {
    specs: Vec<QuerySpec>,
    /// Synchronous oracle value per spec (`None` = miss).
    exact: Vec<Option<f64>>,
    mean_boundary: f64,
}

/// Resolvable small-perimeter queries (the §4.5 perimeter ≪ region regime)
/// plus their exact synchronous values for the soundness oracle.
fn workload(s: &Scenario, g: &SampledGraph, want: usize, seed: u64) -> Workload {
    let mut specs = Vec::new();
    let mut exact = Vec::new();
    let mut boundary_edges = 0usize;
    let mut salt = 0u64;
    while specs.len() < want && salt < 64 {
        salt += 1;
        for (region, t0, t1) in s.make_queries(want, 0.015, 2_000.0, seed ^ (0xb7 + salt)) {
            let plan = QueryPlan::compile(&s.sensing, g, &region, Approximation::Lower);
            if plan.miss || !(1..=10).contains(&plan.boundary.len()) {
                continue;
            }
            boundary_edges += plan.boundary.len();
            let kind = QueryKind::Transient(t0, t1);
            exact.push(Some(evaluate(&s.tracked.store, &plan.boundary, kind)));
            specs.push(QuerySpec::new(region, kind, Approximation::Lower));
            if specs.len() >= want {
                break;
            }
        }
    }
    assert!(!specs.is_empty(), "workload generation found no small-perimeter queries");
    let mean_boundary = boundary_edges as f64 / specs.len() as f64;
    Workload { specs, exact, mean_boundary }
}

fn base_config(fault_seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: 4,
        dispatchers: 4,
        queue_capacity: 64,
        shard_timeout: Duration::from_millis(250),
        max_retries: 1,
        // 1 ms of in-network delay per shard message: sensor-hop latency,
        // not CPU, sets the service time (§4.6), so saturation is a real,
        // stable rate instead of a scheduler artifact.
        fault: FaultPlan::lossy(fault_seed, 0.0, 1.0, 0.0, 1),
        ..RuntimeConfig::default()
    }
}

fn controlled_config(fault_seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        overload: Some(OverloadConfig {
            max_inflight_cost: 256.0,
            default_deadline: Some(BUDGET),
            brownout: BrownoutConfig {
                queue_high: 16,
                queue_low: 4,
                p95_high_us: 20_000,
                p95_low_us: 5_000,
                dwell: 4,
                window: 32,
            },
            ..OverloadConfig::default()
        }),
        ..base_config(fault_seed)
    }
}

/// Closed-loop capacity: batch-submit the workload and measure completions
/// per second. This is the saturation rate the open-loop cells multiply.
fn measure_saturation(s: &Scenario, g: &SampledGraph, w: &Workload, rounds: usize) -> f64 {
    let rt = Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, base_config(SEEDS[1]));
    let specs: Vec<QuerySpec> = (0..rounds).flat_map(|_| w.specs.iter().cloned()).collect();
    let start = Instant::now();
    let pending: Vec<_> = specs.iter().cloned().map(|spec| rt.submit(spec)).collect();
    let n = pending.len();
    for p in pending {
        let _ = p.wait();
    }
    let elapsed = start.elapsed().as_secs_f64();
    rt.shutdown();
    n as f64 / elapsed
}

struct CellOutcome {
    offered_qps: f64,
    achieved_qps: f64,
    submitted: usize,
    completed: usize,
    rejected: usize,
    expired: usize,
    shed: usize,
    downgraded: usize,
    goodput_qps: f64,
    p99_response_ms: f64,
    mean_coverage: f64,
    soundness_violations: usize,
}

/// One open-loop cell: pace `count` submissions at `rate` per second, then
/// score every response against the pacing clock and the oracle.
fn run_cell(
    s: &Scenario,
    g: &SampledGraph,
    w: &Workload,
    cfg: RuntimeConfig,
    controlled: bool,
    rate: f64,
    count: usize,
) -> CellOutcome {
    let rt = Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg);
    let period = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    // (spec index, lateness of the submit call itself, outcome)
    let mut rejected = 0usize;
    let mut submissions = Vec::with_capacity(count);
    for i in 0..count {
        let sched = start + period * (i as u32);
        let now = Instant::now();
        if sched > now {
            std::thread::sleep(sched - now);
        }
        let lag = Instant::now().saturating_duration_since(sched);
        let idx = i % w.specs.len();
        let spec = w.specs[idx].clone();
        if controlled {
            match rt.try_submit(spec) {
                Ok(p) => submissions.push((idx, lag, p)),
                Err(_) => rejected += 1,
            }
        } else {
            // The naive baseline blocks right here when the queue is full —
            // the pacing clock keeps running and lateness compounds.
            submissions.push((idx, lag, rt.submit(spec)));
        }
    }
    let answers: Vec<(usize, Duration, ServedAnswer)> =
        submissions.into_iter().map(|(idx, lag, p)| (idx, lag, p.wait())).collect();
    let elapsed = start.elapsed().as_secs_f64();
    rt.shutdown();

    let mut good = 0usize;
    let mut expired = 0usize;
    let mut shed = 0usize;
    let mut downgraded = 0usize;
    let mut violations = 0usize;
    let mut coverage_sum = 0.0;
    let mut response_ms: Vec<f64> = Vec::with_capacity(answers.len());
    for (idx, lag, a) in &answers {
        // Response time as the client sees it: pacing lag (how late the
        // submit call itself ran) plus the runtime's end-to-end latency.
        let response = *lag + a.latency;
        response_ms.push(response.as_secs_f64() * 1e3);
        coverage_sum += a.coverage;
        if let Some(exact) = w.exact[*idx] {
            if !(a.lower <= exact + 1e-9 && exact <= a.upper + 1e-9) {
                violations += 1;
            }
        }
        if a.expired {
            expired += 1;
            continue;
        }
        match a.brownout {
            0 => {}
            1 | 2 => downgraded += 1,
            _ => {
                shed += 1;
                continue;
            }
        }
        if response <= BUDGET {
            good += 1;
        }
    }
    response_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = if response_ms.is_empty() {
        0.0
    } else {
        response_ms[((response_ms.len() - 1) as f64 * 0.99) as usize]
    };
    CellOutcome {
        offered_qps: rate,
        achieved_qps: count as f64 / elapsed,
        submitted: count,
        completed: answers.len(),
        rejected,
        expired,
        shed,
        downgraded,
        goodput_qps: good as f64 / elapsed,
        p99_response_ms: p99,
        mean_coverage: coverage_sum / (answers.len() as f64).max(1.0),
        soundness_violations: violations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(SEEDS[0]);
    let (junctions, objects, regions, sat_rounds, cell_secs) =
        if quick { (150, 45, 16, 2, 1.0) } else { (300, 100, 32, 4, 2.0) };

    let scenario = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed,
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        seed ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
    let w = workload(&scenario, &sampled, regions, seed);
    println!(
        "# overload_sweep — seed {seed}, {junctions} junctions, {} base specs, \
         mean perimeter {:.1} edges, budget {} ms",
        w.specs.len(),
        w.mean_boundary,
        BUDGET.as_millis()
    );

    let saturation_qps = measure_saturation(&scenario, &sampled, &w, sat_rounds);
    println!("closed-loop saturation: {saturation_qps:.0} q/s");

    println!(
        "\n{:<10} | {:>4} | {:>8} | {:>8} | {:>8} | {:>6} | {:>6} | {:>6} | {:>6} | {:>8} | {:>5}",
        "system",
        "mult",
        "offered",
        "goodput",
        "p99 ms",
        "rej%",
        "exp%",
        "shed%",
        "down%",
        "cover",
        "viol"
    );
    let multipliers = [1.0f64, 2.0, 3.0, 4.0];
    let mut json_rows = String::new();
    let mut violations_total = 0usize;
    let mut controlled_goodput = [0.0f64; 4];
    for (mi, &mult) in multipliers.iter().enumerate() {
        for &controlled in &[false, true] {
            let rate = saturation_qps * mult;
            let count = ((rate * cell_secs) as usize).clamp(32, 6_000);
            let cfg =
                if controlled { controlled_config(seed ^ 0x2e) } else { base_config(seed ^ 0x2e) };
            let o = run_cell(&scenario, &sampled, &w, cfg, controlled, rate, count);
            let system = if controlled { "controlled" } else { "baseline" };
            let frac = |n: usize| n as f64 / o.submitted.max(1) as f64;
            println!(
                "{system:<10} | {mult:>4.1} | {:>8.0} | {:>8.1} | {:>8.1} | {:>6.3} | {:>6.3} \
                 | {:>6.3} | {:>6.3} | {:>8.3} | {:>5}",
                o.offered_qps,
                o.goodput_qps,
                o.p99_response_ms,
                frac(o.rejected),
                frac(o.expired),
                frac(o.shed),
                frac(o.downgraded),
                o.mean_coverage,
                o.soundness_violations
            );
            violations_total += o.soundness_violations;
            if controlled {
                controlled_goodput[mi] = o.goodput_qps;
            }
            let _ = write!(
                json_rows,
                "{}    {{\"system\": \"{system}\", \"multiplier\": {mult}, \
                 \"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"submitted\": {}, \
                 \"completed\": {}, \"rejected_frac\": {:.4}, \"expired_frac\": {:.4}, \
                 \"shed_frac\": {:.4}, \"downgraded_frac\": {:.4}, \"goodput_qps\": {:.1}, \
                 \"p99_response_ms\": {:.2}, \"mean_coverage\": {:.4}, \
                 \"soundness_violations\": {}}}",
                if json_rows.is_empty() { "" } else { ",\n" },
                o.offered_qps,
                o.achieved_qps,
                o.submitted,
                o.completed,
                frac(o.rejected),
                frac(o.expired),
                frac(o.shed),
                frac(o.downgraded),
                o.goodput_qps,
                o.p99_response_ms,
                o.mean_coverage,
                o.soundness_violations
            );
        }
    }

    println!(
        "\ncontrolled goodput at 3x saturation: {:.1} q/s vs {:.1} q/s at 1x \
         ({} soundness violations total)",
        controlled_goodput[2], controlled_goodput[0], violations_total
    );
    let json = format!(
        "{{\n  \"bench\": \"overload_sweep\",\n  \"quick\": {quick},\n  \"seed\": {seed},\n  \
         \"scenario\": {{\"junctions\": {junctions}, \"objects\": {objects}}},\n  \
         \"workload\": {{\"base_specs\": {}, \"mean_boundary_edges\": {:.2}, \
         \"budget_ms\": {}}},\n  \"saturation_qps\": {saturation_qps:.1},\n  \
         \"saturation_goodput\": {:.1},\n  \"goodput_at_2x\": {:.1},\n  \
         \"goodput_at_3x\": {:.1},\n  \"goodput_at_4x\": {:.1},\n  \
         \"soundness_violations\": {violations_total},\n  \"cells\": [\n{json_rows}\n  ]\n}}\n",
        w.specs.len(),
        w.mean_boundary,
        BUDGET.as_millis(),
        controlled_goodput[0],
        controlled_goodput[1],
        controlled_goodput[2],
        controlled_goodput[3],
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("wrote results/BENCH_overload.json");
}
