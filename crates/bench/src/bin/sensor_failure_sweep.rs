//! Sensor-failure sweep: kills a growing fraction of monitored sensors,
//! runs the 1-form integrity audit + quarantine-and-repair pipeline, and
//! checks that every served bracket still contains the oracle truth. Emits
//! `results/BENCH_sensors.json` plus a human-readable table.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin sensor_failure_sweep [-- --quick]
//! ```
//!
//! Two experiments:
//!
//! 1. **Dead-sensor sweep** — for each dead fraction, corrupt ingestion
//!    with a seeded [`SensorFaultPlan`]. A *blind* audit (no heartbeat)
//!    scores detection: recall over the dead set and the blame it sprays on
//!    healthy neighbours. The *serving* pipeline then applies heartbeat
//!    knowledge first — fail-stop deaths announce themselves, so dead edges
//!    are demoted before the audit runs on the merged components — and
//!    additionally distrusts hard-evidence flags (conservation violations,
//!    non-monotone logs, duplicate timestamps) and repaired-then-rewritten
//!    logs. Silence-only flags stay monitored: their logs are untouched, so
//!    keeping them costs nothing in soundness and saves most of the
//!    coverage. Every query of all three kinds is asserted sound:
//!    `lower ≤ oracle ≤ upper`. The failover column re-selects detour edges
//!    around the untrusted set via [`SampledGraph::reroute_around`] and
//!    measures how much granularity (components) and coverage it buys back.
//! 2. **Exact repair** — a flipped + duplicating mix (no deaths) for
//!    aggregate repair stats, plus isolated single-edge flip trials that
//!    assert the core contract: the corrupted edge is either restored to
//!    byte-equality with a clean ingestion or quarantined — never silently
//!    served wrong.
//! 3. **Mixed cocktail** — dead + skewed + flipped simultaneously, served
//!    once with degraded-mode answering enabled and once with imputation
//!    switched off, so the marginal value of conservation-residual
//!    imputation under compound faults is a measured cell, not a claim.
//!
//! Each dead-sweep cell also answers every query through the
//! [`DegradedAnswerer`] escalation (multi-face detours → imputation →
//! learned fallback); those brackets are asserted sound exactly like the
//! demoted and rerouted ones, and the per-strategy tallies are reported.

use std::collections::HashSet;
use std::fmt::Write as _;

use stq_bench::SEEDS;
use stq_core::prelude::*;
use stq_forms::Evidence;
use stq_net::{SensorFaultMix, SensorFaultPlan};

/// Per-cell measurements of the dead-sensor sweep.
struct SweepOut {
    dead: usize,
    flagged: usize,
    silence_only: usize,
    recall: f64,
    queries: usize,
    sound: usize,
    misses: usize,
    infinite: usize,
    mean_coverage: f64,
    mean_width: f64,
    components_before: usize,
    components_demoted: usize,
    components_rerouted: usize,
    rerouted_sound: usize,
    rerouted_misses: usize,
    rerouted_mean_coverage: f64,
    degraded: DegradedOut,
}

/// Measurements of one degraded-mode answering pass (soundness is asserted
/// inline; a violation aborts the sweep).
struct DegradedOut {
    sound: usize,
    misses: usize,
    infinite: usize,
    mean_coverage: f64,
    mean_confidence: f64,
    mean_width: f64,
    finite: usize,
    /// Winning-strategy tally: [demoted, detour, imputed, learned].
    strategies: [usize; 4],
}

impl DegradedOut {
    fn json(&self) -> String {
        format!(
            "{{\"sound\": {}, \"misses\": {}, \"infinite_brackets\": {}, \
             \"mean_coverage\": {:.4}, \"mean_confidence\": {:.4}, \"mean_width\": {}, \
             \"strategies\": {{\"demoted\": {}, \"detour\": {}, \"imputed\": {}, \
             \"learned\": {}}}}}",
            self.sound,
            self.misses,
            self.infinite,
            self.mean_coverage,
            self.mean_confidence,
            width_json(self.finite, self.mean_width),
            self.strategies[0],
            self.strategies[1],
            self.strategies[2],
            self.strategies[3]
        )
    }
}

/// `mean_width` is an average over *finite* brackets; with none measured
/// there is no mean, and printing `0.000` would fake a perfectly tight
/// cell. Emit JSON `null` so "no sound answers" stays distinguishable.
fn width_json(finite: usize, mean: f64) -> String {
    if finite == 0 {
        "null".to_string()
    } else {
        format!("{mean:.3}")
    }
}

fn build(seed: u64, junctions: usize, objects: usize) -> (Scenario, SampledGraph) {
    let scenario = Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed,
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids = stq_sampling::sample(
        stq_sampling::SamplingMethod::QuadTree,
        &cands,
        cands.len() / 4,
        seed ^ 0x51,
    );
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);
    (scenario, sampled)
}

fn monitored_edges(g: &SampledGraph) -> Vec<usize> {
    g.monitored().iter().enumerate().filter(|&(_, &m)| m).map(|(e, _)| e).collect()
}

/// Answers every query on `graph`, asserting soundness against the oracle.
/// Returns (sound, misses, infinite, coverage sum, width sum, finite count).
fn answer_all(
    s: &Scenario,
    graph: &SampledGraph,
    tracked: &Tracked,
    queries: &[(QueryRegion, f64, f64)],
    label: &str,
) -> (usize, usize, usize, f64, f64, usize) {
    let (mut sound, mut misses, mut infinite) = (0usize, 0usize, 0usize);
    let (mut cov_sum, mut width_sum, mut finite) = (0.0f64, 0.0f64, 0usize);
    for (q, t0, t1) in queries {
        let inside = |j: usize| q.junctions.contains(&j);
        for kind in
            [QueryKind::Snapshot(*t0), QueryKind::Transient(*t0, *t1), QueryKind::Static(*t0, *t1)]
        {
            let b = answer_with_bounds(&s.sensing, graph, &tracked.store, q, kind);
            if b.miss {
                misses += 1;
                continue;
            }
            let truth = match kind {
                QueryKind::Snapshot(t) => tracked.oracle.snapshot_count(&inside, t) as f64,
                QueryKind::Transient(a, z) => tracked.oracle.transient_count(&inside, a, z) as f64,
                QueryKind::Static(a, z) => {
                    tracked.oracle.static_interval_count(&inside, a, z) as f64
                }
            };
            // The acceptance criterion: served answers stay sound no matter
            // how many sensors died. A violation is a bug, not a data point.
            assert!(
                b.contains(truth),
                "{label} {kind:?}: oracle {truth} outside [{}, {}]",
                b.lower,
                b.upper
            );
            sound += 1;
            cov_sum += b.coverage;
            if b.width().is_finite() {
                width_sum += b.width();
                finite += 1;
            } else {
                infinite += 1;
            }
        }
    }
    (sound, misses, infinite, cov_sum, width_sum, finite)
}

/// Answers every query through the degraded-mode escalation, asserting the
/// certified bracket is sound and the point estimate honest (inside it).
fn answer_degraded(
    s: &Scenario,
    deg: &DegradedAnswerer,
    tracked: &Tracked,
    queries: &[(QueryRegion, f64, f64)],
    label: &str,
) -> DegradedOut {
    let mut o = DegradedOut {
        sound: 0,
        misses: 0,
        infinite: 0,
        mean_coverage: 0.0,
        mean_confidence: 0.0,
        mean_width: 0.0,
        finite: 0,
        strategies: [0; 4],
    };
    let (mut cov_sum, mut conf_sum, mut width_sum) = (0.0f64, 0.0f64, 0.0f64);
    for (q, t0, t1) in queries {
        let inside = |j: usize| q.junctions.contains(&j);
        for kind in
            [QueryKind::Snapshot(*t0), QueryKind::Transient(*t0, *t1), QueryKind::Static(*t0, *t1)]
        {
            let a = deg.answer(&s.sensing, &tracked.store, q, kind);
            if a.bracket.miss {
                o.misses += 1;
                continue;
            }
            let truth = match kind {
                QueryKind::Snapshot(t) => tracked.oracle.snapshot_count(&inside, t) as f64,
                QueryKind::Transient(x, z) => tracked.oracle.transient_count(&inside, x, z) as f64,
                QueryKind::Static(x, z) => {
                    tracked.oracle.static_interval_count(&inside, x, z) as f64
                }
            };
            assert!(
                a.bracket.contains(truth),
                "{label} {kind:?} ({:?}): oracle {truth} outside [{}, {}]",
                a.strategy,
                a.bracket.lower,
                a.bracket.upper
            );
            assert!(
                a.bracket.lower <= a.value && a.value <= a.bracket.upper,
                "{label} {kind:?}: point estimate {} escapes its own bracket",
                a.value
            );
            o.sound += 1;
            cov_sum += a.bracket.coverage;
            conf_sum += a.confidence;
            match a.strategy {
                DegradedStrategy::Demoted => o.strategies[0] += 1,
                DegradedStrategy::MultiFaceDetour => o.strategies[1] += 1,
                DegradedStrategy::Imputation => o.strategies[2] += 1,
                DegradedStrategy::LearnedFallback => o.strategies[3] += 1,
                DegradedStrategy::None => {}
            }
            if a.bracket.width().is_finite() {
                width_sum += a.bracket.width();
                o.finite += 1;
            } else {
                o.infinite += 1;
            }
        }
    }
    o.mean_coverage = cov_sum / (o.sound as f64).max(1.0);
    o.mean_confidence = conf_sum / (o.sound as f64).max(1.0);
    o.mean_width = width_sum / (o.finite as f64).max(1.0);
    o
}

fn sweep_cell(
    s: &Scenario,
    g: &SampledGraph,
    frac: f64,
    seed: u64,
    queries: &[(QueryRegion, f64, f64)],
) -> SweepOut {
    let horizon = (0.0, s.config.trajectory.duration);
    let plan = SensorFaultPlan::generate(
        seed ^ 0xFA11,
        &monitored_edges(g),
        horizon,
        SensorFaultMix::dead_only(frac),
    );
    let dead = plan.dead_edges();
    let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);

    // Blind pass — the no-heartbeat counterfactual, for detection stats
    // only: how much of the dead set does the audit find on its own, and
    // how many healthy edges does it drag down (dead sensors spray
    // conservation blame over every boundary edge of their violated
    // components, so blind quarantine over-demotes by design)?
    let mut blind_store = tracked.store.clone();
    let blind =
        quarantine_and_repair(&s.sensing, g, &mut blind_store, horizon, &RepairConfig::default());
    let silence = |rep: &RepairOutcome, e: usize| {
        rep.report.verdict(e).is_some_and(|v| {
            v.evidence
                .iter()
                .all(|ev| matches!(ev, Evidence::SilentGap { .. } | Evidence::SilentSibling { .. }))
        })
    };
    let dead_set: HashSet<usize> = dead.iter().copied().collect();
    let caught = blind.quarantined.iter().filter(|e| dead_set.contains(e)).count();
    let silence_only = blind.quarantined.iter().filter(|&&e| silence(&blind, e)).count();

    // Serving pass — heartbeats announce fail-stop deaths, so demote the
    // dead edges *before* auditing: the merged components then have only
    // healthy boundary logs, conservation holds again, and no blame lands
    // on healthy edges. On top of the heartbeat demotion we drop whatever
    // the audit still flags with hard evidence and any edge the repair
    // pass rewrote (under a dead-only mix a "repair" was a mis-repair of a
    // healthy log). Silence-only flags stay monitored: their logs are
    // untouched, so they cost nothing in soundness and would cost most of
    // the remaining coverage.
    let g_live = g.demote_edges(&s.sensing, &dead);
    let out = quarantine_and_repair(
        &s.sensing,
        &g_live,
        &mut tracked.store,
        horizon,
        &RepairConfig::default(),
    );
    let mut distrusted: Vec<usize> = out
        .quarantined
        .iter()
        .copied()
        .filter(|&e| !silence(&out, e))
        .chain(out.repaired.iter().map(|r| r.edge))
        .collect();
    distrusted.sort_unstable();
    distrusted.dedup();
    let demoted = g_live.demote_edges(&s.sensing, &distrusted);

    // Failover: re-route detours around everything untrusted; detour edges
    // were never in the fault plan, so their logs are clean.
    let mut untrusted: Vec<usize> =
        dead.iter().copied().chain(distrusted.iter().copied()).collect();
    untrusted.sort_unstable();
    untrusted.dedup();
    let rerouted = g.reroute_around(&s.sensing, &untrusted);

    let (sound, misses, infinite, cov_sum, width_sum, finite) =
        answer_all(s, &demoted, &tracked, queries, "demoted");
    let (r_sound, r_misses, _, r_cov_sum, _, _) =
        answer_all(s, &rerouted, &tracked, queries, "rerouted");
    // Degraded-mode escalation over the same untrusted set: the answerer
    // owns its own demoted/rerouted graphs plus the imputation constraint
    // system and learned fallback, so every query gets the best certified
    // bracket the quarantine leaves reachable.
    let deg =
        DegradedAnswerer::new(&s.sensing, g, &untrusted, &tracked.store, DegradedPolicy::default());
    let degraded = answer_degraded(s, &deg, &tracked, queries, "degraded");
    SweepOut {
        dead: dead.len(),
        flagged: blind.report.flagged().len(),
        silence_only,
        recall: if dead.is_empty() { 1.0 } else { caught as f64 / dead.len() as f64 },
        queries: queries.len() * 3,
        sound,
        misses,
        infinite,
        mean_coverage: cov_sum / (sound as f64).max(1.0),
        mean_width: width_sum / (finite as f64).max(1.0),
        components_before: g.components().len(),
        components_demoted: demoted.components().len(),
        components_rerouted: rerouted.components().len(),
        rerouted_sound: r_sound,
        rerouted_misses: r_misses,
        rerouted_mean_coverage: r_cov_sum / (r_sound as f64).max(1.0),
        degraded,
    }
}

/// One mixed-fault cocktail cell: dead + skewed + flipped simultaneously.
struct CocktailOut {
    dead: usize,
    skewed: usize,
    flipped: usize,
    untrusted: usize,
    base_sound: usize,
    base_misses: usize,
    base_infinite: usize,
    base_mean_coverage: f64,
    base_mean_width: f64,
    base_finite: usize,
    degraded: DegradedOut,
}

/// Serves a compound fault mix (fail-stop deaths announced by heartbeat,
/// clock skew and direction flips only catchable by the audit) through the
/// same demote-first pipeline as the dead sweep, then through the degraded
/// escalation with `impute` on or off. Every bracket on both paths is
/// asserted sound.
fn cocktail_cell(
    s: &Scenario,
    g: &SampledGraph,
    seed: u64,
    queries: &[(QueryRegion, f64, f64)],
    impute: bool,
) -> CocktailOut {
    let horizon = (0.0, s.config.trajectory.duration);
    // Flips and skews spray conservation blame over whole component
    // boundaries, so those fractions dominate how much of the network the
    // audit ends up distrusting; keep them low enough that the cocktail
    // measures degraded answering rather than a total blackout.
    let mix = SensorFaultMix { dead: 0.08, skewed: 0.01, flipped: 0.005, ..SensorFaultMix::none() };
    let plan = SensorFaultPlan::generate(seed ^ 0xC0C7, &monitored_edges(g), horizon, mix);
    let dead = plan.dead_edges();
    let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);

    let g_live = g.demote_edges(&s.sensing, &dead);
    let out = quarantine_and_repair(
        &s.sensing,
        &g_live,
        &mut tracked.store,
        horizon,
        &RepairConfig::default(),
    );
    let silence = |e: usize| {
        out.report.verdict(e).is_some_and(|v| {
            v.evidence
                .iter()
                .all(|ev| matches!(ev, Evidence::SilentGap { .. } | Evidence::SilentSibling { .. }))
        })
    };
    let mut untrusted: Vec<usize> = dead
        .iter()
        .copied()
        .chain(out.quarantined.iter().copied().filter(|&e| !silence(e)))
        .chain(out.repaired.iter().map(|r| r.edge))
        .collect();
    untrusted.sort_unstable();
    untrusted.dedup();

    let demoted = g.demote_edges(&s.sensing, &untrusted);
    let (b_sound, b_misses, b_infinite, b_cov, b_width, b_finite) =
        answer_all(s, &demoted, &tracked, queries, "cocktail-demoted");
    let policy = DegradedPolicy { impute, ..DegradedPolicy::default() };
    let deg = DegradedAnswerer::new(&s.sensing, g, &untrusted, &tracked.store, policy);
    let label = if impute { "cocktail-degraded" } else { "cocktail-no-impute" };
    let degraded = answer_degraded(s, &deg, &tracked, queries, label);
    CocktailOut {
        dead: dead.len(),
        skewed: plan.edges_of(stq_net::SensorFaultKind::Skewed).len(),
        flipped: plan.edges_of(stq_net::SensorFaultKind::Flipped).len(),
        untrusted: untrusted.len(),
        base_sound: b_sound,
        base_misses: b_misses,
        base_infinite: b_infinite,
        base_mean_coverage: b_cov / (b_sound as f64).max(1.0),
        base_mean_width: b_width / (b_finite as f64).max(1.0),
        base_finite: b_finite,
        degraded,
    }
}

/// Per-seed exact-repair accounting.
struct RepairOut {
    corrupted: usize,
    unflips: usize,
    unflips_exact: usize,
    dedups: usize,
    dedups_exact: usize,
    quarantined: usize,
    isolated_trials: usize,
    isolated_exact: usize,
    isolated_quarantined: usize,
    isolated_undetected: usize,
}

fn forms_equal(a: &stq_forms::TrackingForm, b: &stq_forms::TrackingForm) -> bool {
    a.timestamps(true) == b.timestamps(true) && a.timestamps(false) == b.timestamps(false)
}

/// Aggregate repair stats under a flipped + duplicating mix, plus isolated
/// single-edge flip trials. In the mixed setting repairs can collide (two
/// suspects on one violated component), so exactness is reported, not
/// asserted; the isolated trials assert the actual contract — restored
/// byte-exactly or quarantined, never silently served wrong.
fn repair_cell(s: &Scenario, g: &SampledGraph, seed: u64) -> RepairOut {
    let horizon = (0.0, s.config.trajectory.duration);
    let clean = &s.tracked.store;
    let mix = SensorFaultMix { flipped: 0.12, duplicating: 0.12, ..SensorFaultMix::none() };
    let plan = SensorFaultPlan::generate(seed ^ 0xF1B, &monitored_edges(g), horizon, mix);
    let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);
    let out =
        quarantine_and_repair(&s.sensing, g, &mut tracked.store, horizon, &RepairConfig::default());
    let mut r = RepairOut {
        corrupted: plan.corrupted_edges().len(),
        unflips: 0,
        unflips_exact: 0,
        dedups: 0,
        dedups_exact: 0,
        quarantined: out.quarantined.len(),
        isolated_trials: 0,
        isolated_exact: 0,
        isolated_quarantined: 0,
        isolated_undetected: 0,
    };
    for rep in &out.repaired {
        let exact = forms_equal(tracked.store.form(rep.edge), clean.form(rep.edge));
        match rep.kind {
            stq_core::repair::RepairKind::Unflip => {
                r.unflips += 1;
                r.unflips_exact += usize::from(exact);
            }
            stq_core::repair::RepairKind::Dedup => {
                r.dedups += 1;
                r.dedups_exact += usize::from(exact);
            }
        }
    }

    // Isolated trials: flip exactly one busy edge, whole horizon.
    let busy: Vec<usize> = monitored_edges(g)
        .into_iter()
        .filter(|&e| clean.form(e).total(true) + clean.form(e).total(false) >= 6)
        .take(6)
        .collect();
    for &edge in &busy {
        let plan = SensorFaultPlan::from_faults(
            seed ^ 0x150,
            vec![stq_net::SensorFault {
                edge,
                kind: stq_net::SensorFaultKind::Flipped,
                from: f64::NEG_INFINITY,
                until: f64::INFINITY,
            }],
        );
        let mut t = ingest_with_faults(&s.sensing, &s.trajectories, &plan);
        let out =
            quarantine_and_repair(&s.sensing, g, &mut t.store, horizon, &RepairConfig::default());
        r.isolated_trials += 1;
        if !out.initial.flagged().contains(&edge) {
            // A flip that leaves every component's running population
            // non-negative breaks no conservation law — the audit is a
            // necessary-condition check and cannot see it. Reported, so
            // the detectability limit is measured rather than hidden.
            r.isolated_undetected += 1;
        } else if forms_equal(t.store.form(edge), clean.form(edge)) {
            r.isolated_exact += 1;
        } else {
            // Flagged but not confidently invertible: the contract is
            // quarantine, never a silently wrong monitored log.
            assert!(
                out.quarantined.contains(&edge),
                "isolated flip on edge {edge}: flagged but neither repaired nor quarantined"
            );
            r.isolated_quarantined += 1;
        }
    }
    r
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    // `--seed N` pins the whole pipeline to one seed (the CI chaos matrix
    // runs three of them); without it the standard bench seed set is used.
    let pinned: Option<u64> = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"));
    let (junctions, objects, regions) = if quick { (150, 45, 8) } else { (300, 100, 18) };
    let seeds: Vec<u64> = match pinned {
        Some(s) => vec![s],
        None if quick => SEEDS[..2].to_vec(),
        None => SEEDS[..3].to_vec(),
    };
    let fracs = [0.0f64, 0.1, 0.2, 0.3];

    println!("# sensor_failure_sweep — {junctions} junctions, {} seeds", seeds.len());
    println!(
        "\n{:>6} | {:>5} | {:>5} | {:>5} | {:>5} | {:>6} | {:>11} | {:>6} | {:>7} | {:>15} | {:>7} | {:>7}",
        "seed",
        "dead%",
        "dead",
        "flag",
        "fp",
        "recall",
        "sound/asked",
        "miss",
        "cover",
        "comps b/d/r",
        "r-sound",
        "r-cover"
    );

    let mut json_sweep = String::new();
    let mut json_repair = String::new();
    let mut json_cocktail = String::new();
    let mut total_sound = 0usize;
    let mut total_asked = 0usize;
    let mut total_isolated_exact = 0usize;

    for &seed in &seeds {
        let (scenario, sampled) = build(seed, junctions, objects);
        let queries = scenario.make_queries(regions, 0.06, 2_000.0, seed ^ 0x9E);
        for &frac in &fracs {
            let o = sweep_cell(&scenario, &sampled, frac, seed, &queries);
            total_sound += o.sound + o.rerouted_sound + o.degraded.sound;
            total_asked += o.sound
                + o.misses
                + o.rerouted_sound
                + o.rerouted_misses
                + o.degraded.sound
                + o.degraded.misses;
            println!(
                "{:>6} | {:>5.2} | {:>5} | {:>5} | {:>5} | {:>6.3} | {:>5}/{:<5} | {:>6} | {:>7.3} | {:>4}/{:>4}/{:>4} | {:>7} | {:>7.3}",
                seed,
                frac,
                o.dead,
                o.flagged,
                o.silence_only,
                o.recall,
                o.sound,
                o.queries,
                o.misses,
                o.mean_coverage,
                o.components_before,
                o.components_demoted,
                o.components_rerouted,
                o.rerouted_sound,
                o.rerouted_mean_coverage
            );
            println!(
                "{:>6} | degraded: {}/{} sound, cover {:.3}, \
                 strategies demoted/detour/imputed/learned {}/{}/{}/{}",
                seed,
                o.degraded.sound,
                o.queries,
                o.degraded.mean_coverage,
                o.degraded.strategies[0],
                o.degraded.strategies[1],
                o.degraded.strategies[2],
                o.degraded.strategies[3]
            );
            let _ = write!(
                json_sweep,
                "{}    {{\"seed\": {}, \"dead_frac\": {}, \"dead\": {}, \"flagged\": {}, \
                 \"silence_only\": {}, \"recall\": {:.4}, \"queries\": {}, \"sound\": {}, \
                 \"misses\": {}, \
                 \"infinite_brackets\": {}, \"mean_coverage\": {:.4}, \"mean_width\": {}, \
                 \"components\": {{\"before\": {}, \"demoted\": {}, \"rerouted\": {}}}, \
                 \"rerouted_sound\": {}, \"rerouted_misses\": {}, \
                 \"rerouted_mean_coverage\": {:.4}, \"degraded\": {}}}",
                if json_sweep.is_empty() { "" } else { ",\n" },
                seed,
                frac,
                o.dead,
                o.flagged,
                o.silence_only,
                o.recall,
                o.queries,
                o.sound,
                o.misses,
                o.infinite,
                o.mean_coverage,
                width_json(o.sound - o.infinite, o.mean_width),
                o.components_before,
                o.components_demoted,
                o.components_rerouted,
                o.rerouted_sound,
                o.rerouted_misses,
                o.rerouted_mean_coverage,
                o.degraded.json()
            );
        }

        // Mixed cocktail: the same compound mix served with and without
        // imputation — the delta between the two cells is the measured
        // value of conservation-residual imputation under compound faults.
        for impute in [true, false] {
            let c = cocktail_cell(&scenario, &sampled, seed, &queries, impute);
            total_sound += c.base_sound + c.degraded.sound;
            total_asked += c.base_sound + c.base_misses + c.degraded.sound + c.degraded.misses;
            println!(
                "{seed:>6} | cocktail (impute {}): {} dead + {} skewed + {} flipped \
                 ({} untrusted); base {}/{} cover {:.3}; degraded {}/{} cover {:.3} \
                 strategies {}/{}/{}/{}",
                if impute { "on" } else { "off" },
                c.dead,
                c.skewed,
                c.flipped,
                c.untrusted,
                c.base_sound,
                c.base_sound + c.base_misses,
                c.base_mean_coverage,
                c.degraded.sound,
                c.degraded.sound + c.degraded.misses,
                c.degraded.mean_coverage,
                c.degraded.strategies[0],
                c.degraded.strategies[1],
                c.degraded.strategies[2],
                c.degraded.strategies[3]
            );
            let _ = write!(
                json_cocktail,
                "{}    {{\"seed\": {}, \"impute\": {}, \"dead\": {}, \"skewed\": {}, \
                 \"flipped\": {}, \"untrusted\": {}, \"base\": {{\"sound\": {}, \
                 \"misses\": {}, \"infinite_brackets\": {}, \"mean_coverage\": {:.4}, \
                 \"mean_width\": {}}}, \"degraded\": {}}}",
                if json_cocktail.is_empty() { "" } else { ",\n" },
                seed,
                impute,
                c.dead,
                c.skewed,
                c.flipped,
                c.untrusted,
                c.base_sound,
                c.base_misses,
                c.base_infinite,
                c.base_mean_coverage,
                width_json(c.base_finite, c.base_mean_width),
                c.degraded.json()
            );
        }

        let r = repair_cell(&scenario, &sampled, seed);
        total_isolated_exact += r.isolated_exact;
        println!(
            "{seed:>6} | repair: {} corrupted, {} unflips ({} byte-exact), \
             {} dedups ({} byte-exact), {} quarantined; isolated flips: \
             {}/{} exact, {} quarantined, {} undetected",
            r.corrupted,
            r.unflips,
            r.unflips_exact,
            r.dedups,
            r.dedups_exact,
            r.quarantined,
            r.isolated_exact,
            r.isolated_trials,
            r.isolated_quarantined,
            r.isolated_undetected
        );
        let _ = write!(
            json_repair,
            "{}    {{\"seed\": {}, \"corrupted\": {}, \"unflips\": {}, \"unflips_exact\": {}, \
             \"dedups\": {}, \"dedups_exact\": {}, \"quarantined\": {}, \
             \"isolated_trials\": {}, \"isolated_exact\": {}, \"isolated_quarantined\": {}, \
             \"isolated_undetected\": {}}}",
            if json_repair.is_empty() { "" } else { ",\n" },
            seed,
            r.corrupted,
            r.unflips,
            r.unflips_exact,
            r.dedups,
            r.dedups_exact,
            r.quarantined,
            r.isolated_trials,
            r.isolated_exact,
            r.isolated_quarantined,
            r.isolated_undetected
        );
    }

    assert!(
        total_isolated_exact > 0,
        "across all seeds, at least one isolated flip must be exactly repaired"
    );
    println!(
        "\nsoundness: {total_sound}/{total_asked} non-miss brackets contained the oracle \
         (a single violation aborts the sweep)"
    );

    let json = format!(
        "{{\n  \"bench\": \"sensor_failure_sweep\",\n  \"quick\": {},\n  \"scenario\": \
         {{\"junctions\": {}, \"objects\": {}, \"seeds\": {:?}}},\n  \"soundness\": \
         {{\"sound\": {}, \"asked\": {}}},\n  \"dead_sweep\": [\n{}\n  ],\n  \
         \"mixed_cocktail\": [\n{}\n  ],\n  \"exact_repair\": [\n{}\n  ]\n}}\n",
        quick,
        junctions,
        objects,
        seeds,
        total_sound,
        total_asked,
        json_sweep,
        json_cocktail,
        json_repair
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_sensors.json", &json).expect("write BENCH_sensors.json");
    println!("wrote results/BENCH_sensors.json");
}
