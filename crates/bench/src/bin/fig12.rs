//! Figure 12 — lower-bound relative error of **static** object-count
//! queries: (a) vs sampled-graph size at fixed query area ≈1.08%,
//! (b) vs query area at fixed graph size 6%.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin fig12
//! ```

use stq_bench::*;
use stq_core::prelude::*;

fn main() {
    println!("# Figure 12 — static object count, lower-bound relative error");
    println!("(median [P25,P75] over {} seeds; misses count as error 1.0)", SEEDS.len());

    let scenarios: Vec<Scenario> = parallel_map(SEEDS.len(), |i| paper_scenario(SEEDS[i]));
    let methods = Method::all();

    // (a) vs graph size.
    let series = sweep_graph_sizes(
        &scenarios,
        &methods,
        &GRAPH_SIZES,
        |s, si| s.make_queries(30, FIXED_QUERY_AREA, STATIC_WINDOW, SEEDS[si] ^ 0x9),
        QueryKind::Static,
    );
    print_table(
        "Fig 12a: static error vs sampled graph size (query area 1.08%)",
        "graph size",
        &GRAPH_SIZES,
        &series,
    );

    // (b) vs query area.
    let series_b = sweep_query_areas(
        &scenarios,
        &methods,
        &QUERY_AREAS,
        FIXED_GRAPH_SIZE,
        |s, si, area| s.make_queries(30, area, STATIC_WINDOW, SEEDS[si] ^ 0x77),
        QueryKind::Static,
    );
    print_table(
        "Fig 12b: static error vs query area (graph size 6%)",
        "query area",
        &QUERY_AREAS,
        &series_b,
    );
}
