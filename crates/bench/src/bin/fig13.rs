//! Figure 13 — query misses and upper-bound error:
//! (a) missed-query fraction vs graph size,
//! (b) missed-query fraction vs query area,
//! (c) upper-bound relative count (η̂/η ≥ 1) vs graph size,
//! (d) upper-bound relative count vs query area.
//!
//! ```sh
//! cargo run --release -p stq-bench --bin fig13
//! ```

use stq_bench::*;
use stq_core::prelude::*;

fn miss_rate(s: &Scenario, ev: &Evaluator, queries: &[(stq_core::QueryRegion, f64, f64)]) -> f64 {
    let misses = queries
        .iter()
        .filter(|(q, t0, _)| evaluate(s, ev, q, QueryKind::Snapshot(*t0)).miss)
        .count();
    misses as f64 / queries.len().max(1) as f64
}

/// Upper-bound ratio η̂/η (≥ 1 when answered); misses are skipped.
fn upper_ratios(
    s: &Scenario,
    ev: &Evaluator,
    queries: &[(stq_core::QueryRegion, f64, f64)],
) -> Vec<f64> {
    let Evaluator::Graph(g) = ev else { return Vec::new() };
    let mut out = Vec::new();
    for (q, t0, _) in queries {
        let kind = QueryKind::Snapshot(*t0);
        let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
        if truth.abs() < 1e-12 {
            continue;
        }
        let up = answer(&s.sensing, g, &s.tracked.store, q, kind, Approximation::Upper);
        if !up.miss {
            out.push(up.value / truth);
        }
    }
    out
}

fn main() {
    println!("# Figure 13 — query misses and upper-bound approximation");
    println!("(median [P25,P75] over {} seeds)", SEEDS.len());

    let scenarios: Vec<Scenario> = parallel_map(SEEDS.len(), |i| paper_scenario(SEEDS[i]));
    let methods = Method::all();
    // Upper-bound panels use the sampled-graph methods only (the baseline
    // has no upper-bound semantics).
    let graph_methods: Vec<Method> =
        methods.iter().copied().filter(|m| !matches!(m, Method::Baseline)).collect();

    // ------------------------------------------------------------ (a) & (c)
    let queries_a =
        |s: &Scenario, si: usize| s.make_queries(30, FIXED_QUERY_AREA, 2_000.0, SEEDS[si] ^ 0x5);

    let series_a: Vec<(String, Vec<Stats>)> = parallel_map(methods.len(), |mi| {
        let method = methods[mi];
        let col: Vec<Stats> = GRAPH_SIZES
            .iter()
            .map(|&size| {
                let rates: Vec<f64> = scenarios
                    .iter()
                    .enumerate()
                    .map(|(si, s)| {
                        let qs = queries_a(s, si);
                        let hist = regions_of(&qs);
                        let ev = build_evaluator(s, method, size, SEEDS[si] ^ 0x51, &hist);
                        miss_rate(s, &ev, &qs)
                    })
                    .collect();
                stats(&rates)
            })
            .collect();
        (method.label(), col)
    });
    print_table(
        "Fig 13a: missed queries (fraction) vs graph size (query area 1.08%)",
        "graph size",
        &GRAPH_SIZES,
        &series_a,
    );

    let series_c: Vec<(String, Vec<Stats>)> = parallel_map(graph_methods.len(), |mi| {
        let method = graph_methods[mi];
        let col: Vec<Stats> = GRAPH_SIZES
            .iter()
            .map(|&size| {
                let mut ratios = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    let qs = queries_a(s, si);
                    let hist = regions_of(&qs);
                    let ev = build_evaluator(s, method, size, SEEDS[si] ^ 0x51, &hist);
                    ratios.extend(upper_ratios(s, &ev, &qs));
                }
                stats(&ratios)
            })
            .collect();
        (method.label(), col)
    });
    print_table(
        "Fig 13c: upper-bound ratio η̂/η vs graph size (query area 1.08%)",
        "graph size",
        &GRAPH_SIZES,
        &series_c,
    );

    // ------------------------------------------------------------ (b) & (d)
    let queries_b =
        |s: &Scenario, si: usize, area: f64| s.make_queries(30, area, 2_000.0, SEEDS[si] ^ 0x25);
    // One evaluator per (method, scenario) at the fixed 6% size, knowing the
    // whole multi-area workload.
    let build_evs = |method: Method| -> Vec<Evaluator> {
        scenarios
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let mut hist = Vec::new();
                for &a in &QUERY_AREAS {
                    hist.extend(regions_of(&queries_b(s, si, a)));
                }
                build_evaluator(s, method, FIXED_GRAPH_SIZE, SEEDS[si] ^ 0x51, &hist)
            })
            .collect()
    };

    let series_b: Vec<(String, Vec<Stats>)> = parallel_map(methods.len(), |mi| {
        let method = methods[mi];
        let evs = build_evs(method);
        let col: Vec<Stats> = QUERY_AREAS
            .iter()
            .map(|&area| {
                let rates: Vec<f64> = scenarios
                    .iter()
                    .enumerate()
                    .map(|(si, s)| miss_rate(s, &evs[si], &queries_b(s, si, area)))
                    .collect();
                stats(&rates)
            })
            .collect();
        (method.label(), col)
    });
    print_table(
        "Fig 13b: missed queries (fraction) vs query area (graph size 6%)",
        "query area",
        &QUERY_AREAS,
        &series_b,
    );

    let series_d: Vec<(String, Vec<Stats>)> = parallel_map(graph_methods.len(), |mi| {
        let method = graph_methods[mi];
        let evs = build_evs(method);
        let col: Vec<Stats> = QUERY_AREAS
            .iter()
            .map(|&area| {
                let mut ratios = Vec::new();
                for (si, s) in scenarios.iter().enumerate() {
                    ratios.extend(upper_ratios(s, &evs[si], &queries_b(s, si, area)));
                }
                stats(&ratios)
            })
            .collect();
        (method.label(), col)
    });
    print_table(
        "Fig 13d: upper-bound ratio η̂/η vs query area (graph size 6%)",
        "query area",
        &QUERY_AREAS,
        &series_d,
    );
}
