//! Microbenchmark of submodular maximization (§4.4): naive greedy vs lazy
//! (CELF) greedy on weighted-coverage instances of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use stq_submod::{cost_benefit_greedy, greedy, lazy_greedy, CoverageObjective};

fn instance(items: usize, elements: usize, seed: u64) -> CoverageObjective {
    // Deterministic pseudo-random covers of ~8 elements each.
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let covers: Vec<Vec<usize>> =
        (0..items).map(|_| (0..8).map(|_| (next() % elements as u64) as usize).collect()).collect();
    let weights: Vec<f64> = (0..elements).map(|e| 1.0 + (e % 7) as f64).collect();
    CoverageObjective::new(covers, weights, vec![1.0; items])
}

fn submod(c: &mut Criterion) {
    let mut group = c.benchmark_group("submodular_greedy");
    group.sample_size(10);
    for &n in &[100usize, 300, 800] {
        let obj = instance(n, n * 4, 42);
        let budget = (n / 10) as f64;
        group.bench_with_input(BenchmarkId::new("naive", n), &obj, |b, o| {
            b.iter(|| std::hint::black_box(greedy(o, budget)))
        });
        group.bench_with_input(BenchmarkId::new("lazy_celf", n), &obj, |b, o| {
            b.iter(|| std::hint::black_box(lazy_greedy(o, budget, false)))
        });
        group.bench_with_input(BenchmarkId::new("cost_benefit", n), &obj, |b, o| {
            b.iter(|| std::hint::black_box(cost_benefit_greedy(o, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, submod);
criterion_main!(benches);
