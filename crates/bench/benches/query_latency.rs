//! Criterion microbenchmark behind Fig. 11d: per-query latency on the
//! sampled graph vs the unsampled graph vs the baseline, across query areas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use stq_bench::{build_evaluator, evaluate, Evaluator, Method};
use stq_core::prelude::*;

fn bench_scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        junctions: 500,
        mix: WorkloadMix { random_waypoint: 60, commuter: 60, transit: 30 },
        seed: 2024,
        ..Default::default()
    })
}

fn query_latency(c: &mut Criterion) {
    let s = bench_scenario();
    let sampled =
        build_evaluator(&s, Method::Sampling(stq_sampling::SamplingMethod::QuadTree), 0.06, 7, &[]);
    let unsampled = Evaluator::Graph(SampledGraph::unsampled(&s.sensing));
    let baseline = build_evaluator(&s, Method::Baseline, 0.06, 7, &[]);

    let mut group = c.benchmark_group("query_latency");
    group.sample_size(20);
    for &area in &[0.01, 0.04, 0.16] {
        let queries = s.make_queries(10, area, 2_000.0, 99);
        for (label, ev) in
            [("sampled6", &sampled), ("unsampled", &unsampled), ("baseline6", &baseline)]
        {
            group.bench_with_input(BenchmarkId::new(label, area), &queries, |b, qs| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for (q, t0, t1) in qs {
                        acc += evaluate(&s, ev, q, QueryKind::Transient(*t0, *t1)).value;
                    }
                    std::hint::black_box(acc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, query_latency);
criterion_main!(benches);
