//! Microbenchmark behind §4.8: per-edge cumulative-count lookups — binary
//! search over explicit timestamp logs vs O(1) model inference — plus model
//! fitting throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use stq_core::LearnedStore;
use stq_forms::{CountSource, FormStore};
use stq_learned::RegressorKind;

fn filled_store(events_per_edge: usize) -> FormStore {
    let mut s = FormStore::new(64);
    for e in 0..64 {
        let mut t = 0.0;
        for i in 0..events_per_edge {
            t += 1.0 + 0.4 * ((i * (e + 1)) as f64 * 0.01).sin();
            s.record(e, i % 3 != 0, t);
        }
    }
    s
}

fn edge_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_store_lookup");
    for &n in &[100usize, 1_000, 10_000] {
        let exact = filled_store(n);
        let probes: Vec<f64> = (0..256).map(|i| (i as f64 / 255.0) * n as f64).collect();
        group.bench_with_input(BenchmarkId::new("binary_search", n), &probes, |b, ps| {
            b.iter(|| {
                let mut acc = 0.0;
                for (i, &t) in ps.iter().enumerate() {
                    acc += exact.count_until(i % 64, true, t);
                }
                std::hint::black_box(acc)
            })
        });
        for kind in [RegressorKind::Linear, RegressorKind::PiecewiseLinear(8)] {
            let learned = LearnedStore::fit(&exact, None, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("model_{}", kind.label()), n),
                &probes,
                |b, ps| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for (i, &t) in ps.iter().enumerate() {
                            acc += learned.count_until(i % 64, true, t);
                        }
                        std::hint::black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();

    let mut fit_group = c.benchmark_group("edge_store_fit");
    fit_group.sample_size(20);
    let exact = filled_store(5_000);
    for kind in RegressorKind::standard_set() {
        fit_group.bench_function(kind.label(), |b| {
            b.iter(|| std::hint::black_box(LearnedStore::fit(&exact, None, kind)))
        });
    }
    fit_group.finish();
}

criterion_group!(benches, edge_store);
criterion_main!(benches);
