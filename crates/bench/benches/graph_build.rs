//! Microbenchmark of sampled-graph construction (§4.5): sampling, abstract
//! edge generation (triangulation vs k-NN) and shortest-path materialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use stq_core::prelude::*;
use stq_sampling::{sample, SamplingMethod};

fn graph_build(c: &mut Criterion) {
    let s = Scenario::build(ScenarioConfig {
        junctions: 500,
        mix: WorkloadMix { random_waypoint: 5, commuter: 5, transit: 5 },
        seed: 31,
        ..Default::default()
    });
    let cands = s.sensing.sensor_candidates();

    let mut group = c.benchmark_group("sampled_graph_build");
    group.sample_size(10);
    for &frac in &[0.06, 0.256] {
        let m = ((cands.len() as f64 * frac) as usize).max(3);
        let faces: Vec<usize> = sample(SamplingMethod::QuadTree, &cands, m, 7)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        for (label, conn) in
            [("triangulation", Connectivity::Triangulation), ("knn5", Connectivity::Knn(5))]
        {
            group.bench_with_input(BenchmarkId::new(label, frac), &faces, |b, f| {
                b.iter(|| std::hint::black_box(SampledGraph::from_sensors(&s.sensing, f, conn)))
            });
        }
    }
    // Submodular pipeline.
    let historical = s.historical_regions(50, 0.02, 3);
    group.bench_function("submodular_b300", |b| {
        b.iter(|| {
            std::hint::black_box(SampledGraph::from_submodular(&s.sensing, &historical, 300.0))
        })
    });
    group.finish();

    // Sampling methods alone.
    let mut sg = c.benchmark_group("sensor_sampling");
    for method in SamplingMethod::ALL {
        sg.bench_function(method.label(), |b| {
            b.iter(|| std::hint::black_box(sample(method, &cands, cands.len() / 10, 11)))
        });
    }
    sg.finish();
}

criterion_group!(benches, graph_build);
criterion_main!(benches);
