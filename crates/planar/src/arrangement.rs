//! Planarization of segment arrangements (paper §4.2).
//!
//! "We then generate the planarized graph by removing intersections from
//! underpasses and flyovers by inserting nodes at the intersections." Given a
//! soup of segments (raw map geometry), [`planarize`] inserts a vertex at
//! every crossing and splits the segments, yielding a plane graph suitable
//! for [`crate::embedding::Embedding::from_geometry`].
//!
//! The implementation is the straightforward O(n²) pairwise sweep — the
//! generators feed it thousands of segments at most, and correctness beats
//! asymptotics here.

use stq_geom::{segment_intersection, Point, Segment, SegmentIntersection};

/// Output of [`planarize`]: deduplicated vertices and non-crossing edges.
#[derive(Clone, Debug, Default)]
pub struct PlaneGraph {
    /// Deduplicated vertex coordinates.
    pub positions: Vec<Point>,
    /// Non-crossing edges as index pairs into `positions`.
    pub edges: Vec<(usize, usize)>,
}

/// Snapping tolerance: points closer than this merge into one vertex.
const SNAP: f64 = 1e-7;

struct VertexPool {
    positions: Vec<Point>,
    // Simple spatial hash for snapping.
    buckets: std::collections::HashMap<(i64, i64), Vec<usize>>,
}

impl VertexPool {
    fn new() -> Self {
        VertexPool { positions: Vec::new(), buckets: std::collections::HashMap::new() }
    }

    fn key(p: Point) -> (i64, i64) {
        ((p.x / (SNAP * 4.0)).round() as i64, (p.y / (SNAP * 4.0)).round() as i64)
    }

    fn intern(&mut self, p: Point) -> usize {
        let (kx, ky) = Self::key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cands) = self.buckets.get(&(kx + dx, ky + dy)) {
                    for &i in cands {
                        if self.positions[i].dist(p) <= SNAP {
                            return i;
                        }
                    }
                }
            }
        }
        let id = self.positions.len();
        self.positions.push(p);
        self.buckets.entry((kx, ky)).or_default().push(id);
        id
    }
}

/// Planarizes a set of segments: inserts vertices at all pairwise
/// intersections (including endpoint touches), splits segments there, snaps
/// coincident points, and drops zero-length and duplicate edges.
///
/// Collinear overlaps are handled by splitting at the overlap endpoints; the
/// shared portion becomes a single edge.
pub fn planarize(segments: &[Segment]) -> PlaneGraph {
    let n = segments.len();
    // Split parameters per segment, always including the endpoints.
    let mut cuts: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0, 1.0]).collect();

    for i in 0..n {
        for j in (i + 1)..n {
            match segment_intersection(&segments[i], &segments[j]) {
                SegmentIntersection::None => {}
                SegmentIntersection::Point { t, u, .. } => {
                    cuts[i].push(t);
                    cuts[j].push(u);
                }
                SegmentIntersection::Overlap { from, to } => {
                    for p in [from, to] {
                        cuts[i].push(param(&segments[i], p));
                        cuts[j].push(param(&segments[j], p));
                    }
                }
            }
        }
    }

    let mut pool = VertexPool::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        let c = &mut cuts[i];
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        c.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for w in 0..c.len() - 1 {
            let p = seg.at(c[w]);
            let q = seg.at(c[w + 1]);
            if p.dist(q) <= SNAP {
                continue;
            }
            let u = pool.intern(p);
            let v = pool.intern(q);
            if u != v {
                edges.push(if u < v { (u, v) } else { (v, u) });
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    PlaneGraph { positions: pool.positions, edges }
}

fn param(s: &Segment, p: Point) -> f64 {
    let d = s.b - s.a;
    let l2 = d.dot(d);
    if l2 <= f64::EPSILON {
        0.0
    } else {
        ((p - s.a).dot(d) / l2).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::Embedding;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn plus_sign_splits_both() {
        let g = planarize(&[seg(-1.0, 0.0, 1.0, 0.0), seg(0.0, -1.0, 0.0, 1.0)]);
        assert_eq!(g.positions.len(), 5); // 4 tips + centre
        assert_eq!(g.edges.len(), 4);
        let emb = Embedding::from_geometry(g.positions, g.edges).unwrap();
        assert_eq!(emb.euler_characteristic(), 2);
    }

    #[test]
    fn shared_endpoints_merge() {
        let g =
            planarize(&[seg(0.0, 0.0, 1.0, 0.0), seg(1.0, 0.0, 1.0, 1.0), seg(1.0, 1.0, 0.0, 0.0)]);
        assert_eq!(g.positions.len(), 3);
        assert_eq!(g.edges.len(), 3);
    }

    #[test]
    fn grid_of_segments() {
        // 3 horizontal × 3 vertical full-span lines → 9 crossings.
        let mut segs = Vec::new();
        for k in 0..3 {
            let c = k as f64;
            segs.push(seg(-0.5, c, 2.5, c));
            segs.push(seg(c, -0.5, c, 2.5));
        }
        let g = planarize(&segs);
        // 9 interior crossings + 12 tips.
        assert_eq!(g.positions.len(), 21);
        let emb = Embedding::from_geometry(g.positions, g.edges).unwrap();
        let faces = emb.faces();
        // 4 cells + outer face.
        assert_eq!(faces.walks.len(), 5);
    }

    #[test]
    fn collinear_overlap_dedupes() {
        let g = planarize(&[seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 3.0, 0.0)]);
        // Vertices 0,1,2,3 on a line; edges (0-1),(1-2),(2-3) with the
        // overlap (1-2) appearing once.
        assert_eq!(g.positions.len(), 4);
        assert_eq!(g.edges.len(), 3);
    }

    #[test]
    fn duplicate_segments_collapse() {
        let g = planarize(&[seg(0.0, 0.0, 1.0, 1.0), seg(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(g.positions.len(), 2);
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn empty_input() {
        let g = planarize(&[]);
        assert!(g.positions.is_empty());
        assert!(g.edges.is_empty());
    }

    #[test]
    fn x_crossing_with_t_junction() {
        let g = planarize(&[
            seg(0.0, 0.0, 2.0, 2.0),
            seg(0.0, 2.0, 2.0, 0.0),
            seg(1.0, 1.0, 1.0, 3.0), // T onto the crossing point
        ]);
        let emb = Embedding::from_geometry(g.positions.clone(), g.edges.clone()).unwrap();
        assert_eq!(emb.euler_characteristic(), 2);
        // Centre vertex has degree 5.
        let centre = g
            .positions
            .iter()
            .position(|p| p.dist(Point::new(1.0, 1.0)) < 1e-6)
            .expect("centre vertex exists");
        assert_eq!(emb.degree(centre), 5);
    }
}
