//! Dual graphs and subgraph faces.
//!
//! The paper's sensing graph `G` is the planar dual of the mobility graph
//! `⋆G` (§3.2.3): a sensor per road-network face, a communication link per
//! road. Vertex–edge duality means an object traversing road edge
//! `⋆e = (u, v)` crosses exactly the dual sensing edge `e`, moving from the
//! sensing cell of junction `u` to that of junction `v` — the crossing events
//! the tracking forms of §4.7 record.

use crate::embedding::{EdgeId, Embedding, FaceId, Faces, VertexId};
use crate::unionfind::UnionFind;

/// The dual of an embedded planar graph.
///
/// Dual vertices are primal faces; dual edge `e` reuses the index of primal
/// edge `e` and connects the faces on either side of it. Dual faces
/// correspond to primal vertices.
#[derive(Clone, Debug)]
pub struct DualGraph {
    /// Number of dual vertices (= primal faces).
    pub num_vertices: usize,
    /// For each primal edge `e`: `(face left of half-edge 2e, face left of
    /// half-edge 2e+1)` — the tail/head of dual edge `e`.
    pub edge_faces: Vec<(FaceId, FaceId)>,
}

impl DualGraph {
    /// Builds the dual of `emb` with faces `faces`.
    pub fn new(emb: &Embedding, faces: &Faces) -> Self {
        let edge_faces = (0..emb.num_edges())
            .map(|e| (faces.face_of[2 * e], faces.face_of[2 * e + 1]))
            .collect();
        DualGraph { num_vertices: faces.walks.len(), edge_faces }
    }

    /// Adjacency list of the dual graph: for each dual vertex (primal face),
    /// the list of `(neighbour_face, primal_edge)` pairs. Parallel edges and
    /// loops (from primal bridges) are preserved.
    pub fn adjacency(&self) -> Vec<Vec<(FaceId, EdgeId)>> {
        let mut adj: Vec<Vec<(FaceId, EdgeId)>> = vec![Vec::new(); self.num_vertices];
        for (e, &(f, g)) in self.edge_faces.iter().enumerate() {
            adj[f].push((g, e));
            if f != g {
                adj[g].push((f, e));
            }
        }
        adj
    }

    /// Materializes the dual as a full [`Embedding`] with rotations derived
    /// from the primal face walks. Dual vertices have no positions here;
    /// callers can attach face interior points afterwards.
    ///
    /// The faces of the returned embedding correspond one-to-one to the
    /// *non-isolated vertices* of the primal graph (tested).
    pub fn dual_embedding(&self, faces: &Faces) -> Embedding {
        let positions = vec![None; self.num_vertices];
        let edges: Vec<(VertexId, VertexId)> = self.edge_faces.clone();
        // Dual half-edge h originates at the face left of primal half-edge h,
        // so the rotation at dual vertex f is exactly f's face walk. The walk
        // traverses the face boundary counter-clockwise (interior faces);
        // seen *from the face's interior point*, the crossed edges appear in
        // counter-clockwise order as well, so the walk order is the rotation.
        let rotations: Vec<Vec<usize>> = faces.walks.clone();
        Embedding::from_rotations(positions, edges, rotations)
            .expect("dual rotations are a permutation of half-edges by construction")
    }
}

/// Faces of a subgraph `G̃ ⊆ G` of the dual, described on the primal side.
///
/// Removing a dual edge merges the two dual faces (primal vertices) it
/// separates, so the faces of `G̃` are the connected components of the primal
/// graph restricted to edges whose dual is *not* in `G̃`. Each face of the
/// sampled sensing graph is therefore a union of junction cells — exactly
/// the coarser cells the paper's sampled graph induces (§4.5–§4.6, Fig. 7).
#[derive(Clone, Debug)]
pub struct SubgraphFaces {
    /// Component (= sampled-graph face) id for each primal vertex.
    pub component_of: Vec<usize>,
    /// Primal vertices of each component.
    pub members: Vec<Vec<VertexId>>,
}

impl SubgraphFaces {
    /// Number of faces of the subgraph.
    pub fn num_faces(&self) -> usize {
        self.members.len()
    }
}

/// Computes the faces of the dual subgraph whose edge set is
/// `{e : monitored[e]}` (see [`SubgraphFaces`]).
///
/// `monitored.len()` must equal `emb.num_edges()`.
pub fn subgraph_faces(emb: &Embedding, monitored: &[bool]) -> SubgraphFaces {
    assert_eq!(monitored.len(), emb.num_edges(), "one flag per primal edge");
    let n = emb.num_vertices();
    let mut uf = UnionFind::new(n);
    for (e, &(u, v)) in emb.edges().iter().enumerate() {
        if !monitored[e] {
            uf.union(u, v);
        }
    }
    let (component_of, k) = uf.groups();
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, &c) in component_of.iter().enumerate() {
        members[c].push(v);
    }
    SubgraphFaces { component_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_geom::Point;

    fn grid(nx: usize, ny: usize) -> Embedding {
        let mut pos = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                pos.push(Point::new(x as f64, y as f64));
            }
        }
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    edges.push((i, i + 1));
                }
                if y + 1 < ny {
                    edges.push((i, i + nx));
                }
            }
        }
        Embedding::from_geometry(pos, edges).unwrap()
    }

    #[test]
    fn dual_of_grid_counts() {
        let emb = grid(4, 4);
        let faces = emb.faces();
        assert_eq!(faces.walks.len(), 10); // 9 cells + outer
        let dual = DualGraph::new(&emb, &faces);
        assert_eq!(dual.num_vertices, 10);
        assert_eq!(dual.edge_faces.len(), emb.num_edges());
        // Every interior cell of the grid has 4 dual neighbours.
        let adj = dual.adjacency();
        let outer = emb.outer_face(&faces).unwrap();
        for (f, a) in adj.iter().enumerate() {
            if f != outer {
                assert_eq!(a.len(), 4);
            }
        }
    }

    #[test]
    fn dual_faces_are_primal_vertices() {
        let emb = grid(4, 3);
        let faces = emb.faces();
        let dual = DualGraph::new(&emb, &faces);
        let demb = dual.dual_embedding(&faces);
        let dfaces = demb.faces();
        // Faces of the dual ↔ non-isolated primal vertices.
        assert_eq!(dfaces.walks.len(), emb.num_vertices());
        // Dual embedding still satisfies Euler's formula.
        assert_eq!(demb.euler_characteristic(), 2);
    }

    #[test]
    fn dual_of_triangle_has_loopless_multiedges() {
        // Triangle: 2 faces, 3 edges — the dual is a 2-vertex multigraph
        // with 3 parallel edges (a theta graph on the sphere).
        let emb = Embedding::from_geometry(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)],
            vec![(0, 1), (1, 2), (2, 0)],
        )
        .unwrap();
        let faces = emb.faces();
        let dual = DualGraph::new(&emb, &faces);
        assert_eq!(dual.num_vertices, 2);
        for &(f, g) in &dual.edge_faces {
            assert_ne!(f, g);
        }
        let demb = dual.dual_embedding(&faces);
        assert_eq!(demb.faces().walks.len(), 3); // = primal vertex count
    }

    #[test]
    fn bridge_dualizes_to_loop() {
        // Two triangles joined by a bridge: the bridge's dual is a loop.
        let emb = Embedding::from_geometry(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.5, 1.0),
                Point::new(3.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(3.5, 1.0),
            ],
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (1, 3)],
        )
        .unwrap();
        let faces = emb.faces();
        let dual = DualGraph::new(&emb, &faces);
        let loops: Vec<_> = dual.edge_faces.iter().filter(|&&(f, g)| f == g).collect();
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn subgraph_faces_full_and_empty() {
        let emb = grid(3, 3);
        // All edges monitored → faces of G̃ = faces of G = one junction each.
        let all = vec![true; emb.num_edges()];
        let sf = subgraph_faces(&emb, &all);
        assert_eq!(sf.num_faces(), emb.num_vertices());
        // No edges monitored → a single face containing every junction.
        let none = vec![false; emb.num_edges()];
        let sf0 = subgraph_faces(&emb, &none);
        assert_eq!(sf0.num_faces(), 1);
        assert_eq!(sf0.members[0].len(), emb.num_vertices());
    }

    #[test]
    fn subgraph_faces_cut_grid_in_half() {
        // Monitor the vertical "wall" of edges between columns 1 and 2 of a
        // 4x4 grid → exactly two components (left 2 columns, right 2).
        let nx = 4;
        let emb = grid(nx, 4);
        let mut monitored = vec![false; emb.num_edges()];
        for (e, &(u, v)) in emb.edges().iter().enumerate() {
            let (xu, xv) = (u % nx, v % nx);
            if (xu == 1 && xv == 2) || (xu == 2 && xv == 1) {
                monitored[e] = true;
            }
        }
        let sf = subgraph_faces(&emb, &monitored);
        assert_eq!(sf.num_faces(), 2);
        let left = sf.component_of[0];
        for v in 0..emb.num_vertices() {
            if v % nx < 2 {
                assert_eq!(sf.component_of[v], left);
            } else {
                assert_ne!(sf.component_of[v], left);
            }
        }
    }

    #[test]
    #[should_panic]
    fn subgraph_faces_length_mismatch_panics() {
        let emb = grid(2, 2);
        let _ = subgraph_faces(&emb, &[true]);
    }
}
