//! Rotation-system planar embeddings and face tracing.

use stq_geom::Point;

/// Index of a vertex in an [`Embedding`].
pub type VertexId = usize;
/// Index of an undirected edge in an [`Embedding`].
pub type EdgeId = usize;
/// Index of a half-edge: edge `e` owns half-edges `2e` (forward) and
/// `2e + 1` (backward).
pub type HalfEdgeId = usize;
/// Index of a face produced by [`Embedding::faces`].
pub type FaceId = usize;

/// A combinatorial planar embedding: a multigraph plus, for every vertex,
/// the counter-clockwise cyclic order of its incident half-edges.
///
/// Half-edge `2e` runs `tail(e) → head(e)`; `2e + 1` is its twin. Loops and
/// parallel edges are allowed (they arise naturally in dual graphs — a bridge
/// dualizes to a loop).
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Optional coordinates; purely combinatorial vertices (e.g. an external
    /// "infinity" junction) carry `None`.
    positions: Vec<Option<Point>>,
    /// Endpoints of each undirected edge as given at construction.
    edges: Vec<(VertexId, VertexId)>,
    /// Rotation: outgoing half-edges per vertex in CCW order.
    rotations: Vec<Vec<HalfEdgeId>>,
    /// For each half-edge, its index within the rotation of its origin.
    rot_index: Vec<usize>,
}

/// Faces of an embedding, as produced by [`Embedding::faces`].
#[derive(Clone, Debug)]
pub struct Faces {
    /// Face walks: each is the cyclic list of half-edges with that face on
    /// their left.
    pub walks: Vec<Vec<HalfEdgeId>>,
    /// Face id for every half-edge.
    pub face_of: Vec<FaceId>,
}

/// Errors from embedding construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmbeddingError {
    /// An edge referenced a vertex index out of range.
    VertexOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// The out-of-range vertex index it referenced.
        vertex: VertexId,
    },
    /// A rotation listed a half-edge whose origin is a different vertex.
    ForeignHalfEdge {
        /// The vertex whose rotation is invalid.
        vertex: VertexId,
        /// The half-edge that does not originate there.
        half_edge: HalfEdgeId,
    },
    /// Rotations do not mention each half-edge exactly once.
    BadRotationCover,
    /// A geometric construction saw an edge of (numerically) zero length.
    ZeroLengthEdge {
        /// The degenerate edge.
        edge: EdgeId,
    },
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::VertexOutOfRange { edge, vertex } => {
                write!(f, "edge {edge} references vertex {vertex} out of range")
            }
            EmbeddingError::ForeignHalfEdge { vertex, half_edge } => {
                write!(
                    f,
                    "rotation of vertex {vertex} lists half-edge {half_edge} not originating there"
                )
            }
            EmbeddingError::BadRotationCover => {
                write!(f, "rotations must mention every half-edge exactly once")
            }
            EmbeddingError::ZeroLengthEdge { edge } => {
                write!(f, "edge {edge} has zero length; cannot infer rotation angle")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl Embedding {
    /// Builds an embedding from vertex coordinates and an edge list by
    /// sorting each vertex's incident half-edges counter-clockwise by angle.
    ///
    /// The input must be a *plane* graph: edges are straight segments that
    /// intersect only at shared endpoints (run
    /// [`crate::arrangement::planarize`] first if unsure). Loops are rejected
    /// here because a straight loop has no angle; build them via
    /// [`Embedding::from_rotations`] if ever needed.
    pub fn from_geometry(
        positions: Vec<Point>,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<Self, EmbeddingError> {
        let n = positions.len();
        for (ei, &(u, v)) in edges.iter().enumerate() {
            if u >= n {
                return Err(EmbeddingError::VertexOutOfRange { edge: ei, vertex: u });
            }
            if v >= n {
                return Err(EmbeddingError::VertexOutOfRange { edge: ei, vertex: v });
            }
            if positions[u].dist2(positions[v]) < 1e-24 {
                return Err(EmbeddingError::ZeroLengthEdge { edge: ei });
            }
        }
        let mut rotations: Vec<Vec<HalfEdgeId>> = vec![Vec::new(); n];
        for (ei, &(u, v)) in edges.iter().enumerate() {
            rotations[u].push(2 * ei);
            rotations[v].push(2 * ei + 1);
        }
        for (vi, rot) in rotations.iter_mut().enumerate() {
            let p = positions[vi];
            rot.sort_by(|&h1, &h2| {
                let t1 = positions[Self::raw_target(&edges, h1)] - p;
                let t2 = positions[Self::raw_target(&edges, h2)] - p;
                t1.angle().partial_cmp(&t2.angle()).unwrap()
            });
        }
        Ok(Self::assemble(positions.into_iter().map(Some).collect(), edges, rotations))
    }

    /// Builds an embedding from explicit rotations (CCW half-edge order per
    /// vertex). Needed for combinatorial constructions such as dual graphs
    /// and external-vertex attachment, where coordinates may be absent.
    pub fn from_rotations(
        positions: Vec<Option<Point>>,
        edges: Vec<(VertexId, VertexId)>,
        rotations: Vec<Vec<HalfEdgeId>>,
    ) -> Result<Self, EmbeddingError> {
        let n = positions.len();
        for (ei, &(u, v)) in edges.iter().enumerate() {
            if u >= n {
                return Err(EmbeddingError::VertexOutOfRange { edge: ei, vertex: u });
            }
            if v >= n {
                return Err(EmbeddingError::VertexOutOfRange { edge: ei, vertex: v });
            }
        }
        let mut seen = vec![false; edges.len() * 2];
        for (vi, rot) in rotations.iter().enumerate() {
            for &h in rot {
                if h >= edges.len() * 2 || Self::raw_origin(&edges, h) != vi {
                    return Err(EmbeddingError::ForeignHalfEdge { vertex: vi, half_edge: h });
                }
                if seen[h] {
                    return Err(EmbeddingError::BadRotationCover);
                }
                seen[h] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(EmbeddingError::BadRotationCover);
        }
        Ok(Self::assemble(positions, edges, rotations))
    }

    fn assemble(
        positions: Vec<Option<Point>>,
        edges: Vec<(VertexId, VertexId)>,
        rotations: Vec<Vec<HalfEdgeId>>,
    ) -> Self {
        let mut rot_index = vec![0usize; edges.len() * 2];
        for rot in &rotations {
            for (i, &h) in rot.iter().enumerate() {
                rot_index[h] = i;
            }
        }
        Embedding { positions, edges, rotations, rot_index }
    }

    #[inline]
    fn raw_origin(edges: &[(VertexId, VertexId)], h: HalfEdgeId) -> VertexId {
        let (u, v) = edges[h / 2];
        if h % 2 == 0 {
            u
        } else {
            v
        }
    }

    #[inline]
    fn raw_target(edges: &[(VertexId, VertexId)], h: HalfEdgeId) -> VertexId {
        Self::raw_origin(edges, h ^ 1)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of half-edges (`2 × num_edges`).
    #[inline]
    pub fn num_half_edges(&self) -> usize {
        self.edges.len() * 2
    }

    /// Coordinates of vertex `v`, if it has any.
    #[inline]
    pub fn position(&self, v: VertexId) -> Option<Point> {
        self.positions[v]
    }

    /// All positions (indexed by vertex).
    #[inline]
    pub fn positions(&self) -> &[Option<Point>] {
        &self.positions
    }

    /// Endpoints of edge `e` as given at construction (tail, head).
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// The twin (opposite direction) of a half-edge.
    #[inline]
    pub fn twin(&self, h: HalfEdgeId) -> HalfEdgeId {
        h ^ 1
    }

    /// Underlying undirected edge of a half-edge.
    #[inline]
    pub fn edge_of(&self, h: HalfEdgeId) -> EdgeId {
        h / 2
    }

    /// Origin vertex of a half-edge.
    #[inline]
    pub fn origin(&self, h: HalfEdgeId) -> VertexId {
        Self::raw_origin(&self.edges, h)
    }

    /// Target vertex of a half-edge.
    #[inline]
    pub fn target(&self, h: HalfEdgeId) -> VertexId {
        Self::raw_origin(&self.edges, h ^ 1)
    }

    /// CCW rotation (outgoing half-edges) at vertex `v`.
    #[inline]
    pub fn rotation(&self, v: VertexId) -> &[HalfEdgeId] {
        &self.rotations[v]
    }

    /// Vertex degree (loops count twice).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.rotations[v].len()
    }

    /// Successor of `h` in the CCW rotation at its origin.
    #[inline]
    pub fn rot_next(&self, h: HalfEdgeId) -> HalfEdgeId {
        let rot = &self.rotations[self.origin(h)];
        let i = self.rot_index[h];
        rot[(i + 1) % rot.len()]
    }

    /// Predecessor of `h` in the CCW rotation at its origin.
    #[inline]
    pub fn rot_prev(&self, h: HalfEdgeId) -> HalfEdgeId {
        let rot = &self.rotations[self.origin(h)];
        let i = self.rot_index[h];
        rot[(i + rot.len() - 1) % rot.len()]
    }

    /// The next half-edge along the face on the left of `h`.
    ///
    /// With CCW rotations this traverses interior faces counter-clockwise
    /// and the outer face clockwise.
    #[inline]
    pub fn face_next(&self, h: HalfEdgeId) -> HalfEdgeId {
        self.rot_prev(self.twin(h))
    }

    /// Extracts all faces by tracing [`Embedding::face_next`] orbits.
    pub fn faces(&self) -> Faces {
        let nh = self.num_half_edges();
        let mut face_of = vec![usize::MAX; nh];
        let mut walks: Vec<Vec<HalfEdgeId>> = Vec::new();
        for start in 0..nh {
            if face_of[start] != usize::MAX {
                continue;
            }
            let fid = walks.len();
            let mut walk = Vec::new();
            let mut h = start;
            loop {
                debug_assert_eq!(face_of[h], usize::MAX);
                face_of[h] = fid;
                walk.push(h);
                h = self.face_next(h);
                if h == start {
                    break;
                }
            }
            walks.push(walk);
        }
        Faces { walks, face_of }
    }

    /// Signed area of a face walk (requires all vertices on the walk to have
    /// positions). Interior faces of a CCW-rotation embedding are positive;
    /// the outer face is negative.
    pub fn face_signed_area(&self, walk: &[HalfEdgeId]) -> Option<f64> {
        let mut s = 0.0;
        for &h in walk {
            let p = self.position(self.origin(h))?;
            let q = self.position(self.target(h))?;
            s += p.cross(q);
        }
        Some(s * 0.5)
    }

    /// Vertex loop of a face walk (origin of each half-edge, in order).
    pub fn face_vertices(&self, walk: &[HalfEdgeId]) -> Vec<VertexId> {
        walk.iter().map(|&h| self.origin(h)).collect()
    }

    /// Euler characteristic `V − E + F` of the embedding, counting each
    /// connected component's sphere: for a connected planar embedding this
    /// is 2. Isolated vertices are ignored.
    pub fn euler_characteristic(&self) -> i64 {
        let f = self.faces().walks.len() as i64;
        let e = self.num_edges() as i64;
        let mut touched = vec![false; self.num_vertices()];
        for &(u, v) in &self.edges {
            touched[u] = true;
            touched[v] = true;
        }
        let v = touched.iter().filter(|&&t| t).count() as i64;
        v - e + f
    }

    /// Checks the embedding is planar and connected (Euler characteristic 2,
    /// single connected component over non-isolated vertices).
    pub fn is_planar_connected(&self) -> bool {
        self.euler_characteristic() == 2 && self.connected_components_nonisolated() == 1
    }

    fn connected_components_nonisolated(&self) -> usize {
        let mut uf = crate::unionfind::UnionFind::new(self.num_vertices());
        for &(u, v) in &self.edges {
            uf.union(u, v);
        }
        let mut touched = vec![false; self.num_vertices()];
        for &(u, v) in &self.edges {
            touched[u] = true;
            touched[v] = true;
        }
        let mut roots: Vec<usize> =
            (0..self.num_vertices()).filter(|&v| touched[v]).map(|v| uf.find(v)).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// Identifies the outer face: the unique face with negative signed area.
    /// Returns `None` if no face has full geometry or none is negative.
    pub fn outer_face(&self, faces: &Faces) -> Option<FaceId> {
        let mut best: Option<(f64, FaceId)> = None;
        for (fid, walk) in faces.walks.iter().enumerate() {
            if let Some(a) = self.face_signed_area(walk) {
                if a < 0.0 && best.map(|(ba, _)| a < ba).unwrap_or(true) {
                    best = Some((a, fid));
                }
            }
        }
        best.map(|(_, f)| f)
    }

    /// Euclidean length of edge `e`; `None` when an endpoint lacks a
    /// position.
    pub fn edge_length(&self, e: EdgeId) -> Option<f64> {
        let (u, v) = self.edges[e];
        Some(self.position(u)?.dist(self.position(v)?))
    }

    /// Attaches a new position-less vertex inside the face `face` (given by
    /// its walk), connected to the listed *distinct* vertices, which must lie
    /// on that face walk. Returns the new vertex id.
    ///
    /// This is how the external "infinity" junction `⋆v_ext` of the paper
    /// (Fig. 8a) is spliced into the outer face of a road network: the new
    /// edges are inserted into each attachment vertex's rotation at the
    /// position of the face walk, preserving planarity combinatorially.
    pub fn attach_vertex_in_face(
        &self,
        faces: &Faces,
        face: FaceId,
        attach_to: &[VertexId],
    ) -> Result<(Embedding, VertexId), EmbeddingError> {
        let walk = &faces.walks[face];
        // Locate, for each attachment vertex, a half-edge of the face walk
        // originating there; the new half-edge is inserted just before it in
        // the rotation, which keeps it inside `face`.
        let mut positions = self.positions.clone();
        let new_v = positions.len();
        positions.push(None);

        let mut edges = self.edges.clone();
        let mut rotations = self.rotations.clone();
        rotations.push(Vec::new());

        // Order attachments by their first occurrence along the face walk so
        // the rotation at the new vertex is consistent with the face cycle.
        let mut ordered: Vec<(usize, VertexId, HalfEdgeId)> = Vec::new();
        for &v in attach_to {
            let found = walk
                .iter()
                .enumerate()
                .find(|&(_, &h)| self.origin(h) == v)
                .map(|(i, &h)| (i, v, h));
            match found {
                Some(t) => ordered.push(t),
                None => {
                    return Err(EmbeddingError::ForeignHalfEdge {
                        vertex: v,
                        half_edge: usize::MAX,
                    })
                }
            }
        }
        ordered.sort_by_key(|&(i, _, _)| i);

        for &(_, v, h_at_v) in &ordered {
            let ei = edges.len();
            edges.push((new_v, v)); // half-edge 2ei: new_v -> v ; 2ei+1: v -> new_v
                                    // The face's angular corner at `v` lies immediately after
                                    // `h_at_v` in CCW rotation order (face_next(h_prev) = h_at_v
                                    // means h_at_v = rot_prev(twin(h_prev))). Inserting the new
                                    // half-edge there keeps it inside `face`.
            let rot = &mut rotations[v];
            let pos = rot.iter().position(|&x| x == h_at_v).expect("h in rotation");
            rot.insert(pos + 1, 2 * ei + 1);
            // At the new vertex the attachments appear in face-walk order.
            rotations[new_v].push(2 * ei);
        }

        Ok((Self::assemble(positions, edges, rotations), new_v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Embedding {
        Embedding::from_geometry(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)],
            vec![(0, 1), (1, 2), (2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn triangle_faces() {
        let emb = triangle();
        let faces = emb.faces();
        assert_eq!(faces.walks.len(), 2);
        let outer = emb.outer_face(&faces).unwrap();
        let inner = 1 - outer;
        assert!(emb.face_signed_area(&faces.walks[inner]).unwrap() > 0.0);
        assert!((emb.face_signed_area(&faces.walks[inner]).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(faces.walks[inner].len(), 3);
        assert_eq!(emb.euler_characteristic(), 2);
    }

    #[test]
    fn square_with_diagonal() {
        let emb = Embedding::from_geometry(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let faces = emb.faces();
        assert_eq!(faces.walks.len(), 3); // two triangles + outer
        assert_eq!(emb.euler_characteristic(), 2);
        let outer = emb.outer_face(&faces).unwrap();
        let inner_areas: Vec<f64> = (0..3)
            .filter(|&f| f != outer)
            .map(|f| emb.face_signed_area(&faces.walks[f]).unwrap())
            .collect();
        assert!(inner_areas.iter().all(|&a| (a - 0.5).abs() < 1e-12));
    }

    #[test]
    fn grid_euler() {
        // 3x3 grid of vertices, lattice edges.
        let mut pos = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                pos.push(Point::new(x as f64, y as f64));
            }
        }
        let mut edges = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    edges.push((i, i + 1));
                }
                if y + 1 < 3 {
                    edges.push((i, i + 3));
                }
            }
        }
        let emb = Embedding::from_geometry(pos, edges).unwrap();
        let faces = emb.faces();
        assert_eq!(faces.walks.len(), 5); // 4 cells + outer
        assert_eq!(emb.euler_characteristic(), 2);
        assert!(emb.is_planar_connected());
    }

    #[test]
    fn face_of_covers_all_half_edges() {
        let emb = triangle();
        let faces = emb.faces();
        assert_eq!(faces.face_of.len(), emb.num_half_edges());
        assert!(faces.face_of.iter().all(|&f| f < faces.walks.len()));
        let total: usize = faces.walks.iter().map(|w| w.len()).sum();
        assert_eq!(total, emb.num_half_edges());
    }

    #[test]
    fn path_graph_single_face() {
        // A path (tree) has exactly one face.
        let emb = Embedding::from_geometry(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.3)],
            vec![(0, 1), (1, 2)],
        )
        .unwrap();
        let faces = emb.faces();
        assert_eq!(faces.walks.len(), 1);
        assert_eq!(faces.walks[0].len(), 4);
        assert_eq!(emb.euler_characteristic(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            Embedding::from_geometry(vec![Point::ORIGIN], vec![(0, 1)]),
            Err(EmbeddingError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Embedding::from_geometry(vec![Point::ORIGIN, Point::ORIGIN], vec![(0, 1)]),
            Err(EmbeddingError::ZeroLengthEdge { .. })
        ));
        // Rotation missing a half-edge.
        assert!(matches!(
            Embedding::from_rotations(
                vec![Some(Point::ORIGIN), Some(Point::new(1.0, 0.0))],
                vec![(0, 1)],
                vec![vec![0], vec![]],
            ),
            Err(EmbeddingError::BadRotationCover)
        ));
    }

    #[test]
    fn attach_external_vertex() {
        let emb = triangle();
        let faces = emb.faces();
        let outer = emb.outer_face(&faces).unwrap();
        let (emb2, v_ext) = emb.attach_vertex_in_face(&faces, outer, &[0, 1, 2]).unwrap();
        assert_eq!(v_ext, 3);
        assert_eq!(emb2.num_edges(), 6);
        assert!(emb2.position(v_ext).is_none());
        // Still planar: V=4, E=6, F must be 4 (Euler).
        let f2 = emb2.faces();
        assert_eq!(f2.walks.len(), 4);
        assert_eq!(emb2.euler_characteristic(), 2);
        // The original interior face must be untouched: one face still has
        // positive area 0.5 (the triangle interior).
        let has_interior = f2
            .walks
            .iter()
            .any(|w| emb2.face_signed_area(w).map(|a| (a - 0.5).abs() < 1e-12).unwrap_or(false));
        assert!(has_interior);
    }

    #[test]
    fn attach_subset_of_face_vertices() {
        let emb = triangle();
        let faces = emb.faces();
        let outer = emb.outer_face(&faces).unwrap();
        let (emb2, _) = emb.attach_vertex_in_face(&faces, outer, &[0, 2]).unwrap();
        assert_eq!(emb2.euler_characteristic(), 2);
        assert_eq!(emb2.faces().walks.len(), 3);
    }

    #[test]
    fn rot_next_prev_inverse() {
        let emb = triangle();
        for h in 0..emb.num_half_edges() {
            assert_eq!(emb.rot_prev(emb.rot_next(h)), h);
            assert_eq!(emb.rot_next(emb.rot_prev(h)), h);
        }
    }

    #[test]
    fn face_next_orbits_partition() {
        let emb = triangle();
        // Applying face_next repeatedly must return to the start.
        for h in 0..emb.num_half_edges() {
            let mut cur = h;
            let mut steps = 0;
            loop {
                cur = emb.face_next(cur);
                steps += 1;
                assert!(steps <= emb.num_half_edges());
                if cur == h {
                    break;
                }
            }
        }
    }
}
