//! Shortest paths and connectivity over adjacency lists.
//!
//! The sampled sensing graph materializes its abstract edges as shortest
//! paths between selected sensors in the full sensing graph `G` (paper §4.5);
//! this module supplies the Dijkstra machinery, generic over any adjacency
//! list, so it serves both the dual (sensor) graph and the road graph.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A weighted adjacency list: `adj[u]` lists `(v, edge_id, weight)`.
pub type WeightedAdj = Vec<Vec<(usize, usize, f64)>>;

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path tree from `source`.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Distance from the source (`f64::INFINITY` when unreachable).
    pub dist: Vec<f64>,
    /// Predecessor `(node, edge_id)` on the shortest path, `usize::MAX`
    /// sentinels at the source / unreachable nodes.
    pub prev: Vec<(usize, usize)>,
}

impl ShortestPaths {
    /// Reconstructs the path `source → target` as `(vertices, edge_ids)`.
    /// Returns `None` when `target` is unreachable.
    pub fn path_to(&self, target: usize) -> Option<(Vec<usize>, Vec<usize>)> {
        if !self.dist[target].is_finite() {
            return None;
        }
        let mut verts = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while self.prev[cur].0 != usize::MAX {
            let (p, e) = self.prev[cur];
            verts.push(p);
            edges.push(e);
            cur = p;
        }
        verts.reverse();
        edges.reverse();
        Some((verts, edges))
    }
}

/// Dijkstra from `source` over a weighted adjacency list. Negative weights
/// are rejected with a panic (programming error).
pub fn dijkstra(adj: &WeightedAdj, source: usize) -> ShortestPaths {
    let n = adj.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![(usize::MAX, usize::MAX); n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: source });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, e, w) in &adj[u] {
            assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = (u, e);
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { dist, prev }
}

/// Dijkstra that stops as soon as `target` is settled; cheaper when only one
/// path is needed.
pub fn dijkstra_to(
    adj: &WeightedAdj,
    source: usize,
    target: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let n = adj.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![(usize::MAX, usize::MAX); n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: source });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if u == target {
            break;
        }
        if d > dist[u] {
            continue;
        }
        for &(v, e, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = (u, e);
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { dist, prev }.path_to(target)
}

/// Breadth-first distances (hop counts) from `source` over an unweighted
/// adjacency list; `usize::MAX` marks unreachable nodes.
pub fn bfs_hops(adj: &[Vec<usize>], source: usize) -> Vec<usize> {
    let n = adj.len();
    let mut hops = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if hops[v] == usize::MAX {
                hops[v] = hops[u] + 1;
                queue.push_back(v);
            }
        }
    }
    hops
}

/// Mean shortest-path hop count over `samples` random source pairs — the
/// `ℓ_G` of the paper's cost model (§4.9). Deterministic given `seed`.
pub fn mean_path_length(adj: &[Vec<usize>], samples: usize, seed: u64) -> f64 {
    let n = adj.len();
    if n < 2 {
        return 0.0;
    }
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut total = 0.0;
    let mut count = 0usize;
    for _ in 0..samples {
        let s = (next() % n as u64) as usize;
        let hops = bfs_hops(adj, s);
        let t = (next() % n as u64) as usize;
        if hops[t] != usize::MAX && t != s {
            total += hops[t] as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedAdj {
        // 0 -1- 1 -1- 3 ; 0 -1- 2 -0.5- 3
        let mut adj: WeightedAdj = vec![Vec::new(); 4];
        let add = |adj: &mut WeightedAdj, u: usize, v: usize, e: usize, w: f64| {
            adj[u].push((v, e, w));
            adj[v].push((u, e, w));
        };
        add(&mut adj, 0, 1, 0, 1.0);
        add(&mut adj, 1, 3, 1, 1.0);
        add(&mut adj, 0, 2, 2, 1.0);
        add(&mut adj, 2, 3, 3, 0.5);
        adj
    }

    #[test]
    fn dijkstra_picks_cheaper_route() {
        let adj = diamond();
        let sp = dijkstra(&adj, 0);
        assert_eq!(sp.dist[3], 1.5);
        let (verts, edges) = sp.path_to(3).unwrap();
        assert_eq!(verts, vec![0, 2, 3]);
        assert_eq!(edges, vec![2, 3]);
    }

    #[test]
    fn dijkstra_to_matches_full() {
        let adj = diamond();
        let p = dijkstra_to(&adj, 0, 3).unwrap();
        assert_eq!(p.0, vec![0, 2, 3]);
    }

    #[test]
    fn unreachable() {
        let mut adj = diamond();
        adj.push(Vec::new()); // isolated node 4
        let sp = dijkstra(&adj, 0);
        assert!(sp.dist[4].is_infinite());
        assert!(sp.path_to(4).is_none());
        assert!(dijkstra_to(&adj, 0, 4).is_none());
    }

    #[test]
    fn source_path_is_trivial() {
        let adj = diamond();
        let sp = dijkstra(&adj, 2);
        let (verts, edges) = sp.path_to(2).unwrap();
        assert_eq!(verts, vec![2]);
        assert!(edges.is_empty());
    }

    #[test]
    fn bfs_hops_ring() {
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n, (i + n - 1) % n]).collect();
        let hops = bfs_hops(&adj, 0);
        assert_eq!(hops, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn mean_path_length_ring_reasonable() {
        let n = 32;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n, (i + n - 1) % n]).collect();
        let l = mean_path_length(&adj, 200, 7);
        // Expected mean hop distance on a 32-ring is 32/4 = 8.
        assert!(l > 5.0 && l < 11.0, "got {l}");
    }
}
