//! Oriented 1-chains and the boundary operator `∂` (paper §3.4).
//!
//! A 1-chain is a linear combination of oriented edges. Differential 1-forms
//! (in `stq-forms`) are evaluated by integrating along chains:
//! `ξ(C) = Σ_{e ∈ C} λ_e ξ(e)` with `ξ(−e) = −ξ(e)`.

use crate::embedding::{EdgeId, Embedding, FaceId, Faces};
use std::collections::HashMap;

/// An oriented edge with an integer coefficient.
///
/// `forward = true` means the edge taken in its construction direction
/// (tail → head); `false` is the reversed edge `−e`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignedEdge {
    /// The undirected edge carrying the coefficient.
    pub edge: EdgeId,
    /// Orientation: construction direction (`true`) or reversed `−e`.
    pub forward: bool,
    /// Integer multiplicity of the oriented edge in the chain.
    pub coeff: i64,
}

/// A 1-chain: a sparse signed sum of oriented edges, kept in canonical form
/// (each edge appears once, with its *forward* orientation and a possibly
/// negative coefficient; zero coefficients are dropped).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Chain {
    coeffs: HashMap<EdgeId, i64>,
}

impl Chain {
    /// The empty chain.
    pub fn new() -> Self {
        Chain::default()
    }

    /// Builds a chain from signed edges.
    pub fn from_signed_edges(edges: impl IntoIterator<Item = SignedEdge>) -> Self {
        let mut c = Chain::new();
        for se in edges {
            c.add(se);
        }
        c
    }

    /// Adds a signed edge.
    pub fn add(&mut self, se: SignedEdge) {
        let delta = if se.forward { se.coeff } else { -se.coeff };
        let entry = self.coeffs.entry(se.edge).or_insert(0);
        *entry += delta;
        if *entry == 0 {
            self.coeffs.remove(&se.edge);
        }
    }

    /// Adds another chain into this one.
    pub fn add_chain(&mut self, other: &Chain) {
        for (&e, &c) in &other.coeffs {
            let entry = self.coeffs.entry(e).or_insert(0);
            *entry += c;
            if *entry == 0 {
                self.coeffs.remove(&e);
            }
        }
    }

    /// Coefficient of the forward orientation of `edge` (0 when absent).
    pub fn coeff(&self, edge: EdgeId) -> i64 {
        self.coeffs.get(&edge).copied().unwrap_or(0)
    }

    /// Number of edges with non-zero coefficient.
    pub fn support_len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Iterates `(edge, coefficient)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, i64)> + '_ {
        self.coeffs.iter().map(|(&e, &c)| (e, c))
    }

    /// The chain with all orientations flipped.
    pub fn negated(&self) -> Chain {
        Chain { coeffs: self.coeffs.iter().map(|(&e, &c)| (e, -c)).collect() }
    }

    /// Boundary chain `∂σ` of a single face: the face walk as a 1-chain,
    /// oriented counter-clockwise for interior faces (the paper's
    /// convention, §3.4).
    pub fn face_boundary(emb: &Embedding, faces: &Faces, face: FaceId) -> Chain {
        let mut c = Chain::new();
        for &h in &faces.walks[face] {
            c.add(SignedEdge { edge: emb.edge_of(h), forward: h % 2 == 0, coeff: 1 });
        }
        c
    }

    /// Boundary chain of a union of faces. Edges interior to the union
    /// cancel (they appear once per orientation), leaving only the perimeter
    /// — the discrete analogue of Stokes cancellation that makes the
    /// double-counting fix of Theorem 4.1 work.
    pub fn region_boundary(emb: &Embedding, faces: &Faces, region: &[FaceId]) -> Chain {
        let mut c = Chain::new();
        for &f in region {
            c.add_chain(&Self::face_boundary(emb, faces, f));
        }
        c
    }
}

/// `∂∂ = 0`: the boundary of a 1-chain as a 0-chain (vertex multiset with
/// signs). Exposed for tests: the boundary of any *face* boundary is zero.
pub fn vertex_boundary(emb: &Embedding, chain: &Chain) -> HashMap<usize, i64> {
    let mut out: HashMap<usize, i64> = HashMap::new();
    for (e, c) in chain.iter() {
        let (u, v) = emb.edge_endpoints(e);
        *out.entry(v).or_insert(0) += c;
        *out.entry(u).or_insert(0) -= c;
    }
    out.retain(|_, c| *c != 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_geom::Point;

    fn square_with_diagonal() -> (Embedding, Faces) {
        let emb = Embedding::from_geometry(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        .unwrap();
        let faces = emb.faces();
        (emb, faces)
    }

    #[test]
    fn face_boundary_is_cycle() {
        let (emb, faces) = square_with_diagonal();
        for f in 0..faces.walks.len() {
            let c = Chain::face_boundary(&emb, &faces, f);
            assert!(vertex_boundary(&emb, &c).is_empty(), "∂∂ must vanish");
        }
    }

    #[test]
    fn interior_edges_cancel_in_region_boundary() {
        let (emb, faces) = square_with_diagonal();
        let outer = emb.outer_face(&faces).unwrap();
        let interior: Vec<usize> = (0..faces.walks.len()).filter(|&f| f != outer).collect();
        assert_eq!(interior.len(), 2);
        let region = Chain::region_boundary(&emb, &faces, &interior);
        // The diagonal (edge 4) must cancel; the 4 square sides remain.
        assert_eq!(region.coeff(4), 0);
        assert_eq!(region.support_len(), 4);
        for e in 0..4 {
            assert_eq!(region.coeff(e).abs(), 1);
        }
        assert!(vertex_boundary(&emb, &region).is_empty());
    }

    #[test]
    fn union_of_all_faces_is_zero() {
        // Every edge borders exactly two faces with opposite orientations,
        // so summing all face boundaries (outer included) yields 0.
        let (emb, faces) = square_with_diagonal();
        let all: Vec<usize> = (0..faces.walks.len()).collect();
        let c = Chain::region_boundary(&emb, &faces, &all);
        assert!(c.is_zero());
    }

    #[test]
    fn chain_arithmetic() {
        let mut c = Chain::new();
        c.add(SignedEdge { edge: 3, forward: true, coeff: 2 });
        c.add(SignedEdge { edge: 3, forward: false, coeff: 2 });
        assert!(c.is_zero());
        c.add(SignedEdge { edge: 1, forward: false, coeff: 1 });
        assert_eq!(c.coeff(1), -1);
        let n = c.negated();
        assert_eq!(n.coeff(1), 1);
        let mut sum = c.clone();
        sum.add_chain(&n);
        assert!(sum.is_zero());
    }

    #[test]
    fn face_boundary_orientation_matches_walk() {
        let (emb, faces) = square_with_diagonal();
        let outer = emb.outer_face(&faces).unwrap();
        for f in 0..faces.walks.len() {
            if f == outer {
                continue;
            }
            // Interior faces walk CCW → positive area.
            assert!(emb.face_signed_area(&faces.walks[f]).unwrap() > 0.0);
        }
    }
}
