//! Union-find (disjoint set union) with path compression and union by rank.

/// A classic disjoint-set-union structure.
///
/// Used to compute faces of sampled subgraphs: the faces of `G̃ ⊆ G` are the
/// connected components of the primal (road) graph after removing the roads
/// monitored by `G̃` (see `stq-planar::dual::subgraph_faces`).
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns true when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Compacts set representatives into dense group ids `0..k`; returns
    /// `(group_of_element, k)`.
    pub fn groups(&mut self) -> (Vec<usize>, usize) {
        let n = self.parent.len();
        let mut map = vec![usize::MAX; n];
        let mut out = Vec::with_capacity(n);
        let mut k = 0;
        for i in 0..n {
            let r = self.find(i);
            if map[r] == usize::MAX {
                map[r] = k;
                k += 1;
            }
            out.push(map[r]);
        }
        (out, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn groups_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let (g, k) = uf.groups();
        assert_eq!(k, 3);
        assert_eq!(g[0], g[2]);
        assert_eq!(g[2], g[4]);
        assert_eq!(g[1], g[5]);
        assert_ne!(g[0], g[1]);
        assert_ne!(g[0], g[3]);
        assert!(g.iter().all(|&x| x < 3));
    }

    #[test]
    fn empty_and_singleton() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.groups().1, 0);
        let mut uf1 = UnionFind::new(1);
        assert_eq!(uf1.find(0), 0);
        assert_eq!(uf1.num_components(), 1);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.find(0), uf.find(n - 1));
    }
}
