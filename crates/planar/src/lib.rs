//! # stq-planar
//!
//! Planar-graph machinery: the combinatorial backbone of the framework
//! (paper §3.2–§3.4).
//!
//! A planar graph is stored as a **rotation system** ([`Embedding`]): each
//! vertex keeps its incident half-edges in counter-clockwise angular order.
//! Faces fall out of the face-tracing rule `next(h) = rot_prev(twin(h))`,
//! with interior faces traversed counter-clockwise — the paper's orientation
//! convention for 2-cells (§3.4, Fig. 3).
//!
//! On top of the embedding this crate provides:
//!
//! - face extraction and Euler-formula validation ([`Embedding::faces`],
//!   [`Faces`]),
//! - **dual graph** construction ([`dual::DualGraph`]) realizing the
//!   mobility-graph / sensing-graph duality of §3.2.3 (vertex ↔ face,
//!   edge ↔ edge),
//! - faces of an arbitrary **subgraph** via union-find over the
//!   complementary primal edges ([`dual::subgraph_faces`]) — how sampled
//!   sensing graphs `G̃` partition space into coarser cells (§4.5–§4.6),
//! - oriented 1-chains and the boundary operator `∂` ([`chain`]),
//! - shortest paths / connectivity utilities ([`paths`]),
//! - planarization of segment arrangements ([`arrangement`]) used when
//!   constructing planar mobility graphs from raw map geometry (§4.2).

pub mod arrangement;
pub mod chain;
pub mod dual;
pub mod embedding;
pub mod paths;
pub mod unionfind;

pub use chain::{Chain, SignedEdge};
pub use dual::{subgraph_faces, DualGraph, SubgraphFaces};
pub use embedding::{Embedding, FaceId, Faces, HalfEdgeId, VertexId};
pub use unionfind::UnionFind;
