//! Property tests on planar-graph machinery, driven by random Delaunay
//! cities (always-valid plane graphs).

use proptest::prelude::*;
use stq_geom::{triangulate, Point};
use stq_planar::chain::{vertex_boundary, Chain};
use stq_planar::dual::{subgraph_faces, DualGraph};
use stq_planar::Embedding;

fn delaunay_embedding() -> impl Strategy<Value = Embedding> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..40).prop_filter_map(
        "triangulable point set",
        |pts| {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let tri = triangulate(&points);
            if tri.triangles.is_empty() {
                return None;
            }
            // Drop isolated vertices (collinear leftovers break connectivity).
            let edges = tri.edges();
            let mut used: Vec<bool> = vec![false; points.len()];
            for &(u, v) in &edges {
                used[u] = true;
                used[v] = true;
            }
            if used.iter().any(|&u| !u) {
                return None;
            }
            Embedding::from_geometry(points, edges).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn euler_formula_holds(emb in delaunay_embedding()) {
        prop_assert_eq!(emb.euler_characteristic(), 2);
        prop_assert!(emb.is_planar_connected());
    }

    #[test]
    fn faces_partition_half_edges(emb in delaunay_embedding()) {
        let faces = emb.faces();
        let total: usize = faces.walks.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, emb.num_half_edges());
        // Exactly one negative-area face: the outer one.
        let negatives = faces
            .walks
            .iter()
            .filter(|w| emb.face_signed_area(w).map(|a| a < 0.0).unwrap_or(false))
            .count();
        prop_assert_eq!(negatives, 1);
    }

    #[test]
    fn interior_face_areas_sum_to_outer(emb in delaunay_embedding()) {
        // Σ signed areas over all faces = 0 (the outer face walk encloses
        // the same region negatively).
        let faces = emb.faces();
        let sum: f64 = faces
            .walks
            .iter()
            .filter_map(|w| emb.face_signed_area(w))
            .sum();
        prop_assert!(sum.abs() < 1e-6 * (1.0 + sum.abs()));
    }

    #[test]
    fn dual_faces_are_primal_vertices(emb in delaunay_embedding()) {
        let faces = emb.faces();
        let dual = DualGraph::new(&emb, &faces);
        let demb = dual.dual_embedding(&faces);
        prop_assert_eq!(demb.faces().walks.len(), emb.num_vertices());
        prop_assert_eq!(demb.euler_characteristic(), 2);
    }

    #[test]
    fn boundary_of_boundary_vanishes(emb in delaunay_embedding()) {
        let faces = emb.faces();
        // Any subset of faces: its region boundary is a cycle (∂∂ = 0).
        let outer = emb.outer_face(&faces).unwrap();
        let region: Vec<usize> =
            (0..faces.walks.len()).filter(|&f| f != outer && f % 2 == 0).collect();
        let chain = Chain::region_boundary(&emb, &faces, &region);
        prop_assert!(vertex_boundary(&emb, &chain).is_empty());
    }

    #[test]
    fn all_faces_boundary_is_zero(emb in delaunay_embedding()) {
        let faces = emb.faces();
        let all: Vec<usize> = (0..faces.walks.len()).collect();
        prop_assert!(Chain::region_boundary(&emb, &faces, &all).is_zero());
    }

    #[test]
    fn subgraph_faces_respect_euler(emb in delaunay_embedding(), mask_seed in 0u64..1000) {
        // Random monitored subset; components via union-find must equal
        // E' − V' + 1 + C' (Euler with C' dual components).
        let ne = emb.num_edges();
        let monitored: Vec<bool> =
            (0..ne).map(|e| (e as u64).wrapping_mul(2654435761) % 1000 < mask_seed).collect();
        let sf = subgraph_faces(&emb, &monitored);
        // Every unmonitored edge keeps its endpoints in one face.
        for (e, &(u, v)) in emb.edges().iter().enumerate() {
            if !monitored[e] {
                prop_assert_eq!(sf.component_of[u], sf.component_of[v]);
            }
        }
        // Components partition the vertices.
        let total: usize = sf.members.iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, emb.num_vertices());
        // Euler cross-check on the dual side.
        let faces = emb.faces();
        let dual = DualGraph::new(&emb, &faces);
        let mut uf = stq_planar::UnionFind::new(faces.walks.len());
        let mut verts = std::collections::HashSet::new();
        let mut ecount = 0i64;
        for (e, &m) in monitored.iter().enumerate() {
            if m {
                let (a, b) = dual.edge_faces[e];
                verts.insert(a);
                verts.insert(b);
                if a != b {
                    uf.union(a, b);
                }
                ecount += 1;
            }
        }
        let comps: std::collections::HashSet<usize> =
            verts.iter().map(|&v| uf.find(v)).collect();
        let expected = ecount - verts.len() as i64 + 1 + comps.len() as i64;
        prop_assert_eq!(sf.members.len() as i64, expected);
    }

    #[test]
    fn rotations_are_consistent(emb in delaunay_embedding()) {
        for h in 0..emb.num_half_edges() {
            prop_assert_eq!(emb.rot_next(emb.rot_prev(h)), h);
            prop_assert_eq!(emb.origin(h), emb.target(emb.twin(h)));
            // face_next preserves incidence: next starts where h ends.
            prop_assert_eq!(emb.origin(emb.face_next(h)), emb.target(h));
        }
    }

    #[test]
    fn attach_external_vertex_preserves_planarity(emb in delaunay_embedding()) {
        let faces = emb.faces();
        let outer = emb.outer_face(&faces).unwrap();
        // Attach to up to 4 distinct outer-walk vertices.
        let mut attach: Vec<usize> = Vec::new();
        for &h in &faces.walks[outer] {
            let v = emb.origin(h);
            if !attach.contains(&v) {
                attach.push(v);
            }
            if attach.len() == 4 {
                break;
            }
        }
        let (emb2, v_ext) = emb.attach_vertex_in_face(&faces, outer, &attach).unwrap();
        prop_assert_eq!(emb2.euler_characteristic(), 2);
        prop_assert_eq!(emb2.degree(v_ext), attach.len());
        prop_assert!(emb2.position(v_ext).is_none());
    }
}
