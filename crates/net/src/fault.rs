//! Deterministic fault injection (message loss, delay, duplication, sensor
//! crashes) for the simulated network and the query-serving runtime.
//!
//! Every decision is a pure function of the plan's seed and the message's
//! identity ([`MessageCtx`]), so a faulty run can be replayed bit-for-bit:
//! the same seed, query ids and retry attempts produce the same drops and
//! delays regardless of thread scheduling. Retries are *not* re-rolls of the
//! same coin — the attempt number is part of the identity, so a retry can
//! succeed where the first attempt was dropped, exactly like a fresh radio
//! transmission.

/// Identity of one message for fault purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MessageCtx {
    /// Query (or request) the message belongs to.
    pub query_id: u64,
    /// Destination sensor / shard index.
    pub node: usize,
    /// Retry attempt, starting at 0.
    pub attempt: u32,
}

/// What the fault plan decided for one message.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultDecision {
    /// The message is lost; the receiver never sees it.
    pub drop: bool,
    /// Extra in-flight latency in milliseconds (0 = delivered promptly).
    pub delay_ms: u64,
    /// The message arrives twice (receivers must deduplicate).
    pub duplicate: bool,
    /// The message triggers a handler crash (firmware bug): the receiver
    /// panics while processing instead of answering.
    pub poison: bool,
}

impl FaultDecision {
    /// A clean delivery: no drop, no delay, no duplicate, no poison.
    pub const CLEAN: FaultDecision =
        FaultDecision { drop: false, delay_ms: 0, duplicate: false, poison: false };
}

/// A scheduled sensor outage, expressed in messages delivered to that sensor
/// (the simulator's clock): the sensor stops responding after it has seen
/// `after_messages` messages and recovers once `lasts_messages` more have
/// been addressed to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The sensor / shard that crashes.
    pub node: usize,
    /// Messages the sensor handles before the outage starts.
    pub after_messages: u64,
    /// Length of the outage in addressed messages (`u64::MAX` = forever).
    pub lasts_messages: u64,
}

/// A seeded, replayable description of everything that goes wrong.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed; all per-message coins derive from it.
    pub seed: u64,
    /// Probability a message is dropped.
    pub drop_p: f64,
    /// Probability a message is delayed (by up to [`FaultPlan::max_delay_ms`]).
    pub delay_p: f64,
    /// Probability a message is duplicated.
    pub dup_p: f64,
    /// Upper bound on injected delay; actual delays are uniform in
    /// `1..=max_delay_ms`.
    pub max_delay_ms: u64,
    /// Probability a message poisons its handler (panic while processing).
    pub poison_p: f64,
    /// Scheduled outages.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled poison windows: every message addressed to the node while
    /// the window is open crashes its handler. Unlike `poison_p` (a fresh
    /// coin per message), a window models a *persistent* firmware fault —
    /// the shape that must trip escalation rather than per-query retries.
    pub poison_windows: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing — the identity element for composition.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            max_delay_ms: 0,
            poison_p: 0.0,
            crashes: Vec::new(),
            poison_windows: Vec::new(),
        }
    }

    /// A uniform lossy-link plan: every message independently dropped with
    /// probability `drop_p`, delayed with `delay_p` (up to `max_delay_ms`),
    /// duplicated with `dup_p`.
    pub fn lossy(seed: u64, drop_p: f64, delay_p: f64, dup_p: f64, max_delay_ms: u64) -> Self {
        for (name, p) in [("drop_p", drop_p), ("delay_p", delay_p), ("dup_p", dup_p)] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1], got {p}");
        }
        FaultPlan {
            seed,
            drop_p,
            delay_p,
            dup_p,
            max_delay_ms,
            poison_p: 0.0,
            crashes: Vec::new(),
            poison_windows: Vec::new(),
        }
    }

    /// Adds a scheduled outage (builder style).
    pub fn with_crash(mut self, window: CrashWindow) -> Self {
        self.crashes.push(window);
        self
    }

    /// Sets the handler-poison probability (builder style).
    pub fn with_poison(mut self, poison_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&poison_p), "poison_p must be in [0, 1], got {poison_p}");
        self.poison_p = poison_p;
        self
    }

    /// Adds a scheduled poison window (builder style): messages addressed
    /// to `window.node` while the window is open crash its handler.
    pub fn with_poison_window(mut self, window: CrashWindow) -> Self {
        self.poison_windows.push(window);
        self
    }

    /// Whether a message addressed to `node` after `delivered` prior
    /// messages falls in a scheduled poison window.
    pub fn scheduled_poison(&self, node: usize, delivered: u64) -> bool {
        self.poison_windows.iter().any(|w| {
            w.node == node
                && delivered >= w.after_messages
                && delivered - w.after_messages < w.lasts_messages
        })
    }

    /// True when the plan can never perturb anything.
    pub fn is_noop(&self) -> bool {
        self.drop_p == 0.0
            && self.delay_p == 0.0
            && self.dup_p == 0.0
            && self.poison_p == 0.0
            && self.crashes.is_empty()
            && self.poison_windows.is_empty()
    }

    /// The fate of one message. Pure: same plan + same context → same answer.
    pub fn decide(&self, ctx: MessageCtx) -> FaultDecision {
        if self.is_noop() {
            return FaultDecision::CLEAN;
        }
        let drop = self.coin(ctx, Salt::Drop) < self.drop_p;
        let delay_ms = if !drop && self.coin(ctx, Salt::Delay) < self.delay_p {
            1 + (self.word(ctx, Salt::DelayAmount) % self.max_delay_ms.max(1))
        } else {
            0
        };
        let duplicate = !drop && self.coin(ctx, Salt::Duplicate) < self.dup_p;
        let poison = !drop && self.coin(ctx, Salt::Poison) < self.poison_p;
        FaultDecision { drop, delay_ms, duplicate, poison }
    }

    /// Whether `node` is inside a crash window after having been addressed
    /// `delivered` messages.
    pub fn is_crashed(&self, node: usize, delivered: u64) -> bool {
        self.crashes.iter().any(|w| {
            w.node == node
                && delivered >= w.after_messages
                && delivered - w.after_messages < w.lasts_messages
        })
    }

    fn word(&self, ctx: MessageCtx, salt: Salt) -> u64 {
        // SplitMix64 finalizer over the message identity — cheap, stateless,
        // and well-mixed enough that per-salt streams are independent.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(ctx.query_id.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((ctx.node as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add((ctx.attempt as u64) << 17)
            .wrapping_add(salt as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn coin(&self, ctx: MessageCtx, salt: Salt) -> f64 {
        (self.word(ctx, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[derive(Clone, Copy)]
enum Salt {
    Drop = 1,
    Delay = 2,
    DelayAmount = 3,
    Duplicate = 4,
    Poison = 5,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(q: u64, node: usize, attempt: u32) -> MessageCtx {
        MessageCtx { query_id: q, node, attempt }
    }

    #[test]
    fn noop_plan_is_clean() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        for q in 0..100 {
            assert_eq!(plan.decide(ctx(q, 3, 0)), FaultDecision::CLEAN);
        }
        assert!(!plan.is_crashed(0, 1_000_000));
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::lossy(42, 0.5, 0.3, 0.2, 50);
        for q in 0..200 {
            let c = ctx(q, 7, 0);
            assert_eq!(plan.decide(c), plan.decide(c), "same identity, same fate");
        }
        // Retries re-roll: across many dropped messages, some attempt-1
        // deliveries must succeed.
        let retried_ok = (0..500)
            .filter(|&q| plan.decide(ctx(q, 1, 0)).drop && !plan.decide(ctx(q, 1, 1)).drop)
            .count();
        assert!(retried_ok > 50, "retries should often succeed, got {retried_ok}");
    }

    #[test]
    fn frequencies_match_probabilities() {
        let plan = FaultPlan::lossy(7, 0.25, 0.4, 0.1, 20);
        let n = 20_000u64;
        let mut drops = 0;
        let mut delays = 0;
        let mut dups = 0;
        for q in 0..n {
            let d = plan.decide(ctx(q, q as usize % 13, 0));
            drops += d.drop as u64;
            delays += (d.delay_ms > 0) as u64;
            dups += d.duplicate as u64;
            assert!(d.delay_ms <= 20);
            if d.drop {
                assert_eq!(d.delay_ms, 0, "dropped messages are simply gone");
                assert!(!d.duplicate);
            }
        }
        let frac = |x: u64| x as f64 / n as f64;
        assert!((frac(drops) - 0.25).abs() < 0.02, "drop rate {}", frac(drops));
        // Delay/dup rates are conditional on not dropping (≈ p · 0.75).
        assert!((frac(delays) - 0.4 * 0.75).abs() < 0.02, "delay rate {}", frac(delays));
        assert!((frac(dups) - 0.1 * 0.75).abs() < 0.02, "dup rate {}", frac(dups));
    }

    #[test]
    fn crash_windows_bound_the_outage() {
        let plan = FaultPlan::none()
            .with_crash(CrashWindow { node: 2, after_messages: 10, lasts_messages: 5 })
            .with_crash(CrashWindow { node: 4, after_messages: 0, lasts_messages: u64::MAX });
        assert!(!plan.is_crashed(2, 9));
        assert!(plan.is_crashed(2, 10));
        assert!(plan.is_crashed(2, 14));
        assert!(!plan.is_crashed(2, 15));
        assert!(plan.is_crashed(4, 0));
        assert!(plan.is_crashed(4, u64::MAX - 1));
        assert!(!plan.is_crashed(3, 0));
    }

    #[test]
    fn poison_windows_bound_the_fault() {
        let plan = FaultPlan::none().with_poison_window(CrashWindow {
            node: 1,
            after_messages: 3,
            lasts_messages: 4,
        });
        assert!(!plan.is_noop());
        assert!(!plan.scheduled_poison(1, 2));
        assert!(plan.scheduled_poison(1, 3));
        assert!(plan.scheduled_poison(1, 6));
        assert!(!plan.scheduled_poison(1, 7), "window closes: the node heals");
        assert!(!plan.scheduled_poison(0, 5), "other nodes unaffected");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::lossy(0, 1.5, 0.0, 0.0, 0);
    }
}
