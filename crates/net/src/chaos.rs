//! One seed to rule every fault plan.
//!
//! The chaos machinery grew three independent plan types — [`FaultPlan`]
//! (message loss/delay/duplication/poison), [`SensorFaultPlan`] (corrupted
//! event capture), and [`DurabilityFaultPlan`] (process kills and torn WAL
//! tails) — each with its own seed. Reproducing an experiment meant
//! threading three seeds through three flag sets, and nothing stopped a
//! caller from setting them inconsistently.
//!
//! [`ChaosConfig`] unifies them: **one root seed**, domain-separated into
//! per-plan sub-seeds (so the message coin stream never correlates with the
//! sensor or durability streams), and a builder that *rejects* conflicting
//! seed settings instead of silently letting the last write win. The CLI
//! maps `--chaos-seed` onto [`ChaosBuilder::seed`]; a second seed source
//! (duplicate flag, or a legacy `--fault-seed` alongside `--chaos-seed`)
//! surfaces as [`ChaosError::ConflictingSeed`].

use crate::durability::DurabilityFaultPlan;
use crate::fault::{CrashWindow, FaultPlan};
use crate::sensor::{SensorFaultMix, SensorFaultPlan};

/// Domain-separation constants: sub-seed = root seed XOR salt, then the
/// plan's own mixing does the rest. Distinct high-entropy odd constants.
const SALT_MESSAGE: u64 = 0xA24B_AED4_963E_E407;
const SALT_SENSOR: u64 = 0x9FB2_1C65_1E98_DF25;
const SALT_DURABILITY: u64 = 0xD6E8_FEB8_6659_FD93;

/// Why a [`ChaosBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosError {
    /// The seed was set twice with different values — two flags (or one
    /// flag repeated) disagree about which universe to replay.
    ConflictingSeed {
        /// The seed already recorded.
        first: u64,
        /// The seed that tried to replace it.
        second: u64,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::ConflictingSeed { first, second } => {
                write!(f, "conflicting chaos seeds: {first} vs {second} — set one seed, once")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// Builder for [`ChaosConfig`]. Fault *shapes* (probabilities, windows,
/// kill schedules) accumulate freely; the *seed* may be set at most once.
#[derive(Clone, Debug, Default)]
pub struct ChaosBuilder {
    seed: Option<u64>,
    error: Option<ChaosError>,
    drop_p: f64,
    delay_p: f64,
    dup_p: f64,
    max_delay_ms: u64,
    poison_p: f64,
    crashes: Vec<CrashWindow>,
    poison_windows: Vec<CrashWindow>,
    sensor_mix: SensorFaultMix,
    ingest_crashes: Vec<(usize, u64)>,
}

impl ChaosBuilder {
    /// Sets the root seed. A second call with a *different* value poisons
    /// the builder ([`ChaosError::ConflictingSeed`] at [`Self::build`]);
    /// repeating the same value is idempotent.
    pub fn seed(mut self, seed: u64) -> Self {
        match self.seed {
            None => self.seed = Some(seed),
            Some(first) if first == seed => {}
            Some(first) => {
                self.error.get_or_insert(ChaosError::ConflictingSeed { first, second: seed });
            }
        }
        self
    }

    /// Uniform lossy-link message faults (see [`FaultPlan::lossy`]).
    pub fn message_loss(
        mut self,
        drop_p: f64,
        delay_p: f64,
        dup_p: f64,
        max_delay_ms: u64,
    ) -> Self {
        self.drop_p = drop_p;
        self.delay_p = delay_p;
        self.dup_p = dup_p;
        self.max_delay_ms = max_delay_ms;
        self
    }

    /// Handler-poison probability (see [`FaultPlan::with_poison`]).
    pub fn poison(mut self, poison_p: f64) -> Self {
        self.poison_p = poison_p;
        self
    }

    /// A scheduled shard outage (see [`FaultPlan::with_crash`]).
    pub fn crash_window(mut self, window: CrashWindow) -> Self {
        self.crashes.push(window);
        self
    }

    /// A scheduled poison window (see [`FaultPlan::with_poison_window`]).
    pub fn poison_window(mut self, window: CrashWindow) -> Self {
        self.poison_windows.push(window);
        self
    }

    /// Sensor corruption mix (fractions of dead/lossy/duplicating/flipped/
    /// skewed sensors).
    pub fn sensor_mix(mut self, mix: SensorFaultMix) -> Self {
        self.sensor_mix = mix;
        self
    }

    /// A scheduled ingest-time process kill for `shard` after its
    /// `after_appends`-th WAL append.
    pub fn ingest_crash(mut self, shard: usize, after_appends: u64) -> Self {
        self.ingest_crashes.push((shard, after_appends));
        self
    }

    /// Finalizes the configuration. `Err` when the seed was set
    /// inconsistently.
    pub fn build(self) -> Result<ChaosConfig, ChaosError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let seed = self.seed.unwrap_or(0);
        let mut message = FaultPlan::lossy(
            seed ^ SALT_MESSAGE,
            self.drop_p,
            self.delay_p,
            self.dup_p,
            self.max_delay_ms,
        )
        .with_poison(self.poison_p);
        message.crashes = self.crashes;
        message.poison_windows = self.poison_windows;
        Ok(ChaosConfig {
            seed,
            message,
            sensor_mix: self.sensor_mix,
            durability: DurabilityFaultPlan::killing(seed ^ SALT_DURABILITY, &self.ingest_crashes),
        })
    }
}

/// Every fault plan an experiment needs, derived from one seed.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// The root seed everything was derived from.
    pub seed: u64,
    /// Message-level faults (drop/delay/dup/poison + scheduled windows).
    pub message: FaultPlan,
    /// Sensor corruption mix; the plan itself is generated late, once the
    /// candidate edge set is known ([`ChaosConfig::sensor_plan`]).
    pub sensor_mix: SensorFaultMix,
    /// Durability faults (ingest kills, torn tails).
    pub durability: DurabilityFaultPlan,
}

impl ChaosConfig {
    /// Starts a builder.
    pub fn builder() -> ChaosBuilder {
        ChaosBuilder::default()
    }

    /// A fully quiet configuration.
    pub fn none() -> Self {
        ChaosBuilder::default().build().expect("empty builder cannot conflict")
    }

    /// Instantiates the sensor fault plan for a concrete candidate edge set
    /// and horizon, using the domain-separated sensor sub-seed.
    pub fn sensor_plan(&self, candidate_edges: &[usize], horizon: (f64, f64)) -> SensorFaultPlan {
        SensorFaultPlan::generate(
            self.seed ^ SALT_SENSOR,
            candidate_edges,
            horizon,
            self.sensor_mix,
        )
    }

    /// True when no constituent plan can perturb anything.
    pub fn is_noop(&self) -> bool {
        self.message.is_noop() && self.sensor_mix.total() == 0.0 && self.durability.is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_fans_out_to_distinct_subseeds() {
        let c = ChaosConfig::builder()
            .seed(42)
            .message_loss(0.1, 0.0, 0.0, 0)
            .ingest_crash(1, 100)
            .build()
            .unwrap();
        assert_eq!(c.seed, 42);
        assert_ne!(c.message.seed, 42, "message plan gets a domain-separated sub-seed");
        assert_ne!(c.durability.seed, 42);
        assert_ne!(c.message.seed, c.durability.seed);
        let sensor = c.sensor_plan(&[0, 1, 2], (0.0, 100.0));
        assert_ne!(sensor.seed, c.message.seed);
        assert_ne!(sensor.seed, c.durability.seed);
    }

    #[test]
    fn same_seed_reproduces_identical_plans() {
        let make = || {
            ChaosConfig::builder()
                .seed(7)
                .message_loss(0.2, 0.1, 0.05, 30)
                .poison(0.01)
                .ingest_crash(0, 50)
                .sensor_mix(SensorFaultMix { lossy: 0.2, ..SensorFaultMix::default() })
                .build()
                .unwrap()
        };
        assert_eq!(make(), make());
        assert_eq!(
            make().sensor_plan(&[3, 1, 4], (0.0, 10.0)),
            make().sensor_plan(&[3, 1, 4], (0.0, 10.0))
        );
    }

    #[test]
    fn conflicting_seeds_are_rejected() {
        let err = ChaosConfig::builder().seed(1).seed(2).build().unwrap_err();
        assert_eq!(err, ChaosError::ConflictingSeed { first: 1, second: 2 });
        assert!(err.to_string().contains("conflicting"));
        // The first conflict is reported even if more settings follow.
        let err = ChaosConfig::builder().seed(1).seed(2).seed(3).build().unwrap_err();
        assert_eq!(err, ChaosError::ConflictingSeed { first: 1, second: 2 });
    }

    #[test]
    fn repeating_the_same_seed_is_idempotent() {
        let c = ChaosConfig::builder().seed(9).seed(9).build().unwrap();
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn unseeded_and_empty_is_noop() {
        let c = ChaosConfig::none();
        assert!(c.is_noop());
        assert!(c.message.is_noop());
        assert!(c.durability.is_noop());
    }

    #[test]
    fn windows_land_in_the_message_plan() {
        let c = ChaosConfig::builder()
            .seed(5)
            .crash_window(CrashWindow { node: 2, after_messages: 1, lasts_messages: 3 })
            .poison_window(CrashWindow { node: 1, after_messages: 0, lasts_messages: 2 })
            .build()
            .unwrap();
        assert!(c.message.is_crashed(2, 2));
        assert!(c.message.scheduled_poison(1, 1));
        assert!(!c.is_noop());
    }
}
