//! Seeded fault injection for the durability layer: process-kill crashes
//! during ingest and fsync-loss / torn-tail cuts, in the same pure,
//! replayable style as [`crate::FaultPlan`].
//!
//! A [`DurabilityFaultPlan`] answers two questions:
//!
//! 1. *When does a shard worker die?* — [`DurabilityFaultPlan::crash_due`],
//!    keyed on the shard's monotone append sequence so the crash fires
//!    exactly once per scheduled point regardless of thread interleaving.
//! 2. *How much of the unsynced WAL tail survives the kill?* —
//!    [`DurabilityFaultPlan::surviving_tail_bytes`], a seeded draw over
//!    `0..=unsynced` bytes, deliberately allowing cuts in the middle of a
//!    record (torn writes) so recovery's truncate-at-last-valid-record path
//!    is exercised, not just the clean-boundary case.

/// A scheduled ingest-time crash: the shard worker dies immediately after
/// appending its `after_appends`-th WAL record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestCrash {
    /// The shard whose worker dies.
    pub shard: usize,
    /// WAL sequence number after which the kill fires.
    pub after_appends: u64,
}

/// A seeded, replayable plan of durability faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityFaultPlan {
    /// Root seed for the torn-tail draws.
    pub seed: u64,
    /// Scheduled process kills.
    pub crashes: Vec<IngestCrash>,
}

impl DurabilityFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with one scheduled kill per `(shard, after_appends)` pair.
    pub fn killing(seed: u64, crashes: &[(usize, u64)]) -> Self {
        DurabilityFaultPlan {
            seed,
            crashes: crashes
                .iter()
                .map(|&(shard, after_appends)| IngestCrash { shard, after_appends })
                .collect(),
        }
    }

    /// Adds a scheduled kill (builder style).
    pub fn with_crash(mut self, crash: IngestCrash) -> Self {
        self.crashes.push(crash);
        self
    }

    /// True when the plan can never perturb anything.
    pub fn is_noop(&self) -> bool {
        self.crashes.is_empty()
    }

    /// Whether the worker for `shard` dies right after appending sequence
    /// number `seq`. Keyed on the monotone sequence, the predicate is true
    /// for exactly one append per scheduled crash.
    pub fn crash_due(&self, shard: usize, seq: u64) -> bool {
        self.crashes.iter().any(|c| c.shard == shard && c.after_appends == seq)
    }

    /// How many bytes of an `unsynced`-byte WAL tail survive the kill of
    /// `shard` at sequence `seq`: a seeded uniform draw over
    /// `0..=unsynced`, so the cut can land mid-record.
    pub fn surviving_tail_bytes(&self, shard: usize, seq: u64, unsynced: u64) -> u64 {
        if unsynced == 0 {
            return 0;
        }
        // SplitMix64 finalizer over (seed, shard, seq) — same construction
        // as FaultPlan::word, domain-separated by a durability salt.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((shard as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(0xd1b5_4a32_d192_ed03); // salt: durability tail cut
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x % (unsynced + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_exactly_at_the_scheduled_sequence() {
        let plan = DurabilityFaultPlan::killing(9, &[(1, 40), (2, 15)]);
        assert!(!plan.is_noop());
        for seq in 0..100 {
            assert_eq!(plan.crash_due(1, seq), seq == 40);
            assert_eq!(plan.crash_due(2, seq), seq == 15);
            assert!(!plan.crash_due(0, seq));
        }
    }

    #[test]
    fn tail_cut_is_deterministic_and_in_range() {
        let plan = DurabilityFaultPlan::killing(1234, &[(0, 10)]);
        for unsynced in [0u64, 1, 33, 1000] {
            let a = plan.surviving_tail_bytes(0, 10, unsynced);
            let b = plan.surviving_tail_bytes(0, 10, unsynced);
            assert_eq!(a, b, "same identity, same cut");
            assert!(a <= unsynced);
        }
        assert_eq!(plan.surviving_tail_bytes(0, 10, 0), 0);
    }

    #[test]
    fn tail_cut_covers_torn_mid_record_offsets() {
        // Over many seeds, the cut must land strictly inside a record
        // boundary often (records are 33 bytes): the torn-write case.
        let record = 33u64;
        let unsynced = 10 * record;
        let torn = (0..200u64)
            .filter(|&s| {
                DurabilityFaultPlan::killing(s, &[(0, 5)]).surviving_tail_bytes(0, 5, unsynced)
                    % record
                    != 0
            })
            .count();
        assert!(torn > 150, "mid-record cuts should dominate, got {torn}/200");
    }

    #[test]
    fn different_seeds_cut_differently() {
        let distinct: std::collections::HashSet<u64> = (0..64u64)
            .map(|s| DurabilityFaultPlan::killing(s, &[]).surviving_tail_bytes(3, 7, 10_000))
            .collect();
        assert!(distinct.len() > 32, "cuts must vary with the seed, got {}", distinct.len());
    }
}
