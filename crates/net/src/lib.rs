//! # stq-net
//!
//! A discrete sensor-network simulator (paper §3.1, §4.6).
//!
//! The paper evaluates "an in-network system with abstractions" — the
//! algorithmic layer is independent of the concrete radio protocol. This
//! crate provides that abstraction with explicit cost accounting so the
//! communication claims (nodes accessed, routing hops, energy) are measured
//! rather than asserted:
//!
//! - [`Network`] — the communication topology (nodes = sensors, edges =
//!   links), with BFS routing and flooding,
//! - the two query-dispatch strategies of §4.6:
//!   [`Network::server_aggregation`] (the query server contacts every
//!   perimeter sensor directly) and [`Network::perimeter_traversal`] (one
//!   seed sensor walks the perimeter in-network and returns the aggregate),
//! - [`EnergyModel`] — per-message transmit/receive costs, so experiments
//!   can report energy alongside message counts.

use std::collections::{HashMap, VecDeque};

pub mod chaos;
pub mod durability;
pub mod fault;
pub mod sensor;

pub use chaos::{ChaosBuilder, ChaosConfig, ChaosError};
pub use durability::{DurabilityFaultPlan, IngestCrash};
pub use fault::{CrashWindow, FaultDecision, FaultPlan, MessageCtx};
pub use sensor::{SensorEventFate, SensorFault, SensorFaultKind, SensorFaultMix, SensorFaultPlan};

/// Communication cost of a dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostReport {
    /// Point-to-point messages sent (each hop of each route counts once).
    pub messages: usize,
    /// Total hops across all routes.
    pub hops: usize,
    /// Distinct sensors that participated (relayed or answered).
    pub nodes_contacted: usize,
    /// Longest single route (proxy for latency).
    pub max_route: usize,
}

/// Per-message energy accounting.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Joules to transmit one message one hop.
    pub tx: f64,
    /// Joules to receive one message.
    pub rx: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Loosely calibrated to low-power radio datasheets: transmit costs
        // roughly double receive.
        EnergyModel { tx: 2.0e-6, rx: 1.0e-6 }
    }
}

impl EnergyModel {
    /// Energy for a cost report: every hop is one transmit + one receive.
    pub fn energy(&self, cost: &CostReport) -> f64 {
        cost.hops as f64 * (self.tx + self.rx)
    }
}

/// A sensor-network communication topology.
#[derive(Clone, Debug)]
pub struct Network {
    adj: Vec<Vec<usize>>,
}

impl Network {
    /// Builds a network over `n` sensors with undirected links.
    pub fn new(n: usize, links: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in links {
            assert!(u < n && v < n, "link endpoint out of range");
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        Network { adj }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the network has no sensors.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Hop distances from `source` (usize::MAX = unreachable). A `source`
    /// outside the network (including any source on an empty network) yields
    /// an all-unreachable vector instead of panicking.
    pub fn hops_from(&self, source: usize) -> Vec<usize> {
        self.bfs(source, None).hops
    }

    /// One BFS pass computing hop distances *and* shortest-path-tree parents
    /// together. When `targets` is given, the search stops as soon as every
    /// target has been labelled — entries beyond the last target's depth stay
    /// `usize::MAX`, which both dispatch strategies treat as unreachable.
    fn bfs(&self, source: usize, targets: Option<&[usize]>) -> BfsState {
        let n = self.adj.len();
        let mut state = BfsState { hops: vec![usize::MAX; n], parents: vec![usize::MAX; n] };
        if source >= n {
            return state;
        }
        let wanted: Option<std::collections::HashSet<usize>> =
            targets.map(|ts| ts.iter().copied().filter(|&t| t < n && t != source).collect());
        let mut outstanding = wanted.as_ref().map_or(usize::MAX, |w| w.len());
        state.hops[source] = 0;
        if outstanding == 0 {
            return state; // every target is the source itself (or out of range)
        }
        let mut q = VecDeque::from([source]);
        'search: while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if state.hops[v] == usize::MAX {
                    state.hops[v] = state.hops[u] + 1;
                    state.parents[v] = u;
                    if wanted.as_ref().is_some_and(|w| w.contains(&v)) {
                        outstanding -= 1;
                        if outstanding == 0 {
                            break 'search;
                        }
                    }
                    q.push_back(v);
                }
            }
        }
        state
    }

    /// Dispatch strategy 1 (§4.6): the query server (assumed reachable from
    /// `gateway`) contacts every perimeter sensor along shortest routes from
    /// the gateway and aggregates centrally.
    pub fn server_aggregation(&self, gateway: usize, perimeter: &[usize]) -> CostReport {
        self.server_aggregation_from(&self.bfs(gateway, None), gateway, perimeter)
    }

    /// [`Network::server_aggregation`] against a cached BFS tree — repeated
    /// dispatches from the same gateway (the common case for a long-lived
    /// query server) pay for the BFS once.
    pub fn server_aggregation_cached(
        &self,
        cache: &mut BfsCache,
        gateway: usize,
        perimeter: &[usize],
    ) -> CostReport {
        let state = cache.state(self, gateway).clone();
        self.server_aggregation_from(&state, gateway, perimeter)
    }

    fn server_aggregation_from(
        &self,
        state: &BfsState,
        gateway: usize,
        perimeter: &[usize],
    ) -> CostReport {
        let mut report = CostReport::default();
        let mut contacted = std::collections::HashSet::new();
        for &p in perimeter {
            let h = state.hops[p];
            if h == usize::MAX {
                continue; // unreachable sensor: silently skipped, like a
                          // radio dead zone; callers see fewer contacts.
            }
            // Request + response along the route.
            report.messages += 2 * h;
            report.hops += 2 * h;
            report.max_route = report.max_route.max(h);
            contacted.insert(p);
            // Relay nodes: everything on the shortest-path-tree branch.
            let mut cur = p;
            while cur != usize::MAX && cur != gateway {
                contacted.insert(cur);
                cur = state.parents[cur];
            }
        }
        report.nodes_contacted = contacted.len();
        report
    }

    /// Dispatch strategy 2 (§4.6): the server contacts one perimeter sensor
    /// (`seed`); the count is aggregated by walking sensor-to-sensor around
    /// the perimeter (greedy nearest-unvisited routing) and returned.
    ///
    /// Each greedy step runs one combined hops-and-parents BFS that stops as
    /// soon as all still-unvisited perimeter sensors are labelled (the old
    /// implementation ran two full-network searches per step).
    pub fn perimeter_traversal(&self, seed: usize, perimeter: &[usize]) -> CostReport {
        let mut report = CostReport::default();
        if perimeter.is_empty() || self.is_empty() {
            return report;
        }
        let mut remaining: Vec<usize> = perimeter.iter().copied().filter(|&p| p != seed).collect();
        let mut contacted = std::collections::HashSet::new();
        contacted.insert(seed);
        let mut here = seed;
        while !remaining.is_empty() {
            let state = self.bfs(here, Some(&remaining));
            // Nearest unvisited perimeter sensor.
            let (k, &next) = match remaining
                .iter()
                .enumerate()
                .filter(|(_, &p)| state.hops[p] != usize::MAX)
                .min_by_key(|(_, &p)| state.hops[p])
            {
                Some(x) => x,
                None => break, // rest unreachable
            };
            let h = state.hops[next];
            report.messages += h;
            report.hops += h;
            report.max_route = report.max_route.max(h);
            // Mark the route's nodes.
            let mut cur = next;
            while cur != usize::MAX && cur != here {
                contacted.insert(cur);
                cur = state.parents[cur];
            }
            here = next;
            remaining.swap_remove(k);
        }
        report.nodes_contacted = contacted.len();
        report
    }

    /// Flood from `source` until all `targets` are reached; every edge
    /// forwarded over counts as a message (how axis-aligned in-network
    /// systems must answer range queries — the dead-space cost, §2.3).
    pub fn flood(&self, source: usize, targets: &[usize]) -> CostReport {
        let mut report = CostReport::default();
        let mut seen = vec![false; self.adj.len()];
        let mut pending: std::collections::HashSet<usize> = targets.iter().copied().collect();
        pending.remove(&source);
        seen[source] = true;
        let mut frontier = vec![source];
        let mut contacted = 1usize;
        let mut depth = 0usize;
        while !pending.is_empty() && !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.adj[u] {
                    report.messages += 1; // broadcast over each link
                    report.hops += 1;
                    if !seen[v] {
                        seen[v] = true;
                        contacted += 1;
                        pending.remove(&v);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        report.nodes_contacted = contacted;
        report.max_route = depth;
        report
    }
}

/// Result of one BFS pass: hop distances and shortest-path-tree parents
/// (`usize::MAX` = unreachable / no parent).
#[derive(Clone, Debug)]
pub struct BfsState {
    /// Hop count from the source per sensor.
    pub hops: Vec<usize>,
    /// BFS-tree parent per sensor.
    pub parents: Vec<usize>,
}

/// Memoized full-network BFS trees keyed by source sensor.
///
/// A long-lived query server dispatches many queries from the same gateway;
/// the shortest-path tree from that gateway never changes while the topology
/// is fixed, so it is computed once and reused. Only complete (non-early-exit)
/// searches are cached — partial states would under-report reachability for a
/// later query with a wider perimeter.
#[derive(Debug, Default)]
pub struct BfsCache {
    states: HashMap<usize, BfsState>,
}

impl BfsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full BFS tree from `source`, computing it on first use.
    pub fn state(&mut self, net: &Network, source: usize) -> &BfsState {
        self.states.entry(source).or_insert_with(|| net.bfs(source, None))
    }

    /// Number of distinct sources cached.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3-4 path plus a 2-5 stub.
    fn path_net() -> Network {
        Network::new(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)])
    }

    #[test]
    fn hop_distances() {
        let n = path_net();
        let h = n.hops_from(0);
        assert_eq!(h, vec![0, 1, 2, 3, 4, 3]);
    }

    #[test]
    fn server_aggregation_costs() {
        let n = path_net();
        let r = n.server_aggregation(0, &[2, 4]);
        // Routes of 2 and 4 hops, each request+response.
        assert_eq!(r.hops, 2 * 2 + 2 * 4);
        assert_eq!(r.max_route, 4);
        // Contacted: 1,2 (route to 2) + 3,4 → 4 sensors.
        assert_eq!(r.nodes_contacted, 4);
    }

    #[test]
    fn perimeter_traversal_costs() {
        let n = path_net();
        let r = n.perimeter_traversal(2, &[2, 3, 4]);
        // Greedy: 2→3 (1 hop) →4 (1 hop).
        assert_eq!(r.hops, 2);
        assert_eq!(r.nodes_contacted, 3);
        assert_eq!(r.max_route, 1);
    }

    #[test]
    fn traversal_cheaper_than_server_for_contiguous_perimeter() {
        // A ring: perimeter sensors are consecutive; walking beats radial
        // round trips — the reason §4.6 offers the second strategy.
        let n = 12;
        let links: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let net = Network::new(n, &links);
        let perimeter: Vec<usize> = (0..6).collect();
        let server = net.server_aggregation(0, &perimeter);
        let walk = net.perimeter_traversal(0, &perimeter);
        assert!(walk.hops < server.hops, "walk {} vs server {}", walk.hops, server.hops);
    }

    #[test]
    fn flood_reaches_targets_and_counts_messages() {
        let n = path_net();
        let r = n.flood(0, &[4]);
        assert_eq!(r.max_route, 4);
        assert!(r.messages >= 4);
        assert_eq!(r.nodes_contacted, 6); // flooding wakes everyone en route
    }

    #[test]
    fn unreachable_targets_handled() {
        let net = Network::new(4, &[(0, 1)]); // 2, 3 isolated
        let r = net.server_aggregation(0, &[3]);
        assert_eq!(r.hops, 0);
        let w = net.perimeter_traversal(0, &[1, 3]);
        assert_eq!(w.hops, 1); // reaches 1, gives up on 3
        let f = net.flood(0, &[3]);
        assert!(f.nodes_contacted <= 2);
    }

    #[test]
    fn empty_perimeter_zero_cost() {
        let n = path_net();
        assert_eq!(n.perimeter_traversal(0, &[]), CostReport::default());
    }

    #[test]
    fn energy_model_scales_with_hops() {
        let n = path_net();
        let r = n.server_aggregation(0, &[4]);
        let e = EnergyModel::default().energy(&r);
        assert!((e - 8.0 * 3.0e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_panics() {
        let _ = Network::new(2, &[(0, 5)]);
    }

    #[test]
    fn empty_network_and_bad_source_are_safe() {
        let empty = Network::new(0, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.hops_from(0), Vec::<usize>::new());
        assert_eq!(empty.perimeter_traversal(0, &[]), CostReport::default());
        // A source beyond the network reaches nothing instead of panicking.
        let n = path_net();
        assert!(n.hops_from(99).iter().all(|&h| h == usize::MAX));
    }

    #[test]
    fn cached_aggregation_matches_uncached() {
        let n = path_net();
        let mut cache = BfsCache::new();
        assert!(cache.is_empty());
        for perimeter in [vec![2, 4], vec![5], vec![1, 3, 5]] {
            let direct = n.server_aggregation(0, &perimeter);
            let cached = n.server_aggregation_cached(&mut cache, 0, &perimeter);
            assert_eq!(direct, cached);
        }
        assert_eq!(cache.len(), 1, "one gateway, one cached tree");
    }

    #[test]
    fn traversal_unchanged_by_early_exit() {
        // A denser topology where the early-exit BFS stops well before
        // exhausting the graph: results must match the path-metric by hand.
        let n = 30;
        let mut links: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        links.extend((0..n - 5).map(|i| (i, i + 5))); // chords
        let net = Network::new(n, &links);
        let perimeter = [3, 7, 11, 2];
        let walk = net.perimeter_traversal(3, &perimeter);
        assert!(walk.nodes_contacted >= perimeter.len());
        // Every perimeter sensor is reachable, so the walk visits them all:
        // hops is the sum of greedy nearest-neighbour legs.
        assert!(walk.hops >= 3 && walk.max_route >= 1);
    }
}
