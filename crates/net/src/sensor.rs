//! Sensor-level fault injection: corruption of the *data* a sensing link
//! records, as opposed to the message-level faults of [`crate::fault`].
//!
//! A [`SensorFaultPlan`] is a seeded schedule over sensing-link edges. Each
//! afflicted edge gets exactly one fault mode:
//!
//! - **Dead** — the sensor records nothing during a time window (power loss,
//!   reboot loop),
//! - **Lossy** — a fraction of crossings is silently missed (marginal radio,
//!   debounce bugs),
//! - **Duplicating** — each crossing may be logged twice (retransmission
//!   without dedup),
//! - **Flipped** — the in/out polarity is wired backwards for the sensor's
//!   whole life, so every forward crossing is logged as backward and vice
//!   versa,
//! - **Skewed** — the sensor's clock wanders: timestamps get a per-event
//!   jitter that can break per-direction monotonicity and even escape the
//!   observation horizon.
//!
//! The plan is applied **at ingestion** (see `stq_core::tracker`), so the
//! corrupted `TrackingForm`s really contain wrong data — exactly what the
//! 1-form integrity auditor in `stq-forms` must detect from conservation
//! violations alone. Every decision is a pure function of the seed and the
//! event identity (edge, direction, ordinal), so corrupted runs replay
//! bit-for-bit.

/// The failure mode of one afflicted sensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SensorFaultKind {
    /// Records nothing inside the fault window.
    Dead,
    /// Drops each crossing independently with the plan's `drop_p`.
    Lossy,
    /// Logs each crossing twice with the plan's `dup_p`.
    Duplicating,
    /// Swaps the in/out direction of every crossing.
    Flipped,
    /// Adds per-event clock jitter of up to the plan's `max_skew` seconds.
    Skewed,
}

impl SensorFaultKind {
    /// All fault kinds, in schedule-assignment order.
    pub const ALL: [SensorFaultKind; 5] = [
        SensorFaultKind::Dead,
        SensorFaultKind::Lossy,
        SensorFaultKind::Duplicating,
        SensorFaultKind::Flipped,
        SensorFaultKind::Skewed,
    ];

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SensorFaultKind::Dead => "dead",
            SensorFaultKind::Lossy => "lossy",
            SensorFaultKind::Duplicating => "duplicating",
            SensorFaultKind::Flipped => "flipped",
            SensorFaultKind::Skewed => "skewed",
        }
    }
}

/// One scheduled sensor fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorFault {
    /// The afflicted sensing link (road-edge id).
    pub edge: usize,
    /// What goes wrong.
    pub kind: SensorFaultKind,
    /// When it is active. `Dead` uses this as the outage window; the other
    /// modes afflict the sensor for its whole life (`[-inf, inf]` semantics
    /// are spelled as the full horizon).
    pub from: f64,
    /// End of the active window (inclusive).
    pub until: f64,
}

/// What happens to one recorded crossing under the plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorEventFate {
    /// The (possibly rewritten) event, `None` when the crossing is lost.
    pub event: Option<(bool, f64)>,
    /// A spurious second copy (duplication), if any.
    pub extra: Option<(bool, f64)>,
}

impl SensorEventFate {
    /// An untouched crossing.
    pub fn clean(forward: bool, time: f64) -> Self {
        SensorEventFate { event: Some((forward, time)), extra: None }
    }
}

/// Per-kind fractions of the candidate sensor set to afflict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorFaultMix {
    /// Fraction of sensors that die for a window.
    pub dead: f64,
    /// Fraction with lossy event capture.
    pub lossy: f64,
    /// Fraction that duplicate events.
    pub duplicating: f64,
    /// Fraction with flipped polarity.
    pub flipped: f64,
    /// Fraction with clock skew.
    pub skewed: f64,
}

impl Default for SensorFaultMix {
    fn default() -> Self {
        Self::none()
    }
}

impl SensorFaultMix {
    /// Nothing is afflicted.
    pub fn none() -> Self {
        SensorFaultMix { dead: 0.0, lossy: 0.0, duplicating: 0.0, flipped: 0.0, skewed: 0.0 }
    }

    /// Only dead sensors — the headline sweep axis.
    pub fn dead_only(frac: f64) -> Self {
        SensorFaultMix { dead: frac, ..Self::none() }
    }

    /// Sum of all fractions (must stay ≤ 1 for a valid schedule).
    pub fn total(&self) -> f64 {
        self.dead + self.lossy + self.duplicating + self.flipped + self.skewed
    }
}

/// A seeded, replayable schedule of sensor corruption.
#[derive(Clone, Debug, PartialEq)]
pub struct SensorFaultPlan {
    /// Root seed; all per-event coins derive from it.
    pub seed: u64,
    /// Per-crossing drop probability of `Lossy` sensors.
    pub drop_p: f64,
    /// Per-crossing duplication probability of `Duplicating` sensors.
    pub dup_p: f64,
    /// Clock-jitter amplitude (seconds) of `Skewed` sensors.
    pub max_skew: f64,
    /// The scheduled faults, at most one per edge, sorted by edge.
    faults: Vec<SensorFault>,
}

impl Default for SensorFaultPlan {
    fn default() -> Self {
        SensorFaultPlan::none()
    }
}

impl SensorFaultPlan {
    /// A plan that corrupts nothing.
    pub fn none() -> Self {
        SensorFaultPlan { seed: 0, drop_p: 0.0, dup_p: 0.0, max_skew: 0.0, faults: Vec::new() }
    }

    /// Builds a plan from an explicit fault list (deduplicated by edge,
    /// first fault per edge wins).
    pub fn from_faults(seed: u64, faults: Vec<SensorFault>) -> Self {
        let mut fs = faults;
        fs.sort_by_key(|f| f.edge);
        fs.dedup_by_key(|f| f.edge);
        SensorFaultPlan { seed, drop_p: 0.5, dup_p: 1.0, max_skew: 50.0, faults: fs }
    }

    /// Generates a schedule: deterministically picks disjoint subsets of
    /// `candidate_edges` for each kind per `mix`, with `Dead` outages placed
    /// at seeded offsets inside `horizon = (t0, t1)`.
    pub fn generate(
        seed: u64,
        candidate_edges: &[usize],
        horizon: (f64, f64),
        mix: SensorFaultMix,
    ) -> Self {
        assert!(mix.total() <= 1.0 + 1e-9, "fault fractions must sum to ≤ 1");
        let n = candidate_edges.len();
        // Seeded partial shuffle of the candidates (Fisher–Yates driven by
        // the same SplitMix64 stream as the per-event coins).
        let mut order: Vec<usize> = candidate_edges.to_vec();
        for i in (1..n).rev() {
            let j = (mix_word(seed, 0xE0, i as u64, 0) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let (t0, t1) = horizon;
        let span = (t1 - t0).max(0.0);
        let mut faults = Vec::new();
        let mut cursor = 0usize;
        for kind in SensorFaultKind::ALL {
            let frac = match kind {
                SensorFaultKind::Dead => mix.dead,
                SensorFaultKind::Lossy => mix.lossy,
                SensorFaultKind::Duplicating => mix.duplicating,
                SensorFaultKind::Flipped => mix.flipped,
                SensorFaultKind::Skewed => mix.skewed,
            };
            let take = ((n as f64 * frac).round() as usize).min(n - cursor);
            for &edge in &order[cursor..cursor + take] {
                let (from, until) = if kind == SensorFaultKind::Dead {
                    // Outage covering a seeded 40–80% stretch of the horizon.
                    let u = coin(mix_word(seed, 0xDE, edge as u64, 0));
                    let frac_len = 0.4 + 0.4 * coin(mix_word(seed, 0xDF, edge as u64, 0));
                    let len = span * frac_len;
                    let start = t0 + u * (span - len).max(0.0);
                    (start, start + len)
                } else {
                    (f64::NEG_INFINITY, f64::INFINITY)
                };
                faults.push(SensorFault { edge, kind, from, until });
            }
            cursor += take;
        }
        faults.sort_by_key(|f| f.edge);
        SensorFaultPlan { seed, drop_p: 0.5, dup_p: 1.0, max_skew: 50.0, faults }
    }

    /// True when the plan can never corrupt anything.
    pub fn is_noop(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, sorted by edge.
    pub fn faults(&self) -> &[SensorFault] {
        &self.faults
    }

    /// The fault afflicting `edge`, if any.
    pub fn fault_of(&self, edge: usize) -> Option<&SensorFault> {
        self.faults.binary_search_by_key(&edge, |f| f.edge).ok().map(|i| &self.faults[i])
    }

    /// Edges afflicted by any fault kind — the injected ground truth the
    /// auditor's detections are scored against.
    pub fn corrupted_edges(&self) -> Vec<usize> {
        self.faults.iter().map(|f| f.edge).collect()
    }

    /// Edges whose sensor is dead for some window.
    pub fn dead_edges(&self) -> Vec<usize> {
        self.edges_of(SensorFaultKind::Dead)
    }

    /// Edges afflicted by one specific kind.
    pub fn edges_of(&self, kind: SensorFaultKind) -> Vec<usize> {
        self.faults.iter().filter(|f| f.kind == kind).map(|f| f.edge).collect()
    }

    /// The fate of one crossing. `ordinal` is the event's index on its edge
    /// (any stable per-edge counter works); it keys the per-event coins so
    /// the same ingestion replays identically.
    pub fn corrupt(&self, edge: usize, forward: bool, time: f64, ordinal: u64) -> SensorEventFate {
        let Some(fault) = self.fault_of(edge) else {
            return SensorEventFate::clean(forward, time);
        };
        let active = time >= fault.from && time <= fault.until;
        match fault.kind {
            SensorFaultKind::Dead => {
                if active {
                    SensorEventFate { event: None, extra: None }
                } else {
                    SensorEventFate::clean(forward, time)
                }
            }
            SensorFaultKind::Lossy => {
                if coin(mix_word(self.seed, 0x01, edge as u64, ordinal)) < self.drop_p {
                    SensorEventFate { event: None, extra: None }
                } else {
                    SensorEventFate::clean(forward, time)
                }
            }
            SensorFaultKind::Duplicating => {
                let extra = if coin(mix_word(self.seed, 0x02, edge as u64, ordinal)) < self.dup_p {
                    Some((forward, time))
                } else {
                    None
                };
                SensorEventFate { event: Some((forward, time)), extra }
            }
            SensorFaultKind::Flipped => SensorEventFate::clean(!forward, time),
            SensorFaultKind::Skewed => {
                let jitter = (coin(mix_word(self.seed, 0x03, edge as u64, ordinal)) * 2.0 - 1.0)
                    * self.max_skew;
                SensorEventFate::clean(forward, time + jitter)
            }
        }
    }
}

/// SplitMix64 finalizer over `(seed, salt, a, b)` — the same construction as
/// [`crate::fault::FaultPlan`]'s per-message stream.
fn mix_word(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(salt << 23);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn coin(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(mix: SensorFaultMix) -> SensorFaultPlan {
        let edges: Vec<usize> = (0..100).collect();
        SensorFaultPlan::generate(99, &edges, (0.0, 1_000.0), mix)
    }

    #[test]
    fn noop_plan_touches_nothing() {
        let p = SensorFaultPlan::none();
        assert!(p.is_noop());
        for k in 0..50 {
            assert_eq!(
                p.corrupt(k, k % 2 == 0, k as f64, 0),
                SensorEventFate::clean(k % 2 == 0, k as f64)
            );
        }
    }

    #[test]
    fn generate_is_deterministic_and_disjoint() {
        let mix =
            SensorFaultMix { dead: 0.2, lossy: 0.1, duplicating: 0.1, flipped: 0.1, skewed: 0.1 };
        let a = plan(mix);
        let b = plan(mix);
        assert_eq!(a, b);
        let mut edges = a.corrupted_edges();
        assert_eq!(edges.len(), 60, "20+10+10+10+10 of 100");
        edges.dedup();
        assert_eq!(edges.len(), 60, "fault kinds afflict disjoint sensors");
        assert_eq!(a.dead_edges().len(), 20);
    }

    #[test]
    fn different_seeds_pick_different_sensors() {
        let edges: Vec<usize> = (0..200).collect();
        let mix = SensorFaultMix::dead_only(0.2);
        let a = SensorFaultPlan::generate(1, &edges, (0.0, 100.0), mix);
        let b = SensorFaultPlan::generate(2, &edges, (0.0, 100.0), mix);
        assert_ne!(a.dead_edges(), b.dead_edges());
    }

    #[test]
    fn dead_sensor_silent_only_inside_window() {
        let p = plan(SensorFaultMix::dead_only(0.3));
        let f = p.faults()[0];
        assert_eq!(f.kind, SensorFaultKind::Dead);
        assert!(f.from >= 0.0 && f.until <= 1_000.0 && f.from < f.until);
        let mid = (f.from + f.until) / 2.0;
        assert_eq!(p.corrupt(f.edge, true, mid, 0).event, None);
        if f.from > 0.0 {
            assert!(p.corrupt(f.edge, true, f.from - 1.0, 0).event.is_some());
        }
    }

    #[test]
    fn flip_swaps_direction_and_keeps_time() {
        let p = plan(SensorFaultMix { flipped: 0.2, ..SensorFaultMix::none() });
        let e = p.edges_of(SensorFaultKind::Flipped)[0];
        assert_eq!(p.corrupt(e, true, 5.0, 3), SensorEventFate::clean(false, 5.0));
        assert_eq!(p.corrupt(e, false, 7.0, 4), SensorEventFate::clean(true, 7.0));
    }

    #[test]
    fn lossy_drops_roughly_drop_p() {
        let p = plan(SensorFaultMix { lossy: 0.1, ..SensorFaultMix::none() });
        let e = p.edges_of(SensorFaultKind::Lossy)[0];
        let dropped =
            (0..10_000).filter(|&k| p.corrupt(e, true, k as f64 * 0.1, k).event.is_none()).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - p.drop_p).abs() < 0.03, "drop rate {rate} vs {}", p.drop_p);
    }

    #[test]
    fn duplication_emits_extra_copy() {
        let p = plan(SensorFaultMix { duplicating: 0.1, ..SensorFaultMix::none() });
        let e = p.edges_of(SensorFaultKind::Duplicating)[0];
        let fate = p.corrupt(e, true, 9.0, 0);
        assert_eq!(fate.event, Some((true, 9.0)));
        assert_eq!(fate.extra, Some((true, 9.0)), "dup_p = 1 duplicates every event");
    }

    #[test]
    fn skew_stays_bounded() {
        let p = plan(SensorFaultMix { skewed: 0.1, ..SensorFaultMix::none() });
        let e = p.edges_of(SensorFaultKind::Skewed)[0];
        for k in 0..1_000u64 {
            let t = 500.0;
            let (_, jt) = p.corrupt(e, true, t, k).event.unwrap();
            assert!((jt - t).abs() <= p.max_skew);
        }
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_mix_rejected() {
        let mix = SensorFaultMix { dead: 0.8, lossy: 0.5, ..SensorFaultMix::none() };
        let _ = plan(mix);
    }
}
