//! Property tests on the network simulator: cost accounting is consistent
//! with BFS ground truth on random topologies.

use proptest::prelude::*;
use stq_net::{EnergyModel, Network};

fn topology() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..30).prop_flat_map(|n| {
        // A random spanning-ish structure: each node links to an earlier one
        // (connected), plus random extra links.
        let tree = proptest::collection::vec(0usize..1000, n - 1);
        let extra = proptest::collection::vec((0..n, 0..n), 0..n);
        (Just(n), tree, extra).prop_map(|(n, tree, extra)| {
            let mut links: Vec<(usize, usize)> =
                tree.iter().enumerate().map(|(i, &r)| (i + 1, r % (i + 1))).collect();
            links.extend(extra.into_iter().filter(|&(a, b)| a != b));
            (n, links)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hops_satisfy_triangle_inequality((n, links) in topology(), s in 0usize..30, t in 0usize..30) {
        let net = Network::new(n, &links);
        let (s, t) = (s % n, t % n);
        let hs = net.hops_from(s);
        let ht = net.hops_from(t);
        // Symmetry.
        prop_assert_eq!(hs[t], ht[s]);
        // Triangle inequality through every node.
        if hs[t] != usize::MAX {
            for v in 0..n {
                if hs[v] != usize::MAX && ht[v] != usize::MAX {
                    prop_assert!(hs[t] <= hs[v] + ht[v]);
                }
            }
        }
    }

    #[test]
    fn server_aggregation_cost_consistent((n, links) in topology(), g in 0usize..30,
                                          mask in 0u32..u32::MAX) {
        let net = Network::new(n, &links);
        let g = g % n;
        let perimeter: Vec<usize> = (0..n).filter(|&v| mask & (1 << (v % 32)) != 0).collect();
        let hops = net.hops_from(g);
        let report = net.server_aggregation(g, &perimeter);
        // Hops = 2 × Σ reachable distances; max_route = max distance.
        let expected: usize =
            perimeter.iter().filter(|&&p| hops[p] != usize::MAX).map(|&p| 2 * hops[p]).sum();
        prop_assert_eq!(report.hops, expected);
        let max = perimeter
            .iter()
            .filter(|&&p| hops[p] != usize::MAX)
            .map(|&p| hops[p])
            .max()
            .unwrap_or(0);
        prop_assert_eq!(report.max_route, max);
        // Energy is linear in hops.
        let e = EnergyModel::default().energy(&report);
        prop_assert!((e - report.hops as f64 * 3.0e-6).abs() < 1e-12);
    }

    #[test]
    fn traversal_visits_all_reachable((n, links) in topology(), seed in 0usize..30,
                                      mask in 0u32..u32::MAX) {
        let net = Network::new(n, &links);
        let seed_node = seed % n;
        let perimeter: Vec<usize> = (0..n).filter(|&v| mask & (1 << (v % 32)) != 0).collect();
        let hops = net.hops_from(seed_node);
        let reachable = perimeter.iter().filter(|&&p| hops[p] != usize::MAX).count();
        let report = net.perimeter_traversal(seed_node, &perimeter);
        // Contacts at least every reachable perimeter node (plus relays),
        // and at least the seed itself.
        prop_assert!(report.nodes_contacted >= reachable.max(usize::from(!perimeter.is_empty())) );
    }

    #[test]
    fn flood_reaches_every_reachable_target((n, links) in topology(), s in 0usize..30) {
        let net = Network::new(n, &links);
        let s = s % n;
        let hops = net.hops_from(s);
        let targets: Vec<usize> = (0..n).collect();
        let report = net.flood(s, &targets);
        let reachable = hops.iter().filter(|&&h| h != usize::MAX).count();
        prop_assert_eq!(report.nodes_contacted, reachable);
        // Flood depth equals the eccentricity of s (within its component).
        let ecc = hops.iter().filter(|&&h| h != usize::MAX).max().copied().unwrap_or(0);
        prop_assert!(report.max_route >= ecc);
    }
}
