//! Property tests: generated road networks are valid planar cities and
//! generated trajectories are valid timed walks on them.

use proptest::prelude::*;
use stq_mobility::gen::{delaunay_city, highway, perturbed_grid, ring_radial};
use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn perturbed_grid_always_valid(nx in 3usize..9, ny in 3usize..9,
                                   jitter in 0.0f64..0.3, drop in 0.0f64..0.5,
                                   ramps in 1usize..8, seed in 0u64..500) {
        let net = perturbed_grid(nx, ny, jitter, drop, ramps, seed).unwrap();
        prop_assert_eq!(net.num_junctions(), nx * ny);
        prop_assert_eq!(net.embedding().euler_characteristic(), 2);
        prop_assert!(!net.gate_junctions().is_empty());
        // Connectivity: opposite corners reachable.
        prop_assert!(net.shortest_path(0, nx * ny - 1).is_some());
    }

    #[test]
    fn delaunay_city_always_valid(n in 10usize..120, drop in 0.0f64..0.4, seed in 0u64..500) {
        let net = delaunay_city(n, drop, 6, seed).unwrap();
        prop_assert_eq!(net.num_junctions(), n);
        prop_assert_eq!(net.embedding().euler_characteristic(), 2);
        // Planar edge bound (ramps included).
        prop_assert!(net.num_edges() <= 3 * (n + 1));
    }

    #[test]
    fn ring_radial_always_valid(rings in 1usize..5, spokes in 3usize..12, seed in 0u64..200) {
        let net = ring_radial(rings, spokes, 4, seed).unwrap();
        prop_assert_eq!(net.num_junctions(), 1 + rings * spokes);
        prop_assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn highway_always_valid(n in 2usize..12) {
        let net = highway(n, 2).unwrap();
        prop_assert_eq!(net.num_junctions(), 2 * n);
        prop_assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn workloads_are_valid_walks(seed in 0u64..200, n_obj in 1usize..8,
                                 speed in 1.0f64..20.0, exit_p in 0.0f64..1.0) {
        let net = perturbed_grid(5, 5, 0.15, 0.1, 3, seed).unwrap();
        let cfg = TrajectoryConfig {
            speed,
            pause: 10.0,
            duration: 300.0,
            exit_probability: exit_p,
        };
        let mix = WorkloadMix { random_waypoint: n_obj, commuter: n_obj, transit: n_obj };
        for traj in generate_mix(&net, mix, cfg, seed) {
            prop_assert!(traj.validate(&net), "object {} produced an invalid walk", traj.id);
            prop_assert_eq!(traj.visits.first().map(|&(_, v)| v), Some(net.v_ext()));
            // Timestamps within the spawn window and a grace period for the
            // final exit walk.
            prop_assert!(traj.start_time() >= 0.0);
            prop_assert!(traj.end_time() <= 300.0 + 400.0 / speed + 1.0);
        }
    }
}
