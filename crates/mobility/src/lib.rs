//! # stq-mobility
//!
//! The mobility domain (paper §3.2.1): planar road networks and moving
//! objects travelling on them.
//!
//! Because the original evaluation assets (Beijing OSM extract, T-Drive and
//! Geolife GPS logs) are not redistributable, this crate generates synthetic
//! equivalents that exercise the identical code paths:
//!
//! - [`gen`] — planar road-network generators: perturbed lattice,
//!   Delaunay city with irregular blocks, ring-radial city, and a highway
//!   corridor with ramps (for the double-counting scenario of §3.1.2),
//! - [`network::RoadNetwork`] — an embedded road graph with an explicit
//!   external junction `⋆v_ext` (Fig. 8a) through which objects enter and
//!   leave the monitored region,
//! - [`trajectory`] — timed walks on the road graph: random-waypoint,
//!   hotspot "commuter" (density-skewed, as real taxi fleets are), and
//!   border-to-border transit traffic,
//! - [`matching`] — GPS noise simulation and the map-matching preprocessing
//!   of §5.1.3 (snap to nearest node, stitch with shortest paths).
//!
//! All generation is deterministic under a caller-supplied seed.

pub mod gen;
pub mod matching;
pub mod network;
pub mod stats;
pub mod trajectory;

pub use network::RoadNetwork;
pub use trajectory::{Trajectory, TrajectoryConfig, WorkloadMix};

/// Timestamps (seconds); shared convention with `stq-forms`.
pub type Time = f64;
