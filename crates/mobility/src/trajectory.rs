//! Moving-object trajectories: timed walks on the road network.
//!
//! A trajectory is the map-matched form the paper's pipeline produces from
//! raw GPS (§5.1.3): a time-ordered sequence of junction arrivals. Every
//! trajectory starts at the external junction `v_ext` and walks in through a
//! gate, so the differential-form population invariant stays exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::RoadNetwork;
use crate::Time;
use stq_planar::embedding::VertexId;
use stq_planar::paths::{dijkstra_to, WeightedAdj};

/// A timed walk over road-network junctions.
///
/// Consecutive visited junctions are adjacent in the network; timestamps are
/// non-decreasing. The first visit is always `(spawn_time, v_ext)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Distinct object identifier (used only by the test oracle; the
    /// framework itself never stores it).
    pub id: u64,
    /// Junction arrivals `(time, junction)` in time order.
    pub visits: Vec<(Time, VertexId)>,
}

impl Trajectory {
    /// Number of junction arrivals.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// True when the trajectory has no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// Time of the first visit.
    pub fn start_time(&self) -> Time {
        self.visits.first().map(|&(t, _)| t).unwrap_or(0.0)
    }

    /// Time of the last visit.
    pub fn end_time(&self) -> Time {
        self.visits.last().map(|&(t, _)| t).unwrap_or(0.0)
    }

    /// Total travelled distance (sum of traversed edge lengths).
    pub fn distance(&self, net: &RoadNetwork) -> f64 {
        self.visits
            .windows(2)
            .map(|w| net.edge_between(w[0].1, w[1].1).map(|e| net.edge_length(e)).unwrap_or(0.0))
            .sum()
    }

    /// Validates internal consistency against the network: adjacency of
    /// consecutive junctions and monotone timestamps.
    pub fn validate(&self, net: &RoadNetwork) -> bool {
        self.visits.windows(2).all(|w| {
            w[0].0 <= w[1].0 && (w[0].1 == w[1].1 || net.edge_between(w[0].1, w[1].1).is_some())
        })
    }
}

/// Shared trajectory-generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryConfig {
    /// Travel speed in distance units per second.
    pub speed: f64,
    /// Dwell time at each waypoint before the next trip.
    pub pause: Time,
    /// Simulation horizon: activity happens within `[0, duration]`.
    pub duration: Time,
    /// Probability that an object eventually exits through a gate instead of
    /// staying until the horizon.
    pub exit_probability: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig { speed: 10.0, pause: 60.0, duration: 86_400.0, exit_probability: 0.3 }
    }
}

/// Composition of the synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadMix {
    /// Objects doing uniform random-waypoint trips.
    pub random_waypoint: usize,
    /// Objects whose destinations skew towards hotspots (commuters/taxis).
    pub commuter: usize,
    /// Objects crossing border-to-border (through traffic).
    pub transit: usize,
}

impl WorkloadMix {
    /// Total number of objects.
    pub fn total(&self) -> usize {
        self.random_waypoint + self.commuter + self.transit
    }
}

/// Generates a full workload: `mix` objects with the given config,
/// deterministic under `seed`. Hotspots for the commuter share are drawn
/// once from the network extent.
pub fn generate_mix(
    net: &RoadNetwork,
    mix: WorkloadMix,
    cfg: TrajectoryConfig,
    seed: u64,
) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    let adj = net.adjacency(f64::INFINITY / 4.0);
    let bbox = net.bbox();
    let n_hot = 3.max(net.num_junctions() / 300);
    let hotspots: Vec<(stq_geom::Point, f64)> = (0..n_hot)
        .map(|_| {
            let p = stq_geom::Point::new(
                rng.gen_range(bbox.min.x..=bbox.max.x),
                rng.gen_range(bbox.min.y..=bbox.max.y),
            );
            (p, bbox.width().max(bbox.height()) * 0.1)
        })
        .collect();
    let hot_weights = hotspot_weights(net, &hotspots);

    let mut out = Vec::with_capacity(mix.total());
    let mut id = 0u64;
    for _ in 0..mix.random_waypoint {
        out.push(random_waypoint(net, &adj, id, cfg, None, &mut rng));
        id += 1;
    }
    for _ in 0..mix.commuter {
        out.push(random_waypoint(net, &adj, id, cfg, Some(&hot_weights), &mut rng));
        id += 1;
    }
    for _ in 0..mix.transit {
        out.push(transit(net, &adj, id, cfg, &mut rng));
        id += 1;
    }
    out
}

/// Junction sampling weights as a Gaussian mixture around hotspots.
fn hotspot_weights(net: &RoadNetwork, hotspots: &[(stq_geom::Point, f64)]) -> Vec<f64> {
    let n = net.embedding().num_vertices();
    let mut w = vec![0.0; n];
    for v in net.junctions() {
        let p = net.position(v);
        let mut acc = 0.05; // uniform floor
        for &(c, sigma) in hotspots {
            let d2 = p.dist2(c);
            acc += (-d2 / (2.0 * sigma * sigma)).exp();
        }
        w[v] = acc;
    }
    w
}

fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Walks the object in from `v_ext` to `start` instantaneously at `t`,
/// returning the visit prefix.
fn entry_walk(
    net: &RoadNetwork,
    adj: &WeightedAdj,
    start: VertexId,
    t: Time,
    rng: &mut StdRng,
) -> Vec<(Time, VertexId)> {
    let gates = net.gate_junctions();
    let gate = gates[rng.gen_range(0..gates.len())];
    let mut visits = vec![(t, net.v_ext()), (t, gate)];
    if gate != start {
        if let Some((verts, _)) = dijkstra_to(adj, gate, start) {
            visits.extend(verts.into_iter().skip(1).map(|v| (t, v)));
        }
    }
    visits
}

/// Random-waypoint trajectory; with `weights`, destinations are sampled from
/// the hotspot mixture instead of uniformly.
fn random_waypoint(
    net: &RoadNetwork,
    adj: &WeightedAdj,
    id: u64,
    cfg: TrajectoryConfig,
    weights: Option<&[f64]>,
    rng: &mut StdRng,
) -> Trajectory {
    let junctions: Vec<VertexId> = net.junctions().collect();
    let pick = |rng: &mut StdRng| -> VertexId {
        match weights {
            Some(w) => sample_weighted(w, rng),
            None => junctions[rng.gen_range(0..junctions.len())],
        }
    };
    let spawn = rng.gen_range(0.0..cfg.duration * 0.5);
    let start = pick(rng);
    let mut visits = entry_walk(net, adj, start, spawn, rng);
    let mut now = spawn;
    let mut here = start;

    loop {
        now += cfg.pause;
        if now >= cfg.duration {
            break;
        }
        let dest = pick(rng);
        if dest == here {
            continue;
        }
        let Some((verts, edges)) = dijkstra_to(adj, here, dest) else { continue };
        for (v, e) in verts.into_iter().skip(1).zip(edges) {
            now += net.edge_length(e) / cfg.speed;
            visits.push((now, v));
            if now >= cfg.duration {
                break;
            }
        }
        here = visits.last().unwrap().1;
        if now >= cfg.duration {
            break;
        }
        if rng.gen_bool(cfg.exit_probability * 0.2) {
            // Leave through the nearest gate.
            let gates = net.gate_junctions();
            let gate = gates[rng.gen_range(0..gates.len())];
            if let Some((verts, edges)) = dijkstra_to(adj, here, gate) {
                for (v, e) in verts.into_iter().skip(1).zip(edges) {
                    now += net.edge_length(e) / cfg.speed;
                    visits.push((now, v));
                }
                visits.push((now, net.v_ext()));
            }
            break;
        }
    }
    Trajectory { id, visits }
}

/// Border-to-border transit: enter a random gate, drive to a different gate,
/// exit. Models through traffic.
fn transit(
    net: &RoadNetwork,
    adj: &WeightedAdj,
    id: u64,
    cfg: TrajectoryConfig,
    rng: &mut StdRng,
) -> Trajectory {
    let gates = net.gate_junctions();
    let spawn = rng.gen_range(0.0..cfg.duration * 0.8);
    let a = gates[rng.gen_range(0..gates.len())];
    let b = loop {
        let g = gates[rng.gen_range(0..gates.len())];
        if g != a || gates.len() == 1 {
            break g;
        }
    };
    let mut visits = vec![(spawn, net.v_ext()), (spawn, a)];
    let mut now = spawn;
    if let Some((verts, edges)) = dijkstra_to(adj, a, b) {
        for (v, e) in verts.into_iter().skip(1).zip(edges) {
            now += net.edge_length(e) / cfg.speed;
            visits.push((now, v));
        }
    }
    visits.push((now, net.v_ext()));
    Trajectory { id, visits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::perturbed_grid;

    fn test_net() -> RoadNetwork {
        perturbed_grid(6, 6, 0.15, 0.1, 4, 11).unwrap()
    }

    fn small_cfg() -> TrajectoryConfig {
        TrajectoryConfig { speed: 5.0, pause: 10.0, duration: 500.0, exit_probability: 0.5 }
    }

    #[test]
    fn mix_generates_requested_counts() {
        let net = test_net();
        let mix = WorkloadMix { random_waypoint: 5, commuter: 4, transit: 3 };
        let trajs = generate_mix(&net, mix, small_cfg(), 99);
        assert_eq!(trajs.len(), 12);
        // Ids are distinct.
        let mut ids: Vec<u64> = trajs.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn trajectories_are_valid_walks() {
        let net = test_net();
        let mix = WorkloadMix { random_waypoint: 10, commuter: 10, transit: 10 };
        for t in generate_mix(&net, mix, small_cfg(), 5) {
            assert!(t.validate(&net), "invalid walk for object {}", t.id);
            assert_eq!(t.visits[0].1, net.v_ext(), "must start outside");
            assert!(t.len() >= 2);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let net = test_net();
        let mix = WorkloadMix { random_waypoint: 3, commuter: 3, transit: 3 };
        let a = generate_mix(&net, mix, small_cfg(), 42);
        let b = generate_mix(&net, mix, small_cfg(), 42);
        assert_eq!(a, b);
        let c = generate_mix(&net, mix, small_cfg(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn transit_exits_through_ext() {
        let net = test_net();
        let mix = WorkloadMix { random_waypoint: 0, commuter: 0, transit: 8 };
        for t in generate_mix(&net, mix, small_cfg(), 17) {
            assert_eq!(t.visits.first().unwrap().1, net.v_ext());
            assert_eq!(t.visits.last().unwrap().1, net.v_ext());
            assert!(t.validate(&net));
        }
    }

    #[test]
    fn times_respect_speed() {
        let net = test_net();
        let cfg = small_cfg();
        let mix = WorkloadMix { random_waypoint: 5, commuter: 0, transit: 0 };
        for t in generate_mix(&net, mix, cfg, 3) {
            for w in t.visits.windows(2) {
                if let Some(e) = net.edge_between(w[0].1, w[1].1) {
                    let dt = w[1].0 - w[0].0;
                    let travel = net.edge_length(e) / cfg.speed;
                    // Entry walks are instantaneous; moving legs take at
                    // least the travel time (pauses may inflate dt).
                    assert!(
                        dt + 1e-9 >= travel || w[0].0 == t.start_time(),
                        "leg faster than speed limit"
                    );
                }
            }
        }
    }

    #[test]
    fn hotspot_commuters_skew_density() {
        // Commuter destinations concentrate: the most-visited junction of
        // the commuter workload should collect clearly more visits than the
        // median junction.
        let net = test_net();
        let mix = WorkloadMix { random_waypoint: 0, commuter: 30, transit: 0 };
        let trajs = generate_mix(&net, mix, small_cfg(), 23);
        let mut visits = vec![0usize; net.embedding().num_vertices()];
        for t in &trajs {
            for &(_, v) in &t.visits {
                visits[v] += 1;
            }
        }
        let mut sorted: Vec<usize> = net.junctions().map(|v| visits[v]).collect();
        sorted.sort_unstable();
        let max = *sorted.last().unwrap();
        let median = sorted[sorted.len() / 2];
        assert!(max >= median * 2, "expected skew, max={max} median={median}");
    }
}
