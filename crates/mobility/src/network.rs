//! Road networks: embedded planar graphs with an external junction.

use std::collections::HashMap;

use stq_geom::{Point, Rect};
use stq_planar::embedding::{EdgeId, VertexId};
use stq_planar::paths::{dijkstra_to, WeightedAdj};
use stq_planar::Embedding;

/// Errors from road-network construction.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkError {
    /// Underlying embedding construction failed.
    Embedding(String),
    /// The road graph must be connected so every junction is reachable.
    Disconnected,
    /// An interior face had non-positive area — the geometry self-intersects.
    SelfIntersecting,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Embedding(e) => write!(f, "embedding error: {e}"),
            NetworkError::Disconnected => write!(f, "road graph is disconnected"),
            NetworkError::SelfIntersecting => write!(f, "road geometry self-intersects"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A planar road network: the paper's mobility graph `⋆G`.
///
/// Junctions are embedding vertices with positions; roads are edges. One
/// distinguished position-less vertex `v_ext` represents the outside world
/// (the paper's infinity node `⋆v_ext`): every object enters and leaves the
/// monitored region by traversing a *ramp* edge incident to it, which is what
/// keeps the differential-form population invariant exact.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    emb: Embedding,
    v_ext: VertexId,
    /// Edge ids of the ramps (incident to `v_ext`).
    ramps: Vec<EdgeId>,
    /// Lookup `(min(u,v), max(u,v)) → edge id`. The generated road graphs
    /// are simple, so a single id per pair suffices.
    edge_lookup: HashMap<(VertexId, VertexId), EdgeId>,
    /// Cached per-edge lengths; ramps get a nominal length of 0.
    lengths: Vec<f64>,
    bbox: Rect,
}

impl RoadNetwork {
    /// Builds a road network from junction coordinates and road segments
    /// (which must already be non-crossing — run
    /// `stq_planar::arrangement::planarize` first for raw geometry), then
    /// attaches the external junction to `num_ramps` junctions spread evenly
    /// along the outer face.
    pub fn new(
        positions: Vec<Point>,
        edges: Vec<(VertexId, VertexId)>,
        num_ramps: usize,
    ) -> Result<Self, NetworkError> {
        let base = Embedding::from_geometry(positions, edges)
            .map_err(|e| NetworkError::Embedding(e.to_string()))?;
        if !base.is_planar_connected() {
            // Distinguish the two failure modes for the caller. Connectivity
            // first: a disconnected graph also skews the Euler count (each
            // component traces its own outer face).
            let mut uf = stq_planar::UnionFind::new(base.num_vertices());
            for &(u, v) in base.edges() {
                uf.union(u, v);
            }
            let mut roots: Vec<usize> = (0..base.num_vertices())
                .filter(|&v| base.degree(v) > 0)
                .map(|v| uf.find(v))
                .collect();
            roots.sort_unstable();
            roots.dedup();
            if roots.len() > 1 {
                return Err(NetworkError::Disconnected);
            }
            return Err(NetworkError::SelfIntersecting);
        }
        let faces = base.faces();
        // Interior faces of a valid plane graph have positive area.
        let outer = base.outer_face(&faces).ok_or(NetworkError::SelfIntersecting)?;
        for (fid, walk) in faces.walks.iter().enumerate() {
            if fid == outer {
                continue;
            }
            if base.face_signed_area(walk).map(|a| a <= 0.0).unwrap_or(true) {
                return Err(NetworkError::SelfIntersecting);
            }
        }

        // Pick ramp junctions spread evenly along the outer face walk.
        let outer_vertices: Vec<VertexId> = {
            let mut seen = Vec::new();
            for &h in &faces.walks[outer] {
                let v = base.origin(h);
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
            seen
        };
        let k = num_ramps.clamp(1, outer_vertices.len());
        let attach: Vec<VertexId> =
            (0..k).map(|i| outer_vertices[i * outer_vertices.len() / k]).collect();

        let (emb, v_ext) = base
            .attach_vertex_in_face(&faces, outer, &attach)
            .map_err(|e| NetworkError::Embedding(e.to_string()))?;

        let mut edge_lookup = HashMap::with_capacity(emb.num_edges());
        let mut lengths = Vec::with_capacity(emb.num_edges());
        let mut ramps = Vec::new();
        for e in 0..emb.num_edges() {
            let (u, v) = emb.edge_endpoints(e);
            edge_lookup.insert(Self::key(u, v), e);
            match emb.edge_length(e) {
                Some(l) => lengths.push(l),
                None => {
                    lengths.push(0.0);
                    ramps.push(e);
                }
            }
        }
        let pts: Vec<Point> = emb.positions().iter().flatten().copied().collect();
        let bbox = Rect::bounding(&pts).unwrap_or_else(Rect::empty);
        Ok(RoadNetwork { emb, v_ext, ramps, edge_lookup, lengths, bbox })
    }

    #[inline]
    fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// The underlying embedding (includes `v_ext` and the ramps).
    pub fn embedding(&self) -> &Embedding {
        &self.emb
    }

    /// The external junction.
    pub fn v_ext(&self) -> VertexId {
        self.v_ext
    }

    /// Edge ids of the ramps to the outside world.
    pub fn ramps(&self) -> &[EdgeId] {
        &self.ramps
    }

    /// Number of junctions, excluding `v_ext`.
    pub fn num_junctions(&self) -> usize {
        self.emb.num_vertices() - 1
    }

    /// Number of road edges, including ramps.
    pub fn num_edges(&self) -> usize {
        self.emb.num_edges()
    }

    /// Junction ids (excludes `v_ext`).
    pub fn junctions(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.emb.num_vertices()).filter(move |&v| v != self.v_ext)
    }

    /// Position of a junction. Panics for `v_ext` (it has none).
    pub fn position(&self, v: VertexId) -> Point {
        self.emb.position(v).expect("junction has a position; v_ext does not")
    }

    /// Bounding box of all junction positions.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Length of edge `e` (0 for ramps).
    pub fn edge_length(&self, e: EdgeId) -> f64 {
        self.lengths[e]
    }

    /// Looks up the edge between two adjacent vertices.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.edge_lookup.get(&Self::key(u, v)).copied()
    }

    /// True if traversing edge `e` from `u` goes in the edge's construction
    /// (forward) direction. Panics if `u` is not an endpoint.
    pub fn is_forward_from(&self, e: EdgeId, u: VertexId) -> bool {
        let (a, b) = self.emb.edge_endpoints(e);
        if u == a {
            true
        } else if u == b {
            false
        } else {
            panic!("vertex {u} is not an endpoint of edge {e}");
        }
    }

    /// Weighted adjacency over *all* vertices (including `v_ext`), ramps
    /// weighted by `ramp_weight` (use a large value to discourage routing
    /// through the outside world, 0 for instant entry walks).
    pub fn adjacency(&self, ramp_weight: f64) -> WeightedAdj {
        let mut adj: WeightedAdj = vec![Vec::new(); self.emb.num_vertices()];
        for e in 0..self.emb.num_edges() {
            let (u, v) = self.emb.edge_endpoints(e);
            let w = if self.lengths[e] == 0.0 { ramp_weight } else { self.lengths[e] };
            adj[u].push((v, e, w));
            adj[v].push((u, e, w));
        }
        adj
    }

    /// Shortest junction path `from → to` avoiding the outside world
    /// (ramps weighted prohibitively). Returns `(vertices, edges)`.
    pub fn shortest_path(
        &self,
        from: VertexId,
        to: VertexId,
    ) -> Option<(Vec<VertexId>, Vec<EdgeId>)> {
        let adj = self.adjacency(f64::INFINITY / 4.0);
        dijkstra_to(&adj, from, to)
    }

    /// Junctions adjacent to `v_ext` (the entry/exit gates).
    pub fn gate_junctions(&self) -> Vec<VertexId> {
        self.ramps
            .iter()
            .map(|&e| {
                let (u, v) = self.emb.edge_endpoints(e);
                if u == self.v_ext {
                    v
                } else {
                    u
                }
            })
            .collect()
    }

    /// Total length of all roads (ramps excluded).
    pub fn total_road_length(&self) -> f64 {
        self.lengths.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> (Vec<Point>, Vec<(usize, usize)>) {
        let mut pos = Vec::new();
        for y in 0..n {
            for x in 0..n {
                pos.push(Point::new(x as f64, y as f64));
            }
        }
        let mut edges = Vec::new();
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    edges.push((i, i + 1));
                }
                if y + 1 < n {
                    edges.push((i, i + n));
                }
            }
        }
        (pos, edges)
    }

    #[test]
    fn build_lattice_network() {
        let (pos, edges) = lattice(4);
        let net = RoadNetwork::new(pos, edges, 4).unwrap();
        assert_eq!(net.num_junctions(), 16);
        assert_eq!(net.ramps().len(), 4);
        assert_eq!(net.gate_junctions().len(), 4);
        // Embedding stays planar after attaching v_ext.
        assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn shortest_path_avoids_outside() {
        let (pos, edges) = lattice(4);
        let net = RoadNetwork::new(pos, edges, 4).unwrap();
        let (verts, es) = net.shortest_path(0, 15).unwrap();
        assert_eq!(verts.first(), Some(&0));
        assert_eq!(verts.last(), Some(&15));
        assert_eq!(es.len(), 6); // Manhattan distance on the lattice
        assert!(!verts.contains(&net.v_ext()));
    }

    #[test]
    fn edge_lookup_and_direction() {
        let (pos, edges) = lattice(3);
        let net = RoadNetwork::new(pos, edges, 2).unwrap();
        let e = net.edge_between(0, 1).unwrap();
        assert!(net.is_forward_from(e, 0));
        assert!(!net.is_forward_from(e, 1));
        assert!(net.edge_between(0, 8).is_none());
    }

    #[test]
    #[should_panic]
    fn is_forward_from_bad_vertex_panics() {
        let (pos, edges) = lattice(3);
        let net = RoadNetwork::new(pos, edges, 2).unwrap();
        let e = net.edge_between(0, 1).unwrap();
        net.is_forward_from(e, 5);
    }

    #[test]
    fn disconnected_rejected() {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
        ];
        let edges = vec![(0, 1), (2, 3)];
        assert!(matches!(RoadNetwork::new(pos, edges, 1), Err(NetworkError::Disconnected)));
    }

    #[test]
    fn crossing_geometry_rejected() {
        // An X of two crossing edges with no intersection vertex: the
        // angular rotation system yields a non-planar trace.
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        ];
        let edges = vec![(0, 1), (2, 3), (0, 2), (2, 1), (1, 3), (3, 0)];
        assert!(RoadNetwork::new(pos, edges, 1).is_err());
    }

    #[test]
    fn ramp_count_clamped() {
        let (pos, edges) = lattice(3);
        let net = RoadNetwork::new(pos, edges, 1000).unwrap();
        // Outer face of a 3x3 lattice has 8 distinct vertices.
        assert_eq!(net.ramps().len(), 8);
        assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn lengths_and_bbox() {
        let (pos, edges) = lattice(3);
        let net = RoadNetwork::new(pos, edges, 2).unwrap();
        assert_eq!(net.total_road_length(), 12.0); // 12 unit edges
        assert_eq!(net.bbox().area(), 4.0);
        for &r in net.ramps() {
            assert_eq!(net.edge_length(r), 0.0);
        }
    }
}
