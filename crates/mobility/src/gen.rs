//! Synthetic planar road-network generators.
//!
//! These replace the paper's Beijing OSM extract (§5.1.1). Each generator
//! produces a connected plane graph; `RoadNetwork::new` then validates
//! planarity and attaches the external junction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{NetworkError, RoadNetwork};
use stq_geom::{triangulate, Point};
use stq_planar::UnionFind;

/// A perturbed lattice city: `nx × ny` junctions with jittered positions and
/// a fraction of non-bridge streets removed, producing irregular,
/// non-axis-aligned blocks (the property the paper's dead-space argument
/// needs — "exemplary of real-world cities, except Manhattan", §3.1.1).
///
/// `jitter` is relative to the unit spacing and clamped to `[0, 0.3]` to
/// preserve planarity of lattice edges; `drop` is the fraction of removable
/// edges deleted (connectivity is always preserved).
pub fn perturbed_grid(
    nx: usize,
    ny: usize,
    jitter: f64,
    drop: f64,
    num_ramps: usize,
    seed: u64,
) -> Result<RoadNetwork, NetworkError> {
    assert!(nx >= 2 && ny >= 2, "need at least a 2x2 lattice");
    let jitter = jitter.clamp(0.0, 0.3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let dx = rng.gen_range(-jitter..=jitter);
            let dy = rng.gen_range(-jitter..=jitter);
            pos.push(Point::new(x as f64 + dx, y as f64 + dy));
        }
    }
    let mut edges = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            if x + 1 < nx {
                edges.push((i, i + 1));
            }
            if y + 1 < ny {
                edges.push((i, i + nx));
            }
        }
    }
    let edges = drop_edges_keep_connected(edges, pos.len(), drop, &mut rng);
    RoadNetwork::new(pos, edges, num_ramps)
}

/// A Delaunay city: `n` junctions scattered with mild density variation,
/// connected by their Delaunay triangulation with a fraction of edges
/// removed. Produces curved, irregular blocks of heterogeneous size — the
/// default experiment substrate.
pub fn delaunay_city(
    n: usize,
    drop: f64,
    num_ramps: usize,
    seed: u64,
) -> Result<RoadNetwork, NetworkError> {
    assert!(n >= 4, "need at least 4 junctions");
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).sqrt() * 10.0;
    // Density variation: mix a uniform field with a few Gaussian clusters,
    // like real cities (denser downtown).
    let n_clusters = 3 + n / 400;
    let clusters: Vec<Point> = (0..n_clusters)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let mut pos = Vec::with_capacity(n);
    while pos.len() < n {
        let p = if rng.gen_bool(0.5) {
            Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))
        } else {
            let c = clusters[rng.gen_range(0..clusters.len())];
            let r = rng.gen_range(0.0..side * 0.12);
            let a = rng.gen_range(0.0..std::f64::consts::TAU);
            Point::new((c.x + r * a.cos()).clamp(0.0, side), (c.y + r * a.sin()).clamp(0.0, side))
        };
        pos.push(p);
    }
    let tri = triangulate(&pos);
    let edges = drop_edges_keep_connected(tri.edges(), n, drop, &mut rng);
    RoadNetwork::new(pos, edges, num_ramps)
}

/// A ring-radial city: `rings` concentric rings crossed by `spokes` radial
/// avenues, with angular jitter. Small and regular; useful for examples and
/// fast tests.
pub fn ring_radial(
    rings: usize,
    spokes: usize,
    num_ramps: usize,
    seed: u64,
) -> Result<RoadNetwork, NetworkError> {
    assert!(rings >= 1 && spokes >= 3, "need ≥1 ring and ≥3 spokes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos = vec![Point::ORIGIN]; // centre junction
    let mut edges = Vec::new();
    let idx = |ring: usize, spoke: usize| 1 + ring * spokes + spoke;
    for ring in 0..rings {
        let radius = (ring + 1) as f64 * 10.0;
        for s in 0..spokes {
            let jitter = rng.gen_range(-0.2..0.2) / (ring + 1) as f64;
            let a = std::f64::consts::TAU * (s as f64 / spokes as f64) + jitter;
            pos.push(Point::new(radius * a.cos(), radius * a.sin()));
            // Ring edge to the previous spoke.
            edges.push((idx(ring, s), idx(ring, (s + spokes - 1) % spokes)));
            // Radial edge inward.
            if ring == 0 {
                edges.push((0, idx(0, s)));
            } else {
                edges.push((idx(ring, s), idx(ring - 1, s)));
            }
        }
    }
    RoadNetwork::new(pos, dedup_edges(edges), num_ramps)
}

/// A highway corridor with `interchanges` exits onto a parallel service
/// road — the double-counting scenario of §3.1.2: a vehicle that exits at
/// one ramp and re-enters at the next must not be counted twice.
///
/// Junction layout (for `interchanges = 3`):
///
/// ```text
///   service:  s0 ---- s1 ---- s2
///             |  \   /| \    /|
///   highway:  h0 ---- h1 ---- h2
/// ```
///
/// Highway junctions sit on `y = 0`, service junctions on `y = 5`; exit and
/// entry ramps are the diagonals.
pub fn highway(interchanges: usize, num_ramps: usize) -> Result<RoadNetwork, NetworkError> {
    assert!(interchanges >= 2, "need at least 2 interchanges");
    let n = interchanges;
    let mut pos = Vec::with_capacity(2 * n);
    for i in 0..n {
        pos.push(Point::new(i as f64 * 20.0, 0.0)); // h_i
    }
    for i in 0..n {
        pos.push(Point::new(i as f64 * 20.0, 5.0)); // s_i
    }
    let mut edges = Vec::new();
    for i in 0..n - 1 {
        edges.push((i, i + 1)); // highway segment
        edges.push((n + i, n + i + 1)); // service road segment
    }
    for i in 0..n {
        edges.push((i, n + i)); // interchange ramp
    }
    RoadNetwork::new(pos, edges, num_ramps)
}

/// Removes up to `drop` fraction of edges uniformly at random while keeping
/// the graph connected (a random spanning forest is protected first).
fn drop_edges_keep_connected(
    mut edges: Vec<(usize, usize)>,
    n: usize,
    drop: f64,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let drop = drop.clamp(0.0, 1.0);
    if drop == 0.0 {
        return edges;
    }
    // Shuffle, then greedily mark spanning-tree edges as protected.
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let mut uf = UnionFind::new(n);
    let mut protected = vec![false; edges.len()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        if uf.union(u, v) {
            protected[i] = true;
        }
    }
    edges
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| protected[i] || rng.gen_bool(1.0 - drop))
        .map(|(_, e)| e)
        .collect()
}

fn dedup_edges(mut edges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbed_grid_valid() {
        let net = perturbed_grid(8, 6, 0.25, 0.15, 6, 42).unwrap();
        assert_eq!(net.num_junctions(), 48);
        assert_eq!(net.embedding().euler_characteristic(), 2);
        assert!(net.ramps().len() == 6);
    }

    #[test]
    fn perturbed_grid_deterministic() {
        let a = perturbed_grid(5, 5, 0.2, 0.2, 4, 7).unwrap();
        let b = perturbed_grid(5, 5, 0.2, 0.2, 4, 7).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.junctions() {
            assert_eq!(a.position(v), b.position(v));
        }
    }

    #[test]
    fn delaunay_city_valid() {
        let net = delaunay_city(300, 0.2, 8, 1).unwrap();
        assert_eq!(net.num_junctions(), 300);
        assert_eq!(net.embedding().euler_characteristic(), 2);
        // Roads per junction stay reasonable (planar: E <= 3V - 6 + ramps).
        assert!(net.num_edges() <= 3 * 300 - 6 + net.ramps().len());
    }

    #[test]
    fn delaunay_city_zero_drop_is_triangulation() {
        let net = delaunay_city(50, 0.0, 4, 9).unwrap();
        assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn ring_radial_valid() {
        let net = ring_radial(3, 8, 4, 5).unwrap();
        assert_eq!(net.num_junctions(), 1 + 3 * 8);
        assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn highway_valid_and_shaped() {
        let net = highway(5, 2).unwrap();
        assert_eq!(net.num_junctions(), 10);
        // 4 highway + 4 service + 5 interchange edges (+2 ramps).
        assert_eq!(net.num_edges(), 13 + 2);
        assert_eq!(net.embedding().euler_characteristic(), 2);
    }

    #[test]
    fn drop_preserves_connectivity() {
        let net = perturbed_grid(10, 10, 0.1, 0.45, 4, 3).unwrap();
        // RoadNetwork::new would have failed on disconnection; double-check
        // any pair is reachable.
        let p = net.shortest_path(0, net.num_junctions() - 1);
        assert!(p.is_some());
    }

    #[test]
    #[should_panic]
    fn tiny_grid_panics() {
        let _ = perturbed_grid(1, 5, 0.0, 0.0, 1, 0);
    }
}
