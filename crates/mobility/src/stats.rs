//! Workload statistics: edge loads, origin–destination structure, and
//! population curves. Used by the experiment harness for sanity reporting
//! and by the query-adaptive weighting of §4.3 ("the number of times each
//! node appeared in previous queries" generalizes to load-weighted
//! selection).

use crate::network::RoadNetwork;
use crate::trajectory::Trajectory;
use crate::Time;

/// Aggregate statistics over a trajectory workload.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Traversal count per road edge (both directions pooled).
    pub edge_load: Vec<usize>,
    /// Visits per junction.
    pub junction_visits: Vec<usize>,
    /// Total distance travelled by all objects.
    pub total_distance: f64,
    /// Number of objects that exited through a gate.
    pub exited: usize,
    /// Number of trajectories analysed.
    pub objects: usize,
}

impl WorkloadStats {
    /// Computes statistics for a workload.
    pub fn compute(net: &RoadNetwork, trajectories: &[Trajectory]) -> Self {
        let mut stats = WorkloadStats {
            edge_load: vec![0; net.num_edges()],
            junction_visits: vec![0; net.embedding().num_vertices()],
            ..Default::default()
        };
        stats.objects = trajectories.len();
        for traj in trajectories {
            for &(_, v) in &traj.visits {
                stats.junction_visits[v] += 1;
            }
            for w in traj.visits.windows(2) {
                if let Some(e) = net.edge_between(w[0].1, w[1].1) {
                    stats.edge_load[e] += 1;
                    stats.total_distance += net.edge_length(e);
                }
            }
            if traj.visits.len() >= 2 && traj.visits.last().map(|&(_, v)| v) == Some(net.v_ext()) {
                stats.exited += 1;
            }
        }
        stats
    }

    /// Gini coefficient of the edge-load distribution — 0 for perfectly
    /// uniform traffic, → 1 for traffic concentrated on few roads. Real
    /// city traffic is strongly concentrated; the hotspot commuter model
    /// exists to reproduce that skew.
    pub fn edge_load_gini(&self) -> f64 {
        let mut loads: Vec<f64> = self.edge_load.iter().map(|&l| l as f64).collect();
        loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = loads.len() as f64;
        let total: f64 = loads.iter().sum();
        if total <= 0.0 || n < 2.0 {
            return 0.0;
        }
        let weighted: f64 = loads.iter().enumerate().map(|(i, &l)| (i as f64 + 1.0) * l).sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }

    /// The `k` busiest edges with their loads, descending.
    pub fn top_edges(&self, k: usize) -> Vec<(usize, usize)> {
        let mut idx: Vec<(usize, usize)> = self.edge_load.iter().copied().enumerate().collect();
        idx.sort_by_key(|&(_, load)| std::cmp::Reverse(load));
        idx.truncate(k);
        idx
    }
}

/// Population inside the network over time: objects present at each sample
/// instant (computed from the trajectories directly; the differential-form
/// machinery is certified against this in integration tests).
pub fn population_curve(
    net: &RoadNetwork,
    trajectories: &[Trajectory],
    samples: usize,
    horizon: Time,
) -> Vec<(Time, usize)> {
    (0..samples)
        .map(|k| {
            let t = horizon * k as f64 / (samples.max(2) - 1) as f64;
            let inside = trajectories
                .iter()
                .filter(|traj| {
                    let idx = traj.visits.partition_point(|&(ts, _)| ts <= t);
                    idx > 0 && traj.visits[idx - 1].1 != net.v_ext()
                })
                .count();
            (t, inside)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::perturbed_grid;
    use crate::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

    fn setup() -> (RoadNetwork, Vec<Trajectory>) {
        let net = perturbed_grid(6, 6, 0.1, 0.1, 4, 77).unwrap();
        let cfg =
            TrajectoryConfig { speed: 5.0, pause: 20.0, duration: 800.0, exit_probability: 0.5 };
        let mix = WorkloadMix { random_waypoint: 10, commuter: 10, transit: 10 };
        let trajs = generate_mix(&net, mix, cfg, 3);
        (net, trajs)
    }

    #[test]
    fn stats_account_every_leg() {
        let (net, trajs) = setup();
        let stats = WorkloadStats::compute(&net, &trajs);
        assert_eq!(stats.objects, 30);
        let total_legs: usize = stats.edge_load.iter().sum();
        let expected: usize =
            trajs.iter().map(|t| t.visits.windows(2).filter(|w| w[0].1 != w[1].1).count()).sum();
        assert_eq!(total_legs, expected);
        assert!(stats.total_distance > 0.0);
        // All transit objects exit.
        assert!(stats.exited >= 10);
    }

    #[test]
    fn commuter_load_more_skewed_than_uniform() {
        let net = perturbed_grid(8, 8, 0.1, 0.1, 4, 5).unwrap();
        let cfg =
            TrajectoryConfig { speed: 5.0, pause: 10.0, duration: 1500.0, exit_probability: 0.0 };
        let uni = generate_mix(
            &net,
            WorkloadMix { random_waypoint: 40, commuter: 0, transit: 0 },
            cfg,
            9,
        );
        let hot = generate_mix(
            &net,
            WorkloadMix { random_waypoint: 0, commuter: 40, transit: 0 },
            cfg,
            9,
        );
        let g_uni = WorkloadStats::compute(&net, &uni).edge_load_gini();
        let g_hot = WorkloadStats::compute(&net, &hot).edge_load_gini();
        assert!(
            g_hot > g_uni,
            "hotspot traffic must concentrate load: uniform {g_uni:.3} vs hotspot {g_hot:.3}"
        );
    }

    #[test]
    fn population_curve_bounds() {
        let (net, trajs) = setup();
        let curve = population_curve(&net, &trajs, 10, 800.0);
        assert_eq!(curve.len(), 10);
        for (t, pop) in &curve {
            assert!(*t >= 0.0 && *t <= 800.0);
            assert!(*pop <= trajs.len());
        }
        // Someone is inside at some point.
        assert!(curve.iter().any(|&(_, p)| p > 0));
    }

    #[test]
    fn top_edges_sorted() {
        let (net, trajs) = setup();
        let stats = WorkloadStats::compute(&net, &trajs);
        let top = stats.top_edges(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn gini_of_empty_and_uniform() {
        let stats = WorkloadStats { edge_load: vec![0; 10], ..Default::default() };
        assert_eq!(stats.edge_load_gini(), 0.0);
        let uniform = WorkloadStats { edge_load: vec![5; 10], ..Default::default() };
        assert!(uniform.edge_load_gini().abs() < 1e-9);
    }
}
