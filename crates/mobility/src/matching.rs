//! GPS noise simulation and map matching (paper §5.1.3).
//!
//! "We then map-match the trajectories to the road network by mapping each
//! trajectory location to the nearest node and connecting them via the
//! shortest path in the graph." This module implements exactly that
//! pipeline, plus the inverse direction (rendering a junction walk as noisy
//! GPS fixes) so the whole loop can be tested end-to-end without real data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::RoadNetwork;
use crate::trajectory::Trajectory;
use crate::Time;
use stq_geom::Point;
use stq_planar::paths::dijkstra_to;
use stq_spatial::GridIndex;

/// A raw GPS fix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpsFix {
    /// Fix timestamp.
    pub time: Time,
    /// Reported (noisy) position.
    pub pos: Point,
}

/// Renders a junction walk as GPS fixes sampled every `interval` seconds
/// along the walk geometry, with isotropic Gaussian-ish noise of standard
/// deviation `noise` (Box–Muller). Deterministic under `seed`.
///
/// The external junction has no geometry, so the portion of the walk at
/// `v_ext` is skipped — exactly like a GPS unit that has no fix before
/// entering the mapped area.
pub fn to_gps(
    net: &RoadNetwork,
    traj: &Trajectory,
    interval: Time,
    noise: f64,
    seed: u64,
) -> Vec<GpsFix> {
    assert!(interval > 0.0, "sampling interval must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = move || {
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };

    let mut fixes = Vec::new();
    let mut next_t = traj.start_time();
    for w in traj.visits.windows(2) {
        let (t0, a) = w[0];
        let (t1, b) = w[1];
        let (Some(pa), Some(pb)) = (net.embedding().position(a), net.embedding().position(b))
        else {
            next_t = next_t.max(t1);
            continue;
        };
        while next_t <= t1 {
            if next_t >= t0 {
                let frac = if t1 > t0 { (next_t - t0) / (t1 - t0) } else { 0.0 };
                let p = pa.lerp(pb, frac);
                fixes.push(GpsFix {
                    time: next_t,
                    pos: Point::new(p.x + gauss() * noise, p.y + gauss() * noise),
                });
            }
            next_t += interval;
        }
    }
    fixes
}

/// Map-matches GPS fixes back onto the network: each fix snaps to the
/// nearest junction (via a grid index), consecutive duplicates collapse, and
/// gaps are stitched with shortest paths. Returns a junction walk whose
/// timestamps interpolate the fix times along each stitched path.
pub fn map_match(net: &RoadNetwork, fixes: &[GpsFix], id: u64) -> Trajectory {
    if fixes.is_empty() {
        return Trajectory { id, visits: Vec::new() };
    }
    let entries: Vec<(Point, u32)> = net.junctions().map(|v| (net.position(v), v as u32)).collect();
    let grid_n = ((entries.len() as f64).sqrt().ceil() as usize).max(1);
    let grid = GridIndex::build(&entries, grid_n, grid_n);

    // Snap and deduplicate.
    let mut snapped: Vec<(Time, usize)> = Vec::new();
    for f in fixes {
        let v = grid.nearest(f.pos).expect("network has junctions").id as usize;
        if snapped.last().map(|&(_, lv)| lv != v).unwrap_or(true) {
            snapped.push((f.time, v));
        }
    }

    // Stitch consecutive snapped junctions with shortest paths.
    let adj = net.adjacency(f64::INFINITY / 4.0);
    let mut visits: Vec<(Time, usize)> = vec![snapped[0]];
    for w in snapped.windows(2) {
        let (t0, a) = w[0];
        let (t1, b) = w[1];
        match dijkstra_to(&adj, a, b) {
            Some((verts, edges)) if !edges.is_empty() => {
                let total: f64 = edges.iter().map(|&e| net.edge_length(e)).sum();
                let mut acc = 0.0;
                for (v, e) in verts.into_iter().skip(1).zip(edges) {
                    acc += net.edge_length(e);
                    let t = if total > 0.0 { t0 + (t1 - t0) * acc / total } else { t1 };
                    visits.push((t, v));
                }
            }
            _ => visits.push((t1, b)),
        }
    }
    Trajectory { id, visits }
}

/// Fraction of matched junction arrivals that also appear in the reference
/// walk (a simple recall-style accuracy score for tests).
pub fn match_accuracy(reference: &Trajectory, matched: &Trajectory) -> f64 {
    if matched.visits.is_empty() {
        return 0.0;
    }
    let ref_set: std::collections::HashSet<usize> =
        reference.visits.iter().map(|&(_, v)| v).collect();
    let hits = matched.visits.iter().filter(|&&(_, v)| ref_set.contains(&v)).count();
    hits as f64 / matched.visits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::perturbed_grid;
    use crate::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

    fn setup() -> (RoadNetwork, Trajectory) {
        let net = perturbed_grid(6, 6, 0.1, 0.0, 4, 21).unwrap();
        let cfg =
            TrajectoryConfig { speed: 2.0, pause: 5.0, duration: 400.0, exit_probability: 0.0 };
        let mix = WorkloadMix { random_waypoint: 1, commuter: 0, transit: 0 };
        let traj = generate_mix(&net, mix, cfg, 7).pop().unwrap();
        (net, traj)
    }

    #[test]
    fn gps_rendering_skips_outside() {
        let (net, traj) = setup();
        let fixes = to_gps(&net, &traj, 3.0, 0.0, 1);
        assert!(!fixes.is_empty());
        // All fixes lie within (a slightly inflated) network bbox.
        let bb = net.bbox().inflated(1e-6);
        for f in &fixes {
            assert!(bb.contains(f.pos), "fix {} outside bbox", f.pos);
        }
        // Times are strictly increasing by the interval grid.
        for w in fixes.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn noiseless_matching_recovers_walk() {
        let (net, traj) = setup();
        let fixes = to_gps(&net, &traj, 1.0, 0.0, 2);
        let matched = map_match(&net, &fixes, traj.id);
        assert!(matched.validate(&net));
        assert!(match_accuracy(&traj, &matched) > 0.95);
    }

    #[test]
    fn noisy_matching_still_reasonable() {
        let (net, traj) = setup();
        // Noise of 0.15 on unit-ish street spacing.
        let fixes = to_gps(&net, &traj, 1.0, 0.15, 3);
        let matched = map_match(&net, &fixes, traj.id);
        assert!(matched.validate(&net));
        assert!(match_accuracy(&traj, &matched) > 0.6);
    }

    #[test]
    fn empty_fixes_give_empty_trajectory() {
        let (net, _) = setup();
        let matched = map_match(&net, &[], 0);
        assert!(matched.is_empty());
    }

    #[test]
    fn matched_times_monotone() {
        let (net, traj) = setup();
        let fixes = to_gps(&net, &traj, 2.0, 0.1, 5);
        let matched = map_match(&net, &fixes, 0);
        for w in matched.visits.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let (net, traj) = setup();
        let _ = to_gps(&net, &traj, 0.0, 0.0, 1);
    }
}
