//! Differential properties of the subscription registry: delta-maintained
//! brackets are **bit-identical** to re-executing the compiled plan against
//! a reference store that applies the exact shard accept rule — through
//! random streams with late events, on clean and quarantined deployments,
//! across epoch boundaries.
//!
//! `standing_registry_suite` is the CI entry point: `STQ_STANDING_SEED`
//! re-keys the whole scenario, so a matrix over seeds exercises different
//! cities, deployments and streams against the same assertions.

use std::sync::Arc;

use proptest::prelude::*;
use stq_core::engine::QueryEngine;
use stq_core::prelude::*;
use stq_core::tracker::Crossing;
use stq_forms::FormStore;
use stq_subscribe::{SubscribeError, SubscriptionRegistry, UpdateCause};

/// A snapshot instant past every event either side will ever ingest: the
/// standing bracket tracks *live net occupancy*, i.e. the snapshot fold at
/// any time beyond the stream horizon.
const T_LATE: f64 = 1.0e15;

fn small_scenario() -> impl Strategy<Value = Scenario> {
    (60usize..140, 0u64..200, 2usize..8).prop_map(|(junctions, seed, objs)| {
        Scenario::build(ScenarioConfig {
            junctions,
            mix: WorkloadMix { random_waypoint: objs, commuter: objs, transit: objs / 2 },
            trajectory: TrajectoryConfig {
                speed: 8.0,
                pause: 30.0,
                duration: 1_500.0,
                exit_probability: 0.2,
            },
            seed,
            ..Default::default()
        })
    })
}

fn deployment(s: &Scenario, frac: f64, seed: u64) -> SampledGraph {
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * frac) as usize).max(3);
    let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, seed);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation)
}

/// Every `stride`-th monitored edge — the quarantine list the runtime hands
/// its shards (`Runtime::with_quarantine` keeps the graph, refuses edges).
fn quarantine_list(g: &SampledGraph, stride: usize) -> Vec<usize> {
    g.monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &on)| on)
        .map(|(e, _)| e)
        .step_by(stride)
        .collect()
}

fn monitored_edges(g: &SampledGraph) -> Vec<usize> {
    g.monitored().iter().enumerate().filter(|&(_, &on)| on).map(|(e, _)| e).collect()
}

/// A deterministic post-history stream over the monitored edges: mostly
/// monotone times, with every 11th event thrown far into the past so the
/// watermark mirror (the `apply_crossing` accept rule) gets exercised.
fn stream(edges: &[usize], n: usize, t0: f64, salt: u64) -> Vec<Crossing> {
    (0..n)
        .map(|i| {
            let k = (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt);
            let late = i % 11 == 10;
            Crossing {
                time: if late { t0 - 500.0 + (i % 7) as f64 } else { t0 + i as f64 * 0.25 },
                edge: edges[(k as usize) % edges.len()],
                forward: k & 2 == 0,
            }
        })
        .collect()
}

/// The reference model: the exact accept rule of the shard ingest path
/// (`stq_durability::apply_crossing` — reject iff strictly behind the
/// direction's last timestamp), applied to a plain [`FormStore`].
fn reference_apply(store: &mut FormStore, c: &Crossing) -> bool {
    if store.form(c.edge).timestamps(c.forward).last().is_some_and(|&last| c.time < last) {
        return false;
    }
    store.record(c.edge, c.forward, c.time);
    true
}

/// Folds the reference store into the expected `(value, lower, upper)` for
/// one plan, term by term in plan order, mirroring the serving runtime's
/// aggregation: a trusted boundary edge contributes its net count to all
/// three; a quarantined one contributes its lifetime worst case (totals of
/// *every* ingested event, late ones included) to the bounds only.
fn reference_bracket(
    plan: &stq_core::engine::QueryPlan,
    store: &FormStore,
    totals: &[[u64; 2]],
    quarantined: &[usize],
) -> (f64, f64, f64) {
    let (mut value, mut lower, mut upper) = (0.0f64, 0.0f64, 0.0f64);
    for be in &plan.boundary {
        if quarantined.contains(&be.edge) {
            let (fwd, bwd) = (totals[be.edge][0] as f64, totals[be.edge][1] as f64);
            let (t_in, t_out) = if be.inward_forward { (fwd, bwd) } else { (bwd, fwd) };
            lower -= t_out;
            upper += t_in;
        } else {
            let form = store.form(be.edge);
            let net = form.count_until(be.inward_forward, T_LATE) as f64
                - form.count_until(!be.inward_forward, T_LATE) as f64;
            value += net;
            lower += net;
            upper += net;
        }
    }
    (value, lower, upper)
}

fn assert_bits(a: f64, b: f64, ctx: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: {a} vs {b}");
}

/// The core differential: run a stream through the registry and the
/// reference model side by side, checking bit-identity at every epoch
/// boundary (and that re-snapshot reproduces the delta-maintained bracket
/// exactly), on one graph with one quarantine list.
fn run_differential(s: &Scenario, g: &SampledGraph, quarantined: &[usize], seed: u64) {
    let engine = Arc::new(QueryEngine::new(64));
    let registry =
        SubscriptionRegistry::new(Arc::clone(&engine), &s.tracked.store, quarantined.to_vec());
    let mut store = s.tracked.store.clone();
    let mut totals: Vec<[u64; 2]> = (0..store.num_edges())
        .map(|e| [store.form(e).total(true) as u64, store.form(e).total(false) as u64])
        .collect();

    let mut subs = Vec::new();
    for (q, _, _) in s.make_queries(4, 0.15, 300.0, seed ^ 0x99) {
        for approx in [Approximation::Lower, Approximation::Upper] {
            match registry.subscribe(&s.sensing, g, &q, approx, None) {
                Ok(reg) => subs.push((
                    reg.id,
                    engine
                        .cached(reg.plan_id)
                        .unwrap_or_else(|| panic!("plan of a live subscription must stay cached")),
                )),
                Err(SubscribeError::Unresolvable) => {}
            }
        }
    }
    if subs.is_empty() {
        return; // tiny deployments can miss every region; nothing to check
    }

    let edges = monitored_edges(g);
    let events = stream(&edges, 400, 2_000.0, seed);
    for (epoch_round, chunk) in events.chunks(100).enumerate() {
        for c in chunk {
            registry.on_ingest(c);
            totals[c.edge][usize::from(!c.forward)] += 1;
            reference_apply(&mut store, c);
        }
        // Between-epoch check: the delta-maintained bracket equals the
        // reference fold bit for bit.
        for (id, plan) in &subs {
            let b = registry.bracket(*id).expect("subscription is live");
            let (v, lo, hi) = reference_bracket(plan, &store, &totals, quarantined);
            let ctx = format!("{id} round {epoch_round} pre-epoch");
            assert_bits(b.value, v, &format!("{ctx}: value"));
            assert_bits(b.lower, lo, &format!("{ctx}: lower"));
            assert_bits(b.upper, hi, &format!("{ctx}: upper"));
        }
        // Epoch boundary: re-snapshot must reproduce the incrementally
        // maintained bracket exactly — the soundness of the hand-off.
        let before: Vec<_> = subs.iter().map(|(id, _)| registry.bracket(*id).unwrap()).collect();
        let updates = registry.advance_epoch([]);
        assert_eq!(updates.len(), subs.len());
        for (u, b) in updates.iter().zip(&before) {
            assert_eq!(u.cause, UpdateCause::Resnapshot);
            assert_bits(u.bracket.value, b.value, "resnapshot value");
            assert_bits(u.bracket.lower, b.lower, "resnapshot lower");
            assert_bits(u.bracket.upper, b.upper, "resnapshot upper");
            assert_eq!(u.bracket.epoch, b.epoch + 1, "epoch must advance");
            assert_eq!(u.bracket.deltas, 0, "re-snapshot resets the delta count");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delta maintenance is bit-identical to the reference fold on a clean
    /// deployment, at every epoch, through late events.
    #[test]
    fn deltas_match_reexecution_clean(s in small_scenario(),
                                      frac in 0.1f64..0.5,
                                      seed in 0u64..100) {
        let g = deployment(&s, frac, seed);
        run_differential(&s, &g, &[], seed);
    }

    /// Same property with a quarantine stride: trusted edges stay exact,
    /// quarantined ones widen by the totals worst case — still bit-identical
    /// to the reference fold at every epoch.
    #[test]
    fn deltas_match_reexecution_quarantined(s in small_scenario(),
                                            frac in 0.1f64..0.5,
                                            seed in 0u64..100,
                                            stride in 2usize..6) {
        let g = deployment(&s, frac, seed);
        let q = quarantine_list(&g, stride);
        run_differential(&s, &g, &q, seed);
    }
}

/// The CI standing-equivalence job's registry half: one deterministic
/// scenario per `STQ_STANDING_SEED`, clean and quarantined, multi-epoch.
#[test]
fn standing_registry_suite() {
    let seed: u64 =
        std::env::var("STQ_STANDING_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(11);
    let s = Scenario::build(ScenarioConfig {
        junctions: 200,
        mix: WorkloadMix { random_waypoint: 10, commuter: 8, transit: 5 },
        trajectory: TrajectoryConfig {
            speed: 10.0,
            pause: 30.0,
            duration: 2_500.0,
            exit_probability: 0.15,
        },
        seed,
        ..Default::default()
    });
    let g = deployment(&s, 0.25, seed ^ 0xce);
    run_differential(&s, &g, &[], seed);
    run_differential(&s, &g, &quarantine_list(&g, 3), seed ^ 0x5a);
}

#[test]
fn late_events_do_not_move_trusted_brackets() {
    let s = Scenario::build(ScenarioConfig::default());
    let g = deployment(&s, 0.3, 7);
    let engine = Arc::new(QueryEngine::new(16));
    let registry = SubscriptionRegistry::new(Arc::clone(&engine), &s.tracked.store, []);
    let Some((q, _, _)) = s.make_queries(8, 0.2, 300.0, 17).into_iter().next() else {
        panic!("scenario must yield a region");
    };
    let reg = registry
        .subscribe(&s.sensing, &g, &q, Approximation::Upper, None)
        .expect("region resolves");
    let plan = engine.cached(reg.plan_id).expect("plan cached");
    let Some(be) = plan.boundary.first().copied() else {
        return; // empty boundary: nothing to ingest on
    };
    // An event far before the edge's recorded history is late in a non-empty
    // direction: totals grow, the trusted bracket must not move.
    let dir_nonempty = s.tracked.store.form(be.edge).total(true) > 0;
    if !dir_nonempty {
        return;
    }
    let before = registry.bracket(reg.id).unwrap();
    let obs = registry.on_ingest(&Crossing { time: -1.0e12, edge: be.edge, forward: true });
    assert!(obs.late, "event behind the watermark must be flagged late");
    let after = registry.bracket(reg.id).unwrap();
    assert_eq!(before, after, "late event on a trusted edge must not move the bracket");
    assert_eq!(registry.stats().late_ignored, 1);
}

#[test]
fn shed_pushes_coalesce_on_relax() {
    let s = Scenario::build(ScenarioConfig::default());
    let g = deployment(&s, 0.3, 7);
    let engine = Arc::new(QueryEngine::new(16));
    let registry = SubscriptionRegistry::new(Arc::clone(&engine), &s.tracked.store, []);
    let (tx, rx) = crossbeam::channel::unbounded();
    let (reg, be) = s
        .make_queries(8, 0.2, 300.0, 29)
        .into_iter()
        .find_map(|(q, _, _)| {
            let reg = registry
                .subscribe(&s.sensing, &g, &q, Approximation::Upper, Some(tx.clone()))
                .ok()?;
            match engine.cached(reg.plan_id).expect("plan cached").boundary.first().copied() {
                Some(be) => Some((reg, be)),
                None => {
                    registry.unsubscribe(reg.id);
                    None
                }
            }
        })
        .expect("some region must resolve with a non-empty boundary");
    // Drain the Registered baselines (one per subscribe attempt that stuck).
    while let Ok(u) = rx.try_recv() {
        assert_eq!(u.cause, UpdateCause::Registered);
    }

    assert!(registry.set_shed_pushes(true).is_empty(), "turning shedding on pushes nothing");
    assert!(registry.shedding_pushes());
    // Events while shedding move the bracket but push nothing.
    for i in 0..3 {
        registry.on_ingest(&Crossing { time: 1.0e9 + i as f64, edge: be.edge, forward: true });
    }
    assert!(rx.try_recv().is_err(), "no pushes while shedding");
    assert_eq!(registry.stats().pushes_shed, 3);
    let live = registry.bracket(reg.id).expect("subscription is live");
    assert_eq!(live.deltas, 3, "brackets keep moving while pushes are shed");

    // Turning shedding off delivers exactly one Coalesced catch-up carrying
    // the current bracket — everything the subscriber missed, absorbed.
    let updates = registry.set_shed_pushes(false);
    assert_eq!(updates.len(), 1);
    let u = rx.try_recv().expect("coalesced catch-up push");
    assert_eq!(u.cause, UpdateCause::Coalesced);
    assert_eq!(u.bracket, live);
    assert!(rx.try_recv().is_err(), "exactly one catch-up push");
    assert!(!registry.shedding_pushes());
    assert!(registry.set_shed_pushes(false).is_empty(), "re-asserting off is a no-op");

    // Delta pushes resume after the relax.
    registry.on_ingest(&Crossing { time: 2.0e9, edge: be.edge, forward: true });
    assert_eq!(rx.try_recv().expect("pushes resumed").cause, UpdateCause::Delta);
}

#[test]
fn unsubscribe_and_dead_channels_clean_routes() {
    let s = Scenario::build(ScenarioConfig::default());
    let g = deployment(&s, 0.3, 7);
    let engine = Arc::new(QueryEngine::new(16));
    let registry = SubscriptionRegistry::new(Arc::clone(&engine), &s.tracked.store, []);
    let Some((q, _, _)) = s.make_queries(8, 0.2, 300.0, 23).into_iter().next() else {
        panic!("scenario must yield a region");
    };
    let (tx, rx) = crossbeam::channel::unbounded();
    let a = registry.subscribe(&s.sensing, &g, &q, Approximation::Upper, Some(tx)).unwrap();
    let b = registry.subscribe(&s.sensing, &g, &q, Approximation::Upper, None).unwrap();
    assert!(b.plan_cache_hit, "second subscription on the same region reuses the plan");
    assert_eq!(registry.len(), 2);

    // The push channel delivered the baseline.
    let first = rx.recv().expect("baseline update");
    assert_eq!(first.cause, UpdateCause::Registered);
    assert_eq!(first.subscription, a.id);

    assert!(registry.unsubscribe(b.id));
    assert!(!registry.unsubscribe(b.id), "double unsubscribe reports absence");
    assert_eq!(registry.len(), 1);

    // Dropping the receiver auto-unsubscribes on the next push attempt.
    drop(rx);
    let plan = engine.cached(a.plan_id).expect("plan cached");
    if let Some(be) = plan.boundary.first().copied() {
        registry.on_ingest(&Crossing { time: 1.0e9, edge: be.edge, forward: true });
        assert_eq!(registry.len(), 0, "dead push channel implies unsubscribe");
    }
}
