//! # stq-subscribe
//!
//! Standing spatiotemporal range subscriptions with incremental delta
//! maintenance — the continuous-query layer over the paper's boundary-chain
//! machinery (ROADMAP item 2, after "Distributed processing of continuous
//! range queries over moving objects").
//!
//! A monitoring workload asks the *same* region every tick. Re-executing the
//! prefix-sum fold per tick costs O(boundary) per query per tick; this crate
//! instead compiles each registered region into a reusable
//! [`QueryPlan`] **once** (through the shared
//! [`QueryEngine`] and its LRU cache), indexes the plan's boundary edges in a
//! routing table, and updates each subscription's running
//! `[lower, upper]` bracket by ±1 **count deltas** as crossings arrive —
//! O(affected subscriptions) per event, O(1) per tick per subscription.
//!
//! ## Exactness contract
//!
//! The maintained bracket is **bit-identical** to re-executing the plan
//! against the live store at every instant between epochs:
//!
//! - The registry mirrors the shard-side accept rule exactly: an event is
//!   counted iff its timestamp is not behind that edge-direction's watermark
//!   (the same predicate as `stq_durability::apply_crossing`, which both the
//!   live ingest path and recovery replay use). A late event changes neither
//!   the forms nor the bracket value.
//! - A **trusted** boundary edge contributes its net inward count; an
//!   accepted crossing moves `value`, `lower` and `upper` together by ±1.
//! - A **quarantined** boundary edge is refused by its shard, so the
//!   re-execute path widens by the edge's lifetime totals (which grow even
//!   for late-dropped events). The registry applies the same rule as a
//!   delta: an inward event adds 1 to `upper`, an outward event subtracts 1
//!   from `lower`, and `value` stays put.
//! - A quarantined edge that carries a **certified interval** (installed by
//!   [`SubscriptionRegistry::certify_quarantined`] from the degraded-mode
//!   imputer) contributes the intersection of that interval — widened by
//!   the events since certification — with the lifetime worst case. Both
//!   intersection endpoints move in lockstep with the worst case under new
//!   events, so the same ±1 delta rule keeps delta-maintained and
//!   re-snapshot brackets bit-identical.
//!
//! All counts are integers, every intermediate is far below 2⁵³, and the
//! baseline fold visits boundary edges in plan order — so float addition is
//! exact and the delta-maintained bracket equals the re-executed fold bit
//! for bit, not merely approximately.
//!
//! ## Epochs and re-snapshots
//!
//! Quarantine extensions and supervisor crash-recovery change the serving
//! topology out from under a running bracket. [`SubscriptionRegistry::advance_epoch`]
//! makes that sound: it bumps the registry epoch, absorbs any extra
//! quarantine, recomputes every subscription's bracket from the mirror
//! (a re-snapshot through the compiled plan), and only then lets deltas
//! resume — a delta stamped with an old epoch can never survive into a new
//! one because re-snapshot overwrites the bracket wholesale. The serving
//! runtime calls this under its ingest-lane lock, atomically with the
//! shard-health flip.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use stq_core::engine::{PlanId, QueryEngine, QueryPlan};
use stq_core::query::{Approximation, QueryRegion};
use stq_core::sampled::SampledGraph;
use stq_core::sensing::SensingGraph;
use stq_core::tracker::Crossing;
use stq_forms::FormStore;

/// Stable handle of one standing subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// A subscription's live answer: the running count estimate and its sound
/// `[lower, upper]` bracket, maintained by deltas between re-snapshots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StandingBracket {
    /// The count estimate. On a fully trusted boundary this equals the
    /// re-executed plan exactly; quarantined edges contribute 0 here and
    /// widen the bounds instead (mirroring the runtime's refusal handling).
    pub value: f64,
    /// Sound lower bound on the re-executed value.
    pub lower: f64,
    /// Sound upper bound on the re-executed value.
    pub upper: f64,
    /// The registry epoch this bracket was last re-snapshot under.
    pub epoch: u64,
    /// Deltas folded in since that re-snapshot.
    pub deltas: u64,
}

impl StandingBracket {
    /// True when the bracket pins the value exactly (no quarantined
    /// widening has touched it since the last re-snapshot).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Why a [`BracketUpdate`] was pushed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateCause {
    /// The subscription was just registered; this is its baseline.
    Registered,
    /// One ingested crossing moved the bracket.
    Delta,
    /// An epoch advance recomputed the bracket from the mirror.
    Resnapshot,
    /// Delta pushes were shed for a while (runtime brownout); this is the
    /// catch-up push carrying the current bracket, which absorbed every
    /// suppressed delta in between.
    Coalesced,
}

/// One pushed bracket change, delivered on the subscriber's channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BracketUpdate {
    /// Which subscription moved.
    pub subscription: SubscriptionId,
    /// The registry epoch the new bracket belongs to.
    pub epoch: u64,
    /// The bracket after the change.
    pub bracket: StandingBracket,
    /// What triggered the push.
    pub cause: UpdateCause,
}

/// Why a subscription could not be registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscribeError {
    /// The sampled graph cannot cover the region at all (a query miss,
    /// §5.5): there is no boundary to maintain.
    Unresolvable,
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::Unresolvable => {
                write!(f, "the sampled graph cannot resolve the region (query miss)")
            }
        }
    }
}

impl std::error::Error for SubscribeError {}

/// What [`SubscriptionRegistry::subscribe`] hands back.
#[derive(Clone, Copy, Debug)]
pub struct Registered {
    /// The new subscription's handle.
    pub id: SubscriptionId,
    /// Its baseline bracket (also pushed as the first update).
    pub bracket: StandingBracket,
    /// The compiled plan's cache identity (the subscription pins its own
    /// `Arc` of the plan, so eviction never affects a live subscription).
    pub plan_id: PlanId,
    /// Whether the region's plan came from the engine's cache.
    pub plan_cache_hit: bool,
    /// Boundary edges the subscription listens on.
    pub boundary_edges: usize,
}

/// What one ingested crossing did to the registry (the runtime folds this
/// into its metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestObservation {
    /// Subscriptions whose bracket moved on this event.
    pub deltas: usize,
    /// The event arrived behind the watermark and left trusted counts
    /// untouched (quarantined widenings still apply — totals grow anyway).
    pub late: bool,
}

/// Point-in-time registry accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Current epoch (bumped by every [`SubscriptionRegistry::advance_epoch`]).
    pub epoch: u64,
    /// Bracket deltas applied since construction.
    pub deltas_applied: u64,
    /// Per-subscription re-snapshots performed at epoch advances.
    pub resnapshots: u64,
    /// Events that arrived behind an edge watermark (counted toward totals
    /// but not toward trusted brackets — exactly like the shard dedup).
    pub late_ignored: u64,
    /// Delta pushes suppressed while push shedding was on (the brackets
    /// still moved; subscribers caught up via a `Coalesced` push).
    pub pushes_shed: u64,
}

struct Subscription {
    plan: Arc<QueryPlan>,
    bracket: StandingBracket,
    push: Option<Sender<BracketUpdate>>,
}

/// A certified net-flow interval for one quarantined edge, installed by the
/// degraded-mode imputation machinery (`stq_core::impute`): at certify time
/// the edge's net forward flow provably lay in `[lo, hi]`. `base` snapshots
/// the lifetime totals at that moment so later events widen the certificate
/// soundly (each forward event can raise the net by at most 1, each
/// backward event lower it by at most 1).
struct Certificate {
    lo: f64,
    hi: f64,
    base: [u64; 2],
}

/// The registry's replica of shard count state: what the shards have
/// *applied*, not merely what was sent to them.
struct Mirror {
    /// Per-edge applied crossings `[forward, backward]`, post accept rule.
    counts: Vec<[u64; 2]>,
    /// Highest accepted timestamp per edge direction (`-inf` when empty) —
    /// the accept predicate is `time >= watermark`, the same comparison
    /// `apply_crossing` makes against the form's last timestamp.
    watermark: Vec<[f64; 2]>,
    /// Edges the integrity auditor (or a recovery fallback) quarantined:
    /// their shards refuse to serve them, so brackets widen by totals.
    quarantined: HashSet<usize>,
    /// Certified intervals for quarantined edges: the fold intersects each
    /// with the lifetime worst case, so certificates only ever *tighten*
    /// the widening. Both intersection endpoints move in lockstep with the
    /// worst case under new events, which keeps the ±1 delta rule bitwise
    /// exact.
    certs: HashMap<usize, Certificate>,
}

struct Inner {
    epoch: u64,
    next_id: u64,
    mirror: Mirror,
    /// Boundary edge → the subscriptions it affects, with the edge's inward
    /// orientation baked into each route (so delta application needs no
    /// plan lookup).
    routes: HashMap<usize, Vec<(u64, bool)>>,
    subs: HashMap<u64, Subscription>,
}

/// The standing-query registry: compiled plans, the edge→subscription
/// routing table, and the delta-maintained brackets.
///
/// All mutation happens under one internal mutex, so a subscriber's baseline
/// can never observe a half-applied event and concurrent ingest interleaves
/// with epoch advances atomically.
pub struct SubscriptionRegistry {
    engine: Arc<QueryEngine>,
    /// Per-edge lifetime crossing totals `[forward, backward]` — grown on
    /// every ingested event (late or not) *inside* the registry lock, and
    /// shared with the serving runtime, whose degradation bounds read them.
    totals: Arc<Vec<[AtomicU64; 2]>>,
    inner: Mutex<Inner>,
    deltas_applied: AtomicU64,
    resnapshots: AtomicU64,
    late_ignored: AtomicU64,
    /// While set, per-event delta pushes are suppressed (brackets still
    /// move under the lock, so correctness is untouched — only the push
    /// fan-out cost is shed). Flipped by the runtime's brownout controller.
    shed: AtomicBool,
    pushes_shed: AtomicU64,
}

impl SubscriptionRegistry {
    /// Builds a registry whose mirror starts at `store`'s current state
    /// (counts, watermarks and lifetime totals all derived from the forms),
    /// with the given initial quarantine set.
    pub fn new(
        engine: Arc<QueryEngine>,
        store: &FormStore,
        quarantined: impl IntoIterator<Item = usize>,
    ) -> Self {
        let n = store.num_edges();
        let mut totals = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut watermark = Vec::with_capacity(n);
        for e in 0..n {
            let form = store.form(e);
            let (f, b) = (form.total(true) as u64, form.total(false) as u64);
            totals.push([AtomicU64::new(f), AtomicU64::new(b)]);
            counts.push([f, b]);
            watermark.push([
                form.timestamps(true).last().copied().unwrap_or(f64::NEG_INFINITY),
                form.timestamps(false).last().copied().unwrap_or(f64::NEG_INFINITY),
            ]);
        }
        SubscriptionRegistry {
            engine,
            totals: Arc::new(totals),
            inner: Mutex::new(Inner {
                epoch: 0,
                next_id: 0,
                mirror: Mirror {
                    counts,
                    watermark,
                    quarantined: quarantined.into_iter().collect(),
                    certs: HashMap::new(),
                },
                routes: HashMap::new(),
                subs: HashMap::new(),
            }),
            deltas_applied: AtomicU64::new(0),
            resnapshots: AtomicU64::new(0),
            late_ignored: AtomicU64::new(0),
            shed: AtomicBool::new(false),
            pushes_shed: AtomicU64::new(0),
        }
    }

    /// The shared lifetime totals (the runtime reads these for its
    /// worst-case degradation bounds). Bumped only by [`Self::on_ingest`].
    pub fn totals(&self) -> &Arc<Vec<[AtomicU64; 2]>> {
        &self.totals
    }

    /// Registers a standing region: compiles (or cache-loads) its plan,
    /// indexes its boundary in the routing table, snapshots a baseline
    /// bracket from the mirror, and optionally attaches a push channel.
    ///
    /// The baseline is pushed as the first [`BracketUpdate`]
    /// (`cause == Registered`). A subscriber that drops its receiver is
    /// auto-unsubscribed the next time a push fails.
    pub fn subscribe(
        &self,
        sensing: &SensingGraph,
        sampled: &SampledGraph,
        region: &QueryRegion,
        approx: Approximation,
        push: Option<Sender<BracketUpdate>>,
    ) -> Result<Registered, SubscribeError> {
        let (plan, plan_cache_hit) = self.engine.plan(sensing, sampled, region, approx);
        if plan.miss {
            return Err(SubscribeError::Unresolvable);
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let id = inner.next_id;
        inner.next_id += 1;
        let bracket = fold_bracket(&plan, &inner.mirror, &self.totals, inner.epoch);
        for be in &plan.boundary {
            inner.routes.entry(be.edge).or_default().push((id, be.inward_forward));
        }
        let boundary_edges = plan.boundary.len();
        let update = BracketUpdate {
            subscription: SubscriptionId(id),
            epoch: inner.epoch,
            bracket,
            cause: UpdateCause::Registered,
        };
        if let Some(tx) = &push {
            let _ = tx.send(update);
        }
        let plan_id = plan.id;
        inner.subs.insert(id, Subscription { plan, bracket, push });
        Ok(Registered { id: SubscriptionId(id), bracket, plan_id, plan_cache_hit, boundary_edges })
    }

    /// Removes a subscription and its routing entries. Returns whether it
    /// existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        remove_sub(&mut self.inner.lock(), id.0)
    }

    /// Routes one ingested crossing: grows the lifetime totals, applies the
    /// shard accept rule to the mirror, and moves every affected bracket by
    /// its delta (pushing updates as it goes).
    ///
    /// The serving runtime calls this for every event *before* handing it
    /// to the owning shard's ingest lane, so totals (and therefore
    /// degradation bounds) stay ahead of shard state at every instant.
    pub fn on_ingest(&self, c: &Crossing) -> IngestObservation {
        let mut inner = self.inner.lock();
        self.on_ingest_locked(&mut inner, c)
    }

    /// Routes a whole ingest batch under **one** lock acquisition, applying
    /// each event with semantics identical to [`on_ingest`](Self::on_ingest)
    /// in input order. Returns the aggregate observation (summed deltas;
    /// `late` set when any event was late). This is the registry half of the
    /// batched-ingest path: totals, watermarks, and bracket deltas for the
    /// batch land atomically with respect to epoch advances.
    pub fn on_ingest_batch(&self, batch: &[Crossing]) -> IngestObservation {
        if batch.is_empty() {
            return IngestObservation::default();
        }
        let mut inner = self.inner.lock();
        let mut agg = IngestObservation::default();
        for c in batch {
            let obs = self.on_ingest_locked(&mut inner, c);
            agg.deltas += obs.deltas;
            agg.late |= obs.late;
        }
        agg
    }

    fn on_ingest_locked(&self, inner: &mut Inner, c: &Crossing) -> IngestObservation {
        let dir = usize::from(!c.forward);
        self.totals[c.edge][dir].fetch_add(1, Ordering::Relaxed);
        // Same predicate as `apply_crossing`: reject iff strictly behind the
        // last accepted timestamp in this direction.
        let accepted = c.time >= inner.mirror.watermark[c.edge][dir];
        if accepted {
            inner.mirror.watermark[c.edge][dir] = c.time;
            inner.mirror.counts[c.edge][dir] += 1;
        } else {
            self.late_ignored.fetch_add(1, Ordering::Relaxed);
        }
        let quarantined = inner.mirror.quarantined.contains(&c.edge);
        // A late event on a trusted edge changes nothing a re-execution
        // would see; on a quarantined edge the totals still grew, so the
        // widening below must happen regardless.
        if !accepted && !quarantined {
            return IngestObservation { deltas: 0, late: true };
        }
        let Some(routes) = inner.routes.get(&c.edge) else {
            return IngestObservation { deltas: 0, late: !accepted };
        };
        let epoch = inner.epoch;
        let shedding = self.shed.load(Ordering::Relaxed);
        let mut deltas = 0usize;
        let mut shed_now = 0u64;
        let mut dead: Vec<u64> = Vec::new();
        // `routes` and `subs` are disjoint fields, so the hot path walks the
        // route list in place — no per-event allocation.
        for &(id, inward_forward) in routes {
            let Some(sub) = inner.subs.get_mut(&id) else { continue };
            let entered = c.forward == inward_forward;
            if quarantined {
                // Mirror of the aggregator's worst case for a refused edge:
                // the bound it would recompute is ±(lifetime total), so each
                // event widens the matching endpoint by exactly 1.
                if entered {
                    sub.bracket.upper += 1.0;
                } else {
                    sub.bracket.lower -= 1.0;
                }
            } else {
                let d = if entered { 1.0 } else { -1.0 };
                sub.bracket.value += d;
                sub.bracket.lower += d;
                sub.bracket.upper += d;
            }
            sub.bracket.deltas += 1;
            deltas += 1;
            if let Some(tx) = &sub.push {
                if shedding {
                    // Brownout: the bracket moved (so correctness holds) but
                    // the per-event push is shed; a Coalesced push catches
                    // the subscriber up when shedding lifts.
                    shed_now += 1;
                    continue;
                }
                let pushed = tx.send(BracketUpdate {
                    subscription: SubscriptionId(id),
                    epoch,
                    bracket: sub.bracket,
                    cause: UpdateCause::Delta,
                });
                if pushed.is_err() {
                    dead.push(id);
                }
            }
        }
        if shed_now > 0 {
            self.pushes_shed.fetch_add(shed_now, Ordering::Relaxed);
        }
        for id in dead {
            remove_sub(inner, id);
        }
        self.deltas_applied.fetch_add(deltas as u64, Ordering::Relaxed);
        IngestObservation { deltas, late: !accepted }
    }

    /// Starts a new epoch: absorbs `extra_quarantine` into the mirror, then
    /// re-snapshots **every** subscription's bracket from the mirror through
    /// its compiled plan, stamping it with the new epoch. Returns the pushed
    /// re-snapshot updates (also delivered on each push channel).
    ///
    /// This is the sound hand-off around any event that invalidates running
    /// brackets — quarantine extension, repair, supervisor crash-recovery.
    /// Because the bracket is overwritten wholesale under the same lock that
    /// applies deltas, a delta from before the epoch advance can never leak
    /// into the new epoch's bracket.
    pub fn advance_epoch(
        &self,
        extra_quarantine: impl IntoIterator<Item = usize>,
    ) -> Vec<BracketUpdate> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.epoch += 1;
        inner.mirror.quarantined.extend(extra_quarantine);
        let epoch = inner.epoch;
        let mut out = Vec::with_capacity(inner.subs.len());
        let mut dead: Vec<u64> = Vec::new();
        let mut ids: Vec<u64> = inner.subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let sub = inner.subs.get_mut(&id).expect("subscription present");
            let bracket = fold_bracket(&sub.plan, &inner.mirror, &self.totals, epoch);
            sub.bracket = bracket;
            let update = BracketUpdate {
                subscription: SubscriptionId(id),
                epoch,
                bracket,
                cause: UpdateCause::Resnapshot,
            };
            if let Some(tx) = &sub.push {
                if tx.send(update).is_err() {
                    dead.push(id);
                }
            }
            out.push(update);
        }
        for id in dead {
            remove_sub(inner, id);
        }
        self.resnapshots.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Turns per-event delta-push shedding on or off (the runtime's
    /// brownout controller drives this). While shedding, brackets keep
    /// moving under the lock but nothing is pushed. Turning shedding *off*
    /// pushes every push-attached subscription's current bracket once
    /// (`cause == Coalesced`) so subscribers catch up on everything they
    /// missed in one update; those updates are also returned. Turning it on
    /// (or re-asserting the current state) returns nothing.
    pub fn set_shed_pushes(&self, on: bool) -> Vec<BracketUpdate> {
        // Under the inner lock so the flag flip is atomic with respect to
        // in-flight `on_ingest` calls: no delta can race between the flag
        // going false and the coalesced catch-up pushes below.
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let was = self.shed.swap(on, Ordering::Relaxed);
        if on || !was {
            return Vec::new();
        }
        let epoch = inner.epoch;
        let mut out = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        let mut ids: Vec<u64> = inner.subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let sub = inner.subs.get(&id).expect("subscription present");
            let Some(tx) = &sub.push else { continue };
            let update = BracketUpdate {
                subscription: SubscriptionId(id),
                epoch,
                bracket: sub.bracket,
                cause: UpdateCause::Coalesced,
            };
            if tx.send(update).is_err() {
                dead.push(id);
            } else {
                out.push(update);
            }
        }
        for id in dead {
            remove_sub(inner, id);
        }
        out
    }

    /// Whether per-event delta pushes are currently shed.
    pub fn shedding_pushes(&self) -> bool {
        self.shed.load(Ordering::Relaxed)
    }

    /// Installs a certified net-forward-flow interval `[lo, hi]` for a
    /// quarantined edge (from the degraded-mode conservation-interval
    /// imputer). The current lifetime totals are captured as the
    /// certificate's base, so later events widen it soundly. Folds
    /// intersect the certificate with the lifetime worst case — running
    /// brackets pick it up at the next [`Self::advance_epoch`].
    ///
    /// Returns `false` (and installs nothing) when the edge is not
    /// quarantined or the interval is not finite — certificates only make
    /// sense where the worst-case widening applies.
    pub fn certify_quarantined(&self, edge: usize, lo: f64, hi: f64) -> bool {
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) || edge >= self.totals.len() {
            return false;
        }
        let mut inner = self.inner.lock();
        if !inner.mirror.quarantined.contains(&edge) {
            return false;
        }
        let base = [
            self.totals[edge][0].load(Ordering::Relaxed),
            self.totals[edge][1].load(Ordering::Relaxed),
        ];
        inner.mirror.certs.insert(edge, Certificate { lo, hi, base });
        true
    }

    /// How many quarantined edges currently carry a certified interval.
    pub fn certified_edges(&self) -> usize {
        self.inner.lock().mirror.certs.len()
    }

    /// The current bracket of one subscription.
    pub fn bracket(&self, id: SubscriptionId) -> Option<StandingBracket> {
        self.inner.lock().subs.get(&id.0).map(|s| s.bracket)
    }

    /// All live `(id, bracket)` pairs, sorted by id.
    pub fn brackets(&self) -> Vec<(SubscriptionId, StandingBracket)> {
        let inner = self.inner.lock();
        let mut v: Vec<(SubscriptionId, StandingBracket)> =
            inner.subs.iter().map(|(&id, s)| (SubscriptionId(id), s.bracket)).collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Live subscription count.
    pub fn len(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time accounting.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            subscriptions: self.len(),
            epoch: self.epoch(),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            resnapshots: self.resnapshots.load(Ordering::Relaxed),
            late_ignored: self.late_ignored.load(Ordering::Relaxed),
            pushes_shed: self.pushes_shed.load(Ordering::Relaxed),
        }
    }
}

fn remove_sub(inner: &mut Inner, id: u64) -> bool {
    let Some(sub) = inner.subs.remove(&id) else { return false };
    for be in &sub.plan.boundary {
        if let Some(routes) = inner.routes.get_mut(&be.edge) {
            routes.retain(|&(sid, _)| sid != id);
            if routes.is_empty() {
                inner.routes.remove(&be.edge);
            }
        }
    }
    true
}

/// The baseline fold: net live occupancy along the plan's boundary, in plan
/// order — term-for-term the fold the serving runtime's aggregator performs
/// for a snapshot query at a time past every ingested event. Trusted edges
/// contribute their net inward count to all three components; quarantined
/// edges contribute their lifetime worst case to the bounds only.
fn fold_bracket(
    plan: &QueryPlan,
    mirror: &Mirror,
    totals: &[[AtomicU64; 2]],
    epoch: u64,
) -> StandingBracket {
    let (mut value, mut lower, mut upper) = (0.0f64, 0.0f64, 0.0f64);
    for be in &plan.boundary {
        if mirror.quarantined.contains(&be.edge) {
            let fwd = totals[be.edge][0].load(Ordering::Relaxed) as f64;
            let bwd = totals[be.edge][1].load(Ordering::Relaxed) as f64;
            let (total_in, total_out) = if be.inward_forward { (fwd, bwd) } else { (bwd, fwd) };
            let (mut edge_lo, mut edge_hi) = (-total_out, total_in);
            if let Some(cert) = mirror.certs.get(&be.edge) {
                // Certified net forward flow at certify time, widened by the
                // events since (forward raises the net by ≤ 1 each, backward
                // lowers it by ≤ 1 each), oriented inward, intersected with
                // the lifetime worst case. Both endpoints then move in
                // lockstep with the worst case, so the ±1 delta rule in
                // `on_ingest` stays bitwise exact for certified edges too.
                let fwd_since = fwd - cert.base[0] as f64;
                let bwd_since = bwd - cert.base[1] as f64;
                let (c_lo, c_hi) = if be.inward_forward {
                    (cert.lo - bwd_since, cert.hi + fwd_since)
                } else {
                    (-cert.hi - fwd_since, -cert.lo + bwd_since)
                };
                edge_lo = edge_lo.max(c_lo);
                edge_hi = edge_hi.min(c_hi);
            }
            lower += edge_lo;
            upper += edge_hi;
        } else {
            let fwd = mirror.counts[be.edge][0] as f64;
            let bwd = mirror.counts[be.edge][1] as f64;
            let net = if be.inward_forward { fwd - bwd } else { bwd - fwd };
            value += net;
            lower += net;
            upper += net;
        }
    }
    StandingBracket { value, lower, upper, epoch, deltas: 0 }
}
