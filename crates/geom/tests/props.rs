//! Property tests for the geometry kernel.

use proptest::prelude::*;
use stq_geom::{
    convex_hull, segment_intersection, triangulate, Point, Polygon, Rect, Segment,
    SegmentIntersection,
};

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(pt(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hull_contains_all_points(pts in points(3..40)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let poly = Polygon::new(h.clone());
            prop_assert!(poly.is_ccw());
            for &p in &pts {
                prop_assert!(poly.contains(p), "{p} escaped its hull");
            }
        }
    }

    #[test]
    fn hull_is_convex(pts in points(3..40)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            // Every consecutive triple turns left (or is collinear-free by
            // construction).
            for i in 0..h.len() {
                let a = h[i];
                let b = h[(i + 1) % h.len()];
                let c = h[(i + 2) % h.len()];
                prop_assert!((b - a).cross(c - b) > 0.0);
            }
        }
    }

    #[test]
    fn segment_intersection_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let r12 = segment_intersection(&s1, &s2);
        let r21 = segment_intersection(&s2, &s1);
        // Existence must agree; point locations must match.
        match (r12, r21) {
            (SegmentIntersection::None, SegmentIntersection::None) => {}
            (SegmentIntersection::Point { p: p1, .. }, SegmentIntersection::Point { p: p2, .. }) => {
                prop_assert!(p1.dist(p2) < 1e-6, "{p1} vs {p2}");
            }
            (SegmentIntersection::Overlap { .. }, SegmentIntersection::Overlap { .. }) => {}
            (x, y) => prop_assert!(false, "asymmetric: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn intersection_point_lies_on_both(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        if let SegmentIntersection::Point { p, .. } = segment_intersection(&s1, &s2) {
            prop_assert!(s1.dist_to_point(p) < 1e-6);
            prop_assert!(s2.dist_to_point(p) < 1e-6);
        }
    }

    #[test]
    fn polygon_reverse_flips_area(pts in points(3..12)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let poly = Polygon::new(h);
            let rev = poly.reversed();
            prop_assert!((poly.signed_area() + rev.signed_area()).abs() < 1e-9);
            prop_assert!((poly.area() - rev.area()).abs() < 1e-9);
        }
    }

    #[test]
    fn polygon_centroid_inside_bbox(pts in points(3..12)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let poly = Polygon::new(h);
            prop_assert!(poly.bbox().inflated(1e-9).contains(poly.centroid()));
        }
    }

    #[test]
    fn rect_algebra(a in pt(), b in pt(), c in pt(), d in pt(), probe in pt()) {
        let r1 = Rect::from_corners(a, b);
        let r2 = Rect::from_corners(c, d);
        let inter = r1.intersection(&r2);
        let union = r1.union(&r2);
        // Containment laws.
        prop_assert_eq!(
            inter.contains(probe),
            r1.contains(probe) && r2.contains(probe)
        );
        if r1.contains(probe) || r2.contains(probe) {
            prop_assert!(union.contains(probe));
        }
        // Area monotonicity.
        prop_assert!(union.area() + 1e-9 >= r1.area().max(r2.area()));
        prop_assert!(inter.area() <= r1.area().min(r2.area()) + 1e-9);
    }

    #[test]
    fn delaunay_invariants(pts in points(3..30)) {
        let t = triangulate(&pts);
        prop_assert!(t.is_delaunay());
        // Planarity bound on edges.
        if pts.len() >= 3 {
            prop_assert!(t.edges().len() <= 3 * pts.len());
        }
        // All triangle indices valid.
        for tr in &t.triangles {
            for v in tr.vertices() {
                prop_assert!(v < pts.len());
            }
        }
    }

    #[test]
    fn projection_is_nearest(a in pt(), b in pt(), p in pt()) {
        let s = Segment::new(a, b);
        let proj = s.project(p);
        // The projection beats both endpoints and a few interior samples.
        let d = p.dist(proj);
        prop_assert!(d <= p.dist(a) + 1e-9);
        prop_assert!(d <= p.dist(b) + 1e-9);
        for k in 1..8 {
            let q = s.at(k as f64 / 8.0);
            prop_assert!(d <= p.dist(q) + 1e-9);
        }
    }
}
