//! 2-D points / vectors.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the plane.
///
/// `Point` is `Copy` and deliberately cheap: the whole framework passes these
/// by value. It doubles as a 2-D vector; the usual arithmetic operators are
/// implemented component-wise.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. in nearest-neighbour searches).
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive iff `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Angle of the vector in radians, in `(-π, π]` (as `atan2`).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns the vector rotated by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Returns the unit vector in the same direction, or the zero vector if
    /// `self` is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Point {
        let n = self.norm();
        if n <= f64::EPSILON {
            Point::ORIGIN
        } else {
            self / n
        }
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn products() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
    }

    #[test]
    fn perp_rotates_ccw() {
        let a = Point::new(1.0, 0.0);
        assert_eq!(a.perp(), Point::new(0.0, 1.0));
        assert!(a.cross(a.perp()) > 0.0);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Point::ORIGIN.normalized(), Point::ORIGIN);
        let n = Point::new(3.0, 4.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_quadrants() {
        assert!((Point::new(1.0, 1.0).angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((Point::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-12);
    }
}
