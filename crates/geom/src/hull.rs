//! Convex hulls (Andrew's monotone chain).

use crate::point::Point;
use crate::predicates::cross3;

/// Computes the convex hull of a point set.
///
/// Returns the hull vertices in counter-clockwise order without repeating the
/// first point. Collinear points on hull edges are dropped. Degenerate inputs
/// (fewer than 3 distinct points, or all collinear) return what remains of
/// the chain — possibly fewer than 3 points.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
    pts.dedup_by(|a, b| a.dist2(*b) < 1e-24);
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross3(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross3(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the final point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 2.0), // interior
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // CCW: shoelace positive.
        let mut s = 0.0;
        for i in 0..h.len() {
            s += h[i].cross(h[(i + 1) % h.len()]);
        }
        assert!(s > 0.0);
    }

    #[test]
    fn collinear_points_dropped() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        let line = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let h = convex_hull(&line);
        assert!(h.len() <= 2);
    }

    #[test]
    fn duplicates_collapsed() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn hull_contains_all_points() {
        use crate::polygon::Polygon;
        let mut pts = Vec::new();
        // Deterministic pseudo-random cloud.
        let mut state = 42u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
            pts.push(Point::new(x, y));
        }
        let h = convex_hull(&pts);
        assert!(h.len() >= 3);
        let poly = Polygon::new(h);
        for &p in &pts {
            assert!(poly.contains(p), "hull must contain {p}");
        }
    }
}
