//! Orientation and in-circle predicates.
//!
//! These are the two geometric predicates the planar-graph machinery and the
//! Delaunay triangulation rest on. They are implemented with plain `f64`
//! arithmetic plus a magnitude-relative tolerance; the generators in
//! `stq-mobility` jitter coordinates so that inputs near the predicate
//! decision boundary do not occur in practice.

use crate::point::Point;

/// Result of an orientation test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// The three points make a left turn (counter-clockwise).
    CounterClockwise,
    /// The three points make a right turn (clockwise).
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Twice the signed area of the triangle `a, b, c`.
///
/// Positive iff `c` lies to the left of the directed line `a -> b`.
#[inline]
pub fn cross3(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Orientation of the ordered triple `a, b, c` with a magnitude-relative
/// tolerance.
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let det = cross3(a, b, c);
    // Scale the collinearity tolerance with the magnitude of the inputs so
    // the predicate behaves the same regardless of coordinate units.
    let mag = (b - a).norm() * (c - a).norm();
    let tol = f64::EPSILON * 64.0 * mag;
    if det > tol {
        Orientation::CounterClockwise
    } else if det < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// True iff point `d` lies strictly inside the circumcircle of the
/// counter-clockwise triangle `a, b, c`.
///
/// This is the standard 3×3 determinant formulation of the in-circle test,
/// translated so `d` is the origin, which greatly improves conditioning.
pub fn in_circle(a: Point, b: Point, c: Point, d: Point) -> bool {
    let ax = a.x - d.x;
    let ay = a.y - d.y;
    let bx = b.x - d.x;
    let by = b.y - d.y;
    let cx = c.x - d.x;
    let cy = c.y - d.y;

    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;

    let det = a2 * (bx * cy - by * cx) - b2 * (ax * cy - ay * cx) + c2 * (ax * by - ay * bx);
    det > 0.0
}

/// Circumcenter of the triangle `a, b, c`, or `None` if the points are
/// (numerically) collinear.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    let d = 2.0 * cross3(a, b, c);
    if d.abs() < f64::EPSILON * 64.0 * (b - a).norm() * (c - a).norm() {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    Some(Point::new(ux, uy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(orient2d(a, b, Point::new(0.0, 1.0)), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, Point::new(0.0, -1.0)), Orientation::Clockwise);
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn in_circle_unit() {
        // CCW unit right triangle; circumcircle is centred at (0.5, 0.5).
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        assert!(in_circle(a, b, c, Point::new(0.5, 0.5)));
        assert!(!in_circle(a, b, c, Point::new(2.0, 2.0)));
        // (1,1) is exactly on the circle; the strict test must reject it,
        // as it must a point just outside.
        assert!(!in_circle(a, b, c, Point::new(1.0, 1.0)));
        assert!(!in_circle(a, b, c, Point::new(1.0, 1.0 + 1e-9)));
    }

    #[test]
    fn circumcenter_right_triangle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(0.0, 2.0);
        let cc = circumcenter(a, b, c).unwrap();
        assert!((cc.x - 1.0).abs() < 1e-12 && (cc.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_collinear_none() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert!(circumcenter(a, b, c).is_none());
    }

    #[test]
    fn in_circle_is_symmetric_under_rotation_of_abc() {
        let a = Point::new(0.3, 0.1);
        let b = Point::new(1.7, 0.4);
        let c = Point::new(0.9, 1.8);
        let d = Point::new(0.95, 0.8);
        let r1 = in_circle(a, b, c, d);
        let r2 = in_circle(b, c, a, d);
        let r3 = in_circle(c, a, b, d);
        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
    }
}
