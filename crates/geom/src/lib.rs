//! # stq-geom
//!
//! Plane geometry primitives for the `stq` framework.
//!
//! This crate is self-contained (no third-party geometry dependencies) and
//! provides everything the rest of the workspace needs:
//!
//! - [`Point`] / vector arithmetic and orientation predicates,
//! - [`Segment`] intersection (proper and endpoint-touching),
//! - [`Rect`] axis-aligned boxes used for query regions,
//! - [`Polygon`] with signed area, centroid, and point containment,
//! - convex hulls ([`hull::convex_hull`]),
//! - a from-scratch Bowyer–Watson Delaunay triangulation
//!   ([`delaunay::triangulate`]) used to connect sampled sensors (paper §4.5).
//!
//! All coordinates are `f64`. Predicates use a tolerance-free formulation
//! where possible (sign of cross products) and an explicit epsilon where
//! floating-point noise is unavoidable; the workload generators in
//! `stq-mobility` jitter inputs so degenerate configurations are measure-zero.

pub mod delaunay;
pub mod hull;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod rect;
pub mod segment;

pub use delaunay::{triangulate, Triangle, Triangulation};
pub use hull::convex_hull;
pub use point::Point;
pub use polygon::Polygon;
pub use predicates::{orient2d, Orientation};
pub use rect::Rect;
pub use segment::{segment_intersection, Segment, SegmentIntersection};

/// Default tolerance for floating-point comparisons in this crate.
pub const EPS: f64 = 1e-9;
