//! Delaunay triangulation (Bowyer–Watson incremental insertion).
//!
//! The paper connects sampled sensor nodes "either with a triangulation-based
//! or k-NN-based algorithm" (§4.5). This module provides the triangulation
//! half from scratch: a classic Bowyer–Watson construction over a
//! super-triangle, yielding the edge set used by `stq-core` to build sampled
//! sensing graphs.

use crate::point::Point;
use crate::predicates::{cross3, in_circle};

/// A triangle referencing vertices of a [`Triangulation`] by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triangle(pub usize, pub usize, pub usize);

impl Triangle {
    fn edges(&self) -> [(usize, usize); 3] {
        [(self.0, self.1), (self.1, self.2), (self.2, self.0)]
    }

    /// Vertex indices as an array.
    pub fn vertices(&self) -> [usize; 3] {
        [self.0, self.1, self.2]
    }
}

/// A Delaunay triangulation of a point set.
#[derive(Clone, Debug)]
pub struct Triangulation {
    /// The input points (indices in [`Triangulation::triangles`] refer here).
    pub points: Vec<Point>,
    /// Triangles with counter-clockwise vertex order.
    pub triangles: Vec<Triangle>,
}

impl Triangulation {
    /// The undirected edge set `(i, j)` with `i < j`, deduplicated and sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut es: Vec<(usize, usize)> = Vec::with_capacity(self.triangles.len() * 3);
        for t in &self.triangles {
            for (a, b) in t.edges() {
                es.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        es.sort_unstable();
        es.dedup();
        es
    }

    /// Checks the empty-circumcircle property for every triangle against
    /// every input point. O(T·N) — intended for tests on small inputs.
    pub fn is_delaunay(&self) -> bool {
        for t in &self.triangles {
            let (a, b, c) = (self.points[t.0], self.points[t.1], self.points[t.2]);
            for (i, &p) in self.points.iter().enumerate() {
                if i == t.0 || i == t.1 || i == t.2 {
                    continue;
                }
                if in_circle(a, b, c, p) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes the Delaunay triangulation of `points`.
///
/// Duplicate points (within `1e-12`) are skipped during insertion; their
/// indices simply do not appear in any triangle. Inputs with fewer than 3
/// non-collinear points yield an empty triangle list.
pub fn triangulate(points: &[Point]) -> Triangulation {
    let n = points.len();
    let mut tri = Triangulation { points: points.to_vec(), triangles: Vec::new() };
    if n < 3 {
        return tri;
    }

    // Super-triangle comfortably containing all points.
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &p in points {
        min = Point::new(min.x.min(p.x), min.y.min(p.y));
        max = Point::new(max.x.max(p.x), max.y.max(p.y));
    }
    let d = (max.x - min.x).max(max.y - min.y).max(1.0);
    let mid = min.midpoint(max);
    let s0 = Point::new(mid.x - 20.0 * d, mid.y - 10.0 * d);
    let s1 = Point::new(mid.x + 20.0 * d, mid.y - 10.0 * d);
    let s2 = Point::new(mid.x, mid.y + 20.0 * d);

    // Working vertex array: input points then the 3 super vertices.
    let mut verts = points.to_vec();
    let sv = verts.len();
    verts.push(s0);
    verts.push(s1);
    verts.push(s2);

    let mut tris: Vec<Triangle> = vec![Triangle(sv, sv + 1, sv + 2)];

    for pi in 0..n {
        let p = verts[pi];
        // Skip (near-)duplicates of already-inserted points.
        if points[..pi].iter().any(|q| q.dist2(p) < 1e-24) {
            continue;
        }

        // Find all triangles whose circumcircle contains p.
        let mut bad: Vec<usize> = Vec::new();
        for (ti, t) in tris.iter().enumerate() {
            let (a, b, c) = (verts[t.0], verts[t.1], verts[t.2]);
            if in_circle(a, b, c, p) {
                bad.push(ti);
            }
        }
        if bad.is_empty() {
            // Numerically possible when p duplicates a vertex or sits exactly
            // on a circumcircle; fall back to locating the containing
            // triangle so insertion still happens.
            for (ti, t) in tris.iter().enumerate() {
                let (a, b, c) = (verts[t.0], verts[t.1], verts[t.2]);
                if cross3(a, b, p) >= -1e-12
                    && cross3(b, c, p) >= -1e-12
                    && cross3(c, a, p) >= -1e-12
                {
                    bad.push(ti);
                    break;
                }
            }
            if bad.is_empty() {
                continue;
            }
        }

        // Polygonal hole boundary = edges appearing in exactly one bad triangle.
        let mut boundary: Vec<(usize, usize)> = Vec::new();
        for &ti in &bad {
            for e in tris[ti].edges() {
                // An edge is internal iff its reverse appears among bad-triangle edges.
                let mut shared = false;
                for &tj in &bad {
                    if tj == ti {
                        continue;
                    }
                    if tris[tj].edges().iter().any(|&(x, y)| (x, y) == (e.1, e.0)) {
                        shared = true;
                        break;
                    }
                }
                if !shared {
                    boundary.push(e);
                }
            }
        }

        // Remove bad triangles (descending index order to keep indices valid).
        bad.sort_unstable_by(|a, b| b.cmp(a));
        for ti in bad {
            tris.swap_remove(ti);
        }

        // Re-triangulate the hole.
        for (a, b) in boundary {
            // Keep CCW orientation.
            if cross3(verts[a], verts[b], p) > 0.0 {
                tris.push(Triangle(a, b, pi));
            } else {
                tris.push(Triangle(b, a, pi));
            }
        }
    }

    // Drop every triangle touching a super vertex.
    tri.triangles = tris.into_iter().filter(|t| t.0 < sv && t.1 < sv && t.2 < sv).collect();
    tri
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_points(n: usize, seed: u64, scale: f64) -> Vec<Point> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * scale, next() * scale)).collect()
    }

    #[test]
    fn single_triangle() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        let t = triangulate(&pts);
        assert_eq!(t.triangles.len(), 1);
        assert!(t.is_delaunay());
    }

    #[test]
    fn square_two_triangles() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.01), // slight skew avoids the co-circular tie
            Point::new(0.0, 1.0),
        ];
        let t = triangulate(&pts);
        assert_eq!(t.triangles.len(), 2);
        assert!(t.is_delaunay());
        assert_eq!(t.edges().len(), 5);
    }

    #[test]
    fn random_cloud_is_delaunay() {
        let pts = pseudo_random_points(60, 7, 100.0);
        let t = triangulate(&pts);
        assert!(!t.triangles.is_empty());
        assert!(t.is_delaunay());
    }

    #[test]
    fn euler_formula_holds() {
        // For a triangulation of a point set: V - E + F = 2, where F counts
        // the outer face too.
        let pts = pseudo_random_points(80, 99, 50.0);
        let t = triangulate(&pts);
        let v = pts.len();
        let e = t.edges().len();
        let f = t.triangles.len() + 1;
        assert_eq!(v as i64 - e as i64 + f as i64, 2);
    }

    #[test]
    fn triangles_are_ccw() {
        let pts = pseudo_random_points(40, 3, 10.0);
        let t = triangulate(&pts);
        for tr in &t.triangles {
            assert!(cross3(t.points[tr.0], t.points[tr.1], t.points[tr.2]) > 0.0);
        }
    }

    #[test]
    fn duplicates_tolerated() {
        let mut pts = pseudo_random_points(20, 5, 10.0);
        let dup = pts[3];
        pts.push(dup);
        pts.push(dup);
        let t = triangulate(&pts);
        assert!(t.is_delaunay());
        // The duplicate index must not appear in any triangle.
        for tr in &t.triangles {
            assert!(tr.0 != 21 && tr.1 != 21 && tr.2 != 21);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(triangulate(&[]).triangles.is_empty());
        assert!(triangulate(&[Point::ORIGIN]).triangles.is_empty());
        assert!(triangulate(&[Point::ORIGIN, Point::new(1.0, 0.0)]).triangles.is_empty());
        // All collinear.
        let line: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 2.0 * i as f64)).collect();
        assert!(triangulate(&line).triangles.is_empty());
    }

    #[test]
    fn edge_count_matches_euler_bound() {
        // Planar graph: E <= 3V - 6.
        let pts = pseudo_random_points(100, 11, 1000.0);
        let t = triangulate(&pts);
        assert!(t.edges().len() <= 3 * pts.len() - 6);
    }
}
