//! Line segments and segment–segment intersection.

use crate::point::Point;
use crate::predicates::cross3;
use crate::EPS;

/// A directed line segment from [`Segment::a`] to [`Segment::b`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Classification of how two segments intersect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not meet.
    None,
    /// The segments cross or touch at a single point.
    Point {
        /// The intersection point.
        p: Point,
        /// Interpolation parameter along the first segment, in `[0, 1]`.
        t: f64,
        /// Interpolation parameter along the second segment, in `[0, 1]`.
        u: f64,
    },
    /// The segments are collinear and overlap along a sub-segment.
    Overlap {
        /// Start of the shared portion.
        from: Point,
        /// End of the shared portion.
        to: Point,
    },
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// True when the endpoints (numerically) coincide.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.len() <= EPS
    }

    /// Point at parameter `t` (`a` at 0, `b` at 1).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Shortest distance from `p` to the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        p.dist(self.project(p))
    }

    /// Closest point on the segment to `p`.
    pub fn project(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let l2 = d.dot(d);
        if l2 <= f64::EPSILON {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / l2).clamp(0.0, 1.0);
        self.at(t)
    }

    /// The reversed segment.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bbox(&self) -> (Point, Point) {
        (
            Point::new(self.a.x.min(self.b.x), self.a.y.min(self.b.y)),
            Point::new(self.a.x.max(self.b.x), self.a.y.max(self.b.y)),
        )
    }
}

fn bboxes_disjoint(s1: &Segment, s2: &Segment) -> bool {
    let (lo1, hi1) = s1.bbox();
    let (lo2, hi2) = s2.bbox();
    hi1.x < lo2.x - EPS || hi2.x < lo1.x - EPS || hi1.y < lo2.y - EPS || hi2.y < lo1.y - EPS
}

/// Computes the intersection of two segments.
///
/// Handles the general crossing case, endpoint touching, and collinear
/// overlap. Parameters `t` (on `s1`) and `u` (on `s2`) are returned for the
/// point case, which the planarization and crossing-detection code use to
/// order multiple intersections along a trajectory leg.
pub fn segment_intersection(s1: &Segment, s2: &Segment) -> SegmentIntersection {
    if bboxes_disjoint(s1, s2) {
        return SegmentIntersection::None;
    }
    let r = s1.b - s1.a;
    let s = s2.b - s2.a;
    let denom = r.cross(s);
    let qp = s2.a - s1.a;

    let scale = r.norm() * s.norm();
    let tol = f64::EPSILON * 64.0 * scale.max(1e-300);

    if denom.abs() <= tol {
        // Parallel. Collinear iff qp is parallel to r as well.
        if qp.cross(r).abs() > EPS * r.norm().max(1.0) {
            return SegmentIntersection::None;
        }
        // Collinear: project s2 endpoints on s1's parameterization.
        let rr = r.dot(r);
        if rr <= f64::EPSILON {
            // s1 degenerate: point-on-segment check.
            if s2.dist_to_point(s1.a) <= EPS {
                return SegmentIntersection::Point { p: s1.a, t: 0.0, u: 0.0 };
            }
            return SegmentIntersection::None;
        }
        let t0 = (s2.a - s1.a).dot(r) / rr;
        let t1 = (s2.b - s1.a).dot(r) / rr;
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let lo_c = lo.max(0.0);
        let hi_c = hi.min(1.0);
        if lo_c > hi_c + EPS {
            return SegmentIntersection::None;
        }
        if (hi_c - lo_c).abs() <= EPS {
            let p = s1.at(lo_c.clamp(0.0, 1.0));
            return SegmentIntersection::Point { p, t: lo_c, u: param_on(s2, p) };
        }
        return SegmentIntersection::Overlap { from: s1.at(lo_c), to: s1.at(hi_c) };
    }

    let t = qp.cross(s) / denom;
    let u = qp.cross(r) / denom;
    let slack = 1e-12;
    if t < -slack || t > 1.0 + slack || u < -slack || u > 1.0 + slack {
        return SegmentIntersection::None;
    }
    let t = t.clamp(0.0, 1.0);
    let u = u.clamp(0.0, 1.0);
    SegmentIntersection::Point { p: s1.at(t), t, u }
}

fn param_on(s: &Segment, p: Point) -> f64 {
    let d = s.b - s.a;
    let l2 = d.dot(d);
    if l2 <= f64::EPSILON {
        0.0
    } else {
        ((p - s.a).dot(d) / l2).clamp(0.0, 1.0)
    }
}

/// True iff the two segments *properly* cross: they intersect at a single
/// point interior to both.
pub fn segments_cross_properly(s1: &Segment, s2: &Segment) -> bool {
    let d1 = cross3(s2.a, s2.b, s1.a);
    let d2 = cross3(s2.a, s2.b, s1.b);
    let d3 = cross3(s1.a, s1.b, s2.a);
    let d4 = cross3(s1.a, s1.b, s2.b);
    ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        match segment_intersection(&s1, &s2) {
            SegmentIntersection::Point { p, t, u } => {
                assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
                assert!((t - 0.5).abs() < 1e-12);
                assert!((u - 0.5).abs() < 1e-12);
            }
            other => panic!("expected point, got {other:?}"),
        }
        assert!(segments_cross_properly(&s1, &s2));
    }

    #[test]
    fn no_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(segment_intersection(&s1, &s2), SegmentIntersection::None);
        assert!(!segments_cross_properly(&s1, &s2));
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        match segment_intersection(&s1, &s2) {
            SegmentIntersection::Point { t, u, .. } => {
                assert!((t - 1.0).abs() < 1e-9);
                assert!(u.abs() < 1e-9);
            }
            other => panic!("expected point, got {other:?}"),
        }
        // Touching is not a *proper* crossing.
        assert!(!segments_cross_properly(&s1, &s2));
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        match segment_intersection(&s1, &s2) {
            SegmentIntersection::Overlap { from, to } => {
                assert!((from.x - 1.0).abs() < 1e-12);
                assert!((to.x - 2.0).abs() < 1e-12);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_disjoint() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert_eq!(segment_intersection(&s1, &s2), SegmentIntersection::None);
    }

    #[test]
    fn parallel_offset() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(0.0, 0.5, 1.0, 1.5);
        assert_eq!(segment_intersection(&s1, &s2), SegmentIntersection::None);
    }

    #[test]
    fn projection_and_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project(Point::new(5.0, 3.0)), Point::new(5.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(5.0, 3.0)), 3.0);
        // Beyond the end: clamps to endpoint.
        assert_eq!(s.project(Point::new(12.0, 0.0)), Point::new(10.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(12.0, 0.0)), 2.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.project(Point::new(5.0, 5.0)), Point::new(1.0, 1.0));
    }

    #[test]
    fn t_ordering_multiple_hits() {
        // A long horizontal segment crossed by two verticals: intersection
        // parameters must order the hits left-to-right.
        let base = seg(0.0, 0.0, 10.0, 0.0);
        let v1 = seg(2.0, -1.0, 2.0, 1.0);
        let v2 = seg(7.0, -1.0, 7.0, 1.0);
        let t1 = match segment_intersection(&base, &v1) {
            SegmentIntersection::Point { t, .. } => t,
            _ => panic!(),
        };
        let t2 = match segment_intersection(&base, &v2) {
            SegmentIntersection::Point { t, .. } => t,
            _ => panic!(),
        };
        assert!(t1 < t2);
    }
}
