//! Simple polygons: signed area, centroid, containment.
//!
//! Faces of the planar graphs are materialized as polygons for sampling,
//! strata assignment and query-region generation.

use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// A simple polygon given by its vertex loop (implicitly closed; do not
/// repeat the first vertex at the end).
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// Where a point lies relative to a polygon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Containment {
    /// Strictly inside the polygon.
    Inside,
    /// On (or numerically on) an edge or vertex.
    OnBoundary,
    /// Strictly outside.
    Outside,
}

impl Polygon {
    /// Creates a polygon from a vertex loop. At least 3 vertices required.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        Polygon { vertices }
    }

    /// The vertex loop.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false (constructor enforces ≥ 3 vertices); present for clippy's
    /// `len_without_is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// vertex order (the convention the paper adopts for faces, §3.4).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            s += p.cross(q);
        }
        s * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// True when the vertex loop is counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Area centroid. Falls back to the vertex mean for (near-)degenerate
    /// polygons whose area vanishes.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let a = self.signed_area();
        if a.abs() < EPS {
            let mut sum = Point::ORIGIN;
            for &v in &self.vertices {
                sum = sum + v;
            }
            return sum / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        (0..n).map(|i| self.vertices[i].dist(self.vertices[(i + 1) % n])).sum()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::bounding(&self.vertices).expect("polygon has vertices")
    }

    /// Point-in-polygon by the even-odd ray crossing rule, with an explicit
    /// boundary check first.
    pub fn locate(&self, p: Point) -> Containment {
        let n = self.vertices.len();
        // Boundary test.
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let seg = crate::segment::Segment::new(a, b);
            if seg.dist_to_point(p) <= EPS {
                return Containment::OnBoundary;
            }
        }
        // Ray casting to +x.
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[j];
            if (a.y > p.y) != (b.y > p.y) {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
            j = i;
        }
        if inside {
            Containment::Inside
        } else {
            Containment::Outside
        }
    }

    /// Closed containment: inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.locate(p) != Containment::Outside
    }

    /// A point guaranteed to be strictly inside the polygon (used to place
    /// dual/sensor vertices inside irregular faces where the centroid may
    /// fall outside). Implemented by scanning the horizontal line through the
    /// bbox midheight and taking the midpoint of the widest inside-interval;
    /// falls back to the centroid.
    pub fn interior_point(&self) -> Point {
        let c = self.centroid();
        if self.locate(c) == Containment::Inside {
            return c;
        }
        let bb = self.bbox();
        // Try a few scanlines around the middle.
        for k in 0..16 {
            let frac = 0.5 + (k as f64 - 7.5) / 32.0;
            let y = bb.min.y + bb.height() * frac;
            let mut xs: Vec<f64> = Vec::new();
            let n = self.vertices.len();
            for i in 0..n {
                let a = self.vertices[i];
                let b = self.vertices[(i + 1) % n];
                if (a.y > y) != (b.y > y) {
                    xs.push(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
                }
            }
            xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
            let mut best: Option<(f64, f64)> = None; // (width, mid)
            for pair in xs.chunks(2) {
                if let [x0, x1] = pair {
                    let w = x1 - x0;
                    if best.map(|(bw, _)| w > bw).unwrap_or(true) && w > EPS {
                        best = Some((w, (x0 + x1) * 0.5));
                    }
                }
            }
            if let Some((_, mid)) = best {
                let p = Point::new(mid, y);
                if self.locate(p) == Containment::Inside {
                    return p;
                }
            }
        }
        c
    }

    /// Returns the polygon with reversed orientation.
    pub fn reversed(&self) -> Polygon {
        let mut v = self.vertices.clone();
        v.reverse();
        Polygon::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn area_and_orientation() {
        let p = square();
        assert_eq!(p.signed_area(), 4.0);
        assert!(p.is_ccw());
        let r = p.reversed();
        assert_eq!(r.signed_area(), -4.0);
        assert!(!r.is_ccw());
        assert_eq!(r.area(), 4.0);
    }

    #[test]
    fn centroid_square() {
        assert_eq!(square().centroid(), Point::new(1.0, 1.0));
    }

    #[test]
    fn centroid_triangle() {
        let t =
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0), Point::new(0.0, 3.0)]);
        let c = t.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_cases() {
        let p = square();
        assert_eq!(p.locate(Point::new(1.0, 1.0)), Containment::Inside);
        assert_eq!(p.locate(Point::new(3.0, 1.0)), Containment::Outside);
        assert_eq!(p.locate(Point::new(0.0, 1.0)), Containment::OnBoundary);
        assert_eq!(p.locate(Point::new(2.0, 2.0)), Containment::OnBoundary);
    }

    #[test]
    fn concave_containment() {
        // An L-shape; the notch must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ]);
        assert_eq!(l.locate(Point::new(0.5, 2.0)), Containment::Inside);
        assert_eq!(l.locate(Point::new(2.0, 2.0)), Containment::Outside);
        assert_eq!(l.locate(Point::new(2.0, 0.5)), Containment::Inside);
    }

    #[test]
    fn interior_point_in_concave() {
        // A crescent-like concave polygon whose centroid is outside.
        let c = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(0.0, 3.5),
            Point::new(3.5, 3.5),
            Point::new(3.5, 0.5),
            Point::new(0.0, 0.5),
        ]);
        let ip = c.interior_point();
        assert_eq!(c.locate(ip), Containment::Inside);
    }

    #[test]
    fn perimeter_and_bbox() {
        let p = square();
        assert_eq!(p.perimeter(), 8.0);
        let bb = p.bbox();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(2.0, 2.0));
    }

    #[test]
    #[should_panic]
    fn too_few_vertices_panics() {
        let _ = Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
    }
}
