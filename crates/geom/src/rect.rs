//! Axis-aligned rectangles.
//!
//! Rectangles are how spatiotemporal range queries are posed to the framework
//! before being converted to unions of planar-graph faces (paper §5.1.5).

use crate::point::Point;

/// An axis-aligned rectangle, stored as min/max corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// The corner with the smallest coordinates.
    pub min: Point,
    /// The corner with the largest coordinates.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners in any order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from its center and full extents.
    pub fn centered(center: Point, width: f64, height: f64) -> Self {
        let h = Point::new(width * 0.5, height * 0.5);
        Rect { min: center - h, max: center + h }
    }

    /// The empty rectangle, suitable as the identity for [`Rect::union`].
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Smallest rectangle covering a set of points; `None` for an empty set.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut r = Rect::empty();
        for &p in points {
            r = r.expanded_to(p);
        }
        Some(r)
    }

    /// Width (always ≥ 0 for a non-empty rectangle).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (always ≥ 0 for a non-empty rectangle).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area, or 0 when empty/degenerate.
    #[inline]
    pub fn area(&self) -> f64 {
        (self.width().max(0.0)) * (self.height().max(0.0))
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// True when no point satisfies containment (min > max on some axis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self` (closed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || other.min.x > self.max.x
            || other.max.x < self.min.x
            || other.min.y > self.max.y
            || other.max.y < self.min.y)
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Intersection; may be empty.
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        }
    }

    /// Rectangle grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Rect {
        let m = Point::new(margin, margin);
        Rect { min: self.min - m, max: self.max + m }
    }

    /// Rectangle expanded minimally to cover `p`.
    pub fn expanded_to(&self, p: Point) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [self.min, Point::new(self.max.x, self.min.y), self.max, Point::new(self.min.x, self.max.y)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalized() {
        let r = Rect::from_corners(Point::new(3.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(r.min, Point::new(1.0, 1.0));
        assert_eq!(r.max, Point::new(3.0, 4.0));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 6.0);
    }

    #[test]
    fn containment() {
        let r = Rect::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.0, 0.0))); // boundary is closed
        assert!(!r.contains(Point::new(2.1, 1.0)));
        let inner = Rect::from_corners(Point::new(0.5, 0.5), Point::new(1.5, 1.5));
        assert!(r.contains_rect(&inner));
        assert!(!inner.contains_rect(&r));
    }

    #[test]
    fn intersection_union() {
        let a = Rect::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::from_corners(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i.min, Point::new(1.0, 1.0));
        assert_eq!(i.max, Point::new(2.0, 2.0));
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(0.0, 0.0));
        assert_eq!(u.max, Point::new(3.0, 3.0));
    }

    #[test]
    fn empty_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Point::new(0.0, 0.0)));
        let r = Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(!e.intersects(&r));
        assert_eq!(e.union(&r), r);
    }

    #[test]
    fn bounding_points() {
        assert!(Rect::bounding(&[]).is_none());
        let r =
            Rect::bounding(&[Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(3.0, 2.0)])
                .unwrap();
        assert_eq!(r.min, Point::new(-2.0, 0.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn centered_and_inflate() {
        let r = Rect::centered(Point::new(1.0, 1.0), 2.0, 4.0);
        assert_eq!(r.min, Point::new(0.0, -1.0));
        assert_eq!(r.max, Point::new(2.0, 3.0));
        let g = r.inflated(1.0);
        assert_eq!(g.min, Point::new(-1.0, -2.0));
        assert_eq!(g.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn corners_ccw() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0));
        let c = r.corners();
        // Shoelace over the corner loop must be positive (CCW).
        let mut s = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            s += p.cross(q);
        }
        assert!(s > 0.0);
    }
}
