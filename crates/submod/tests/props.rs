//! Property tests: the greedy approximation guarantee, lazy/naive
//! equivalence, and atom-partition invariants on random instances.

use proptest::prelude::*;
use stq_submod::{
    brute_force_best, cost_benefit_greedy, greedy, lazy_greedy, partition_atoms, total_gain,
    AtomObjective, CoverageObjective, Objective,
};

fn coverage_instance() -> impl Strategy<Value = CoverageObjective> {
    (2usize..10, 4usize..16).prop_flat_map(|(items, elements)| {
        let covers =
            proptest::collection::vec(proptest::collection::vec(0..elements, 1..5), items..=items);
        let weights = proptest::collection::vec(0.1f64..5.0, elements..=elements);
        (covers, weights).prop_map(|(covers, weights)| {
            let n = covers.len();
            CoverageObjective::new(covers, weights, vec![1.0; n])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Nemhauser–Wolsey–Fisher guarantee [31]: greedy achieves at least
    /// (1 − 1/e) of the optimum under a cardinality constraint.
    #[test]
    fn greedy_approximation_guarantee(obj in coverage_instance(), budget in 1usize..6) {
        let sel = greedy(&obj, budget as f64);
        let g = total_gain(&obj, &sel);
        let (_, opt) = brute_force_best(&obj, budget as f64);
        prop_assert!(g + 1e-9 >= (1.0 - 1.0 / std::f64::consts::E) * opt,
            "greedy {g} vs opt {opt}");
    }

    #[test]
    fn lazy_matches_naive(obj in coverage_instance(), budget in 1usize..8) {
        let naive = greedy(&obj, budget as f64);
        let (lazy, _) = lazy_greedy(&obj, budget as f64, false);
        prop_assert_eq!(
            total_gain(&obj, &naive),
            total_gain(&obj, &lazy),
            "selections may tie-break differently but utilities must match"
        );
    }

    #[test]
    fn budget_respected(obj in coverage_instance(), budget in 0usize..8) {
        for sel in [greedy(&obj, budget as f64), cost_benefit_greedy(&obj, budget as f64)] {
            let mut cost = 0.0;
            let mut acc: Vec<usize> = Vec::new();
            for &i in &sel {
                cost += obj.cost(&acc, i);
                acc.push(i);
            }
            prop_assert!(cost <= budget as f64 + 1e-9);
            // No duplicates.
            let mut d = sel.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), sel.len());
        }
    }

    #[test]
    fn gain_is_diminishing(obj in coverage_instance(), item_pick in 0usize..10) {
        // Submodularity check on the coverage objective itself: marginal
        // gain never increases as the selection grows along greedy order.
        let n = obj.len();
        let item = item_pick % n;
        let order = greedy(&obj, n as f64);
        let mut sel: Vec<usize> = Vec::new();
        let mut prev = f64::INFINITY;
        for &s in order.iter().take(4) {
            if s == item {
                break;
            }
            let g = obj.gain(&sel, item);
            prop_assert!(g <= prev + 1e-9, "gain rose from {prev} to {g}");
            prev = g;
            sel.push(s);
        }
    }
}

fn path_queries() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (6usize..25).prop_flat_map(|n| {
        let queries = proptest::collection::vec(
            (0..n, 1usize..6)
                .prop_map(move |(lo, len)| (lo..(lo + len).min(n)).collect::<Vec<usize>>()),
            1..6,
        );
        (Just(n), queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn atoms_partition_covered_junctions((n, queries) in path_queries()) {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let atoms = partition_atoms(&queries, &edges, n);
        // Atoms are disjoint and cover exactly the queried junctions.
        let mut seen = std::collections::HashSet::new();
        for a in &atoms {
            for &j in &a.junctions {
                prop_assert!(seen.insert(j), "junction {j} in two atoms");
            }
        }
        let covered: std::collections::HashSet<usize> =
            queries.iter().flatten().copied().collect();
        prop_assert_eq!(seen, covered);
        // Every atom's junctions share the signature and are contained in
        // each of its queries.
        for a in &atoms {
            for &q in &a.queries {
                for &j in &a.junctions {
                    prop_assert!(queries[q].contains(&j));
                }
            }
        }
    }

    #[test]
    fn full_budget_gives_full_utility((n, queries) in path_queries()) {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let atoms = partition_atoms(&queries, &edges, n);
        let sizes: Vec<usize> = queries.iter().map(|q| q.len()).collect();
        let obj = AtomObjective::new(atoms, sizes);
        let all: Vec<usize> = (0..obj.len()).collect();
        // Selecting everything yields utility = number of queries (each
        // fully covered by its atoms).
        let total = total_gain(&obj, &all);
        prop_assert!((total - queries.len() as f64).abs() < 1e-9,
            "total utility {total} vs {} queries", queries.len());
        // An unlimited greedy reaches the same utility.
        let sel = cost_benefit_greedy(&obj, 1e9);
        prop_assert!((total_gain(&obj, &sel) - total).abs() < 1e-9);
    }
}
