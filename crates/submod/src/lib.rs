//! # stq-submod
//!
//! Submodular maximization for query-adaptive sensor selection (paper §4.4).
//!
//! The generic layer ([`greedy`], [`lazy_greedy`], [`cost_benefit_greedy`])
//! implements the classic `(1 − 1/e)`-approximate iterative greedy (Eq. 2),
//! its lazy CELF variant \[27\], and the budgeted cost-benefit rule (Eq. 4)
//! over any [`Objective`].
//!
//! The paper-specific layer partitions historical query regions into
//! disjoint **atoms** (maximal cell complexes with identical query
//! membership, Fig. 5), with utility `f(σ) = Σ_{Q ⊇ σ} ω(σ)/ω(Q)` (Eq. 6)
//! and cost `c(σ) = |∂σ|` (Eq. 5) — marginal cost drops as selected atoms
//! share boundary edges, which is precisely where submodularity pays off.

use std::collections::{BTreeMap, HashSet};

/// An objective for budgeted maximization over ground set `0..n`.
///
/// `gain` must be the *marginal* utility of adding `item` given `selected`,
/// non-increasing in `selected` (submodularity); `cost` is the marginal
/// budget consumption. Both must be non-negative.
pub trait Objective {
    /// Ground-set size.
    fn len(&self) -> usize;
    /// True when the ground set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Marginal utility of `item` given the current selection.
    fn gain(&self, selected: &[usize], item: usize) -> f64;
    /// Marginal cost of `item` given the current selection.
    fn cost(&self, selected: &[usize], item: usize) -> f64;
}

/// Plain greedy (Eq. 2): repeatedly take the feasible item with maximum
/// marginal gain until `budget` is exhausted or nothing remains. Cost is
/// whatever [`Objective::cost`] reports (use 1.0 per item for a cardinality
/// constraint).
pub fn greedy<O: Objective>(obj: &O, budget: f64) -> Vec<usize> {
    run_greedy(obj, budget, false)
}

/// Cost-benefit greedy (Eq. 4): maximizes `gain / cost` per step, subject to
/// the remaining budget. Together with plain greedy this yields the
/// `½(1 − 1/e)` guarantee of \[27\].
pub fn cost_benefit_greedy<O: Objective>(obj: &O, budget: f64) -> Vec<usize> {
    run_greedy(obj, budget, true)
}

fn run_greedy<O: Objective>(obj: &O, budget: f64, ratio: bool) -> Vec<usize> {
    let n = obj.len();
    let mut selected: Vec<usize> = Vec::new();
    let mut in_sel = vec![false; n];
    let mut spent = 0.0;
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (item, &already) in in_sel.iter().enumerate() {
            if already {
                continue;
            }
            let c = obj.cost(&selected, item);
            if spent + c > budget + 1e-12 {
                continue;
            }
            let g = obj.gain(&selected, item);
            if g <= 0.0 {
                continue;
            }
            let score = if ratio { g / c.max(1e-12) } else { g };
            if best.map(|(bs, _)| score > bs).unwrap_or(true) {
                best = Some((score, item));
            }
        }
        match best {
            Some((_, item)) => {
                spent += obj.cost(&selected, item);
                selected.push(item);
                in_sel[item] = true;
            }
            None => break,
        }
    }
    selected
}

/// Lazy greedy (CELF): exploits submodularity — an item's cached gain only
/// shrinks, so re-evaluate lazily from a max-heap instead of scanning all
/// items each round. Produces the same selection as [`greedy`] /
/// [`cost_benefit_greedy`] for valid submodular objectives, typically with
/// far fewer gain evaluations. Returns `(selection, gain_evaluations)`.
pub fn lazy_greedy<O: Objective>(obj: &O, budget: f64, ratio: bool) -> (Vec<usize>, usize) {
    celf(obj, budget, ratio, None)
}

/// Warm-started CELF for failover re-selection: instead of paying the
/// initial `n`-evaluation sweep, the heap is seeded from `prior` — cached
/// scores from an earlier run on a related objective (e.g. the same atoms
/// before sensors died). Each `prior[item]` must *upper-bound* the item's
/// current empty-set score (gain, or gain/cost when `ratio`); this holds
/// whenever the objective only shrank, which banning dead sensors
/// guarantees. Seeded entries are marked stale, so every item is
/// re-evaluated before it can be taken — the selection is identical to
/// [`lazy_greedy`], only cheaper. Items with a non-positive prior are
/// pruned without any evaluation.
pub fn lazy_greedy_seeded<O: Objective>(
    obj: &O,
    budget: f64,
    ratio: bool,
    prior: &[f64],
) -> (Vec<usize>, usize) {
    assert_eq!(prior.len(), obj.len(), "one prior score per ground-set item");
    celf(obj, budget, ratio, Some(prior))
}

/// Empty-set scores of every item — what [`lazy_greedy`] computes in its
/// initial sweep. Cache this from the first selection run and hand it to
/// [`lazy_greedy_seeded`] when re-selecting after faults.
pub fn initial_scores<O: Objective>(obj: &O, ratio: bool) -> Vec<f64> {
    (0..obj.len())
        .map(|item| {
            let g = obj.gain(&[], item);
            if ratio {
                g / obj.cost(&[], item).max(1e-12)
            } else {
                g
            }
        })
        .collect()
}

fn celf<O: Objective>(
    obj: &O,
    budget: f64,
    ratio: bool,
    prior: Option<&[f64]>,
) -> (Vec<usize>, usize) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Cand {
        score: f64,
        item: usize,
        round: usize,
    }
    impl Eq for Cand {}
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> Ordering {
            self.score.partial_cmp(&other.score).unwrap_or(Ordering::Equal)
        }
    }
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = obj.len();
    let mut selected: Vec<usize> = Vec::new();
    let mut spent = 0.0;
    let mut evals = 0usize;
    let mut heap = BinaryHeap::with_capacity(n);
    match prior {
        Some(scores) => {
            // Warm start: cached upper bounds, marked permanently stale
            // (a round no selection loop can reach) so each entry is
            // re-evaluated at most once, when it first surfaces.
            for (item, &score) in scores.iter().enumerate() {
                if score > 0.0 {
                    heap.push(Cand { score, item, round: usize::MAX });
                }
            }
        }
        None => {
            for item in 0..n {
                let c = obj.cost(&selected, item);
                let g = obj.gain(&selected, item);
                evals += 1;
                let score = if ratio { g / c.max(1e-12) } else { g };
                if g > 0.0 {
                    heap.push(Cand { score, item, round: 0 });
                }
            }
        }
    }
    let mut round = 0usize;
    while let Some(top) = heap.pop() {
        let c = obj.cost(&selected, top.item);
        if spent + c > budget + 1e-12 {
            continue; // infeasible now; may become feasible later only if
                      // marginal costs shrink, so re-push with fresh score.
        }
        if top.round == round {
            // Fresh evaluation: take it.
            spent += c;
            selected.push(top.item);
            round += 1;
        } else {
            // Stale: re-evaluate and re-insert.
            let g = obj.gain(&selected, top.item);
            evals += 1;
            if g > 0.0 {
                let score = if ratio { g / c.max(1e-12) } else { g };
                heap.push(Cand { score, item: top.item, round });
            }
        }
    }
    (selected, evals)
}

/// Exhaustive optimum for tiny instances (tests only): best subset under the
/// budget, by total utility re-evaluated from scratch.
pub fn brute_force_best<O: Objective>(obj: &O, budget: f64) -> (Vec<usize>, f64) {
    let n = obj.len();
    assert!(n <= 20, "brute force limited to tiny ground sets");
    let mut best = (Vec::new(), 0.0f64);
    for mask in 0u32..(1 << n) {
        let mut sel: Vec<usize> = Vec::new();
        let mut cost = 0.0;
        let mut util = 0.0;
        let mut ok = true;
        for item in 0..n {
            if mask & (1 << item) != 0 {
                let c = obj.cost(&sel, item);
                if cost + c > budget + 1e-12 {
                    ok = false;
                    break;
                }
                util += obj.gain(&sel, item);
                cost += c;
                sel.push(item);
            }
        }
        if ok && util > best.1 {
            best = (sel, util);
        }
    }
    best
}

/// Total utility of a selection, accumulated marginally in order.
pub fn total_gain<O: Objective>(obj: &O, selection: &[usize]) -> f64 {
    let mut acc = 0.0;
    let mut sel: Vec<usize> = Vec::new();
    for &item in selection {
        acc += obj.gain(&sel, item);
        sel.push(item);
    }
    acc
}

// ---------------------------------------------------------------------------
// Weighted coverage objective (generic testbed + sensor-coverage example).
// ---------------------------------------------------------------------------

/// Classic weighted set cover: item `i` covers a set of elements; utility of
/// a selection is the total weight of covered elements. Monotone submodular.
#[derive(Clone, Debug)]
pub struct CoverageObjective {
    covers: Vec<Vec<usize>>,
    weights: Vec<f64>,
    costs: Vec<f64>,
}

impl CoverageObjective {
    /// `covers[i]` = elements item `i` covers; `weights[e]` = element value;
    /// `costs[i]` = item cost (use 1.0 for cardinality constraints).
    pub fn new(covers: Vec<Vec<usize>>, weights: Vec<f64>, costs: Vec<f64>) -> Self {
        assert_eq!(covers.len(), costs.len());
        CoverageObjective { covers, weights, costs }
    }

    fn covered(&self, selected: &[usize]) -> HashSet<usize> {
        selected.iter().flat_map(|&i| self.covers[i].iter().copied()).collect()
    }
}

impl Objective for CoverageObjective {
    fn len(&self) -> usize {
        self.covers.len()
    }

    fn gain(&self, selected: &[usize], item: usize) -> f64 {
        let have = self.covered(selected);
        self.covers[item].iter().filter(|e| !have.contains(e)).map(|&e| self.weights[e]).sum()
    }

    fn cost(&self, _selected: &[usize], item: usize) -> f64 {
        self.costs[item]
    }
}

// ---------------------------------------------------------------------------
// The paper's instance: query-region atoms on a junction graph.
// ---------------------------------------------------------------------------

/// A maximal cell complex with uniform query membership (Fig. 5b): a
/// connected set of junctions contained in exactly the same historical query
/// regions.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Junctions (primal vertices) forming the atom.
    pub junctions: Vec<usize>,
    /// Indices of the historical queries containing the atom.
    pub queries: Vec<usize>,
    /// Edge ids on the atom's boundary (exactly one endpoint inside).
    pub boundary: Vec<usize>,
}

/// Partitions historical query regions into disjoint atoms.
///
/// `queries[q]` is the junction set of historical query `q`; `edges` is the
/// road edge list; `num_junctions` bounds the vertex ids. Junctions sharing
/// a non-empty membership signature are grouped, then split into connected
/// components so each atom is a contiguous region.
pub fn partition_atoms(
    queries: &[Vec<usize>],
    edges: &[(usize, usize)],
    num_junctions: usize,
) -> Vec<Atom> {
    // Membership signature per junction.
    let mut signature: Vec<Vec<usize>> = vec![Vec::new(); num_junctions];
    for (q, js) in queries.iter().enumerate() {
        for &j in js {
            signature[j].push(q);
        }
    }
    // Group by signature (skip empty), then connected components within.
    let mut by_sig: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
    for (j, sig) in signature.iter().enumerate() {
        if !sig.is_empty() {
            by_sig.entry(sig.clone()).or_default().push(j);
        }
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_junctions];
    for &(u, v) in edges {
        if u < num_junctions && v < num_junctions {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let mut atoms = Vec::new();
    for (sig, members) in by_sig {
        let member_set: HashSet<usize> = members.iter().copied().collect();
        let mut seen: HashSet<usize> = HashSet::new();
        for &start in &members {
            if seen.contains(&start) {
                continue;
            }
            // BFS within the signature class.
            let mut comp = vec![start];
            seen.insert(start);
            let mut qd = std::collections::VecDeque::from([start]);
            while let Some(u) = qd.pop_front() {
                for &v in &adj[u] {
                    if member_set.contains(&v) && seen.insert(v) {
                        comp.push(v);
                        qd.push_back(v);
                    }
                }
            }
            let comp_set: HashSet<usize> = comp.iter().copied().collect();
            let boundary = edges
                .iter()
                .enumerate()
                .filter(|&(_, &(u, v))| comp_set.contains(&u) != comp_set.contains(&v))
                .map(|(e, _)| e)
                .collect();
            comp.sort_unstable();
            atoms.push(Atom { junctions: comp, queries: sig.clone(), boundary });
        }
    }
    atoms
}

/// The paper's objective over atoms: Eq. 6 utility, Eq. 5 cost with
/// *marginal* boundary-edge accounting (shared edges are paid once).
#[derive(Clone, Debug)]
pub struct AtomObjective {
    atoms: Vec<Atom>,
    /// `ω(Q)` per historical query (its junction count).
    query_sizes: Vec<usize>,
    /// Edges that can no longer be monitored (dead sensors). Any atom whose
    /// boundary needs one is infeasible: its utility requires monitoring the
    /// full boundary, so its gain drops to zero.
    banned: HashSet<usize>,
}

impl AtomObjective {
    /// Builds the objective; `query_sizes[q] = ω(Q_q)`.
    pub fn new(atoms: Vec<Atom>, query_sizes: Vec<usize>) -> Self {
        AtomObjective { atoms, query_sizes, banned: HashSet::new() }
    }

    /// Bans edges whose sensors died: atoms needing them on their boundary
    /// get zero gain and are never selected. Used for failover re-selection
    /// — gains only shrink, so a previous run's [`initial_scores`] remain
    /// valid upper bounds for [`lazy_greedy_seeded`].
    pub fn with_banned_edges(mut self, edges: &[usize]) -> Self {
        self.banned.extend(edges.iter().copied());
        self
    }

    /// The atoms (indexable by selection results).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// True when the atom's boundary contains a banned (dead) edge.
    pub fn is_banned(&self, atom: usize) -> bool {
        self.atoms[atom].boundary.iter().any(|e| self.banned.contains(e))
    }

    /// All boundary edges of a selection (deduplicated) — the monitored edge
    /// set of the query-adaptive sampled graph.
    pub fn selected_edges(&self, selection: &[usize]) -> Vec<usize> {
        let mut es: Vec<usize> =
            selection.iter().flat_map(|&a| self.atoms[a].boundary.iter().copied()).collect();
        es.sort_unstable();
        es.dedup();
        es
    }
}

impl Objective for AtomObjective {
    fn len(&self) -> usize {
        self.atoms.len()
    }

    fn gain(&self, _selected: &[usize], item: usize) -> f64 {
        if self.is_banned(item) {
            return 0.0;
        }
        // Eq. 6: atoms are disjoint, so utility is modular across atoms.
        let a = &self.atoms[item];
        a.queries
            .iter()
            .map(|&q| a.junctions.len() as f64 / self.query_sizes[q].max(1) as f64)
            .sum()
    }

    fn cost(&self, selected: &[usize], item: usize) -> f64 {
        // Eq. 5 with sharing: only newly monitored boundary edges cost.
        let have: HashSet<usize> =
            selected.iter().flat_map(|&a| self.atoms[a].boundary.iter().copied()).collect();
        self.atoms[item].boundary.iter().filter(|e| !have.contains(e)).count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_coverage() -> CoverageObjective {
        // 6 elements, 4 items.
        CoverageObjective::new(
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]],
            vec![1.0; 6],
            vec![1.0; 4],
        )
    }

    #[test]
    fn greedy_matches_brute_force_guarantee() {
        let obj = toy_coverage();
        let sel = greedy(&obj, 2.0);
        let g = total_gain(&obj, &sel);
        let (_, opt) = brute_force_best(&obj, 2.0);
        assert!(g >= (1.0 - 1.0 / std::f64::consts::E) * opt, "g={g} opt={opt}");
        // On this instance greedy is actually optimal: {0, 2} covers all 6.
        assert_eq!(g, 6.0);
    }

    #[test]
    fn lazy_equals_plain_greedy() {
        let obj = toy_coverage();
        let plain = greedy(&obj, 3.0);
        let (lazy, evals) = lazy_greedy(&obj, 3.0, false);
        assert_eq!(plain, lazy);
        assert!(evals >= obj.len());
    }

    #[test]
    fn lazy_saves_evaluations_on_larger_instance() {
        // 40 items with disjoint covers: gains never change, so CELF should
        // evaluate each item exactly once.
        let covers: Vec<Vec<usize>> = (0..40).map(|i| vec![i]).collect();
        let obj = CoverageObjective::new(
            covers,
            (0..40).map(|i| i as f64 + 1.0).collect(),
            vec![1.0; 40],
        );
        let (sel, evals) = lazy_greedy(&obj, 10.0, false);
        assert_eq!(sel.len(), 10);
        // CELF pays the initial sweep plus one staleness check per round —
        // far below naive greedy's 40 × 10 = 400 evaluations.
        assert_eq!(evals, 40 + 9);
        // Picks the 10 heaviest.
        assert!(sel.iter().all(|&i| i >= 30));
    }

    #[test]
    fn seeded_matches_cold_with_fewer_evaluations() {
        // Same disjoint-cover instance as above: a cold run pays the 40-item
        // sweep; the warm-started run only re-evaluates what surfaces.
        let covers: Vec<Vec<usize>> = (0..40).map(|i| vec![i]).collect();
        let obj = CoverageObjective::new(
            covers,
            (0..40).map(|i| i as f64 + 1.0).collect(),
            vec![1.0; 40],
        );
        let prior = initial_scores(&obj, false);
        let (cold, cold_evals) = lazy_greedy(&obj, 10.0, false);
        let (warm, warm_evals) = lazy_greedy_seeded(&obj, 10.0, false, &prior);
        assert_eq!(cold, warm);
        assert!(warm_evals < cold_evals, "warm {warm_evals} vs cold {cold_evals}");
        // One re-evaluation per selection, no sweep.
        assert_eq!(warm_evals, 10);
    }

    #[test]
    fn seeded_survives_shrunken_objective() {
        // Priors computed before item 3 lost its value: still upper bounds,
        // so the seeded run matches a fresh plain greedy on the new objective.
        let before = toy_coverage();
        let prior = initial_scores(&before, false);
        let after = CoverageObjective::new(
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![]],
            vec![1.0; 6],
            vec![1.0; 4],
        );
        let (warm, _) = lazy_greedy_seeded(&after, 3.0, false, &prior);
        assert_eq!(warm, greedy(&after, 3.0));
        assert!(!warm.contains(&3));
    }

    #[test]
    #[should_panic(expected = "one prior score per ground-set item")]
    fn seeded_rejects_wrong_prior_length() {
        let obj = toy_coverage();
        let _ = lazy_greedy_seeded(&obj, 2.0, false, &[1.0, 2.0]);
    }

    #[test]
    fn cost_benefit_respects_budget() {
        let obj = CoverageObjective::new(
            vec![vec![0, 1, 2, 3], vec![0], vec![1], vec![2]],
            vec![1.0; 4],
            vec![10.0, 1.0, 1.0, 1.0],
        );
        // Budget 3: the big item is unaffordable; take the three cheap ones.
        let sel = cost_benefit_greedy(&obj, 3.0);
        assert_eq!(sel.len(), 3);
        assert!(!sel.contains(&0));
        assert_eq!(total_gain(&obj, &sel), 3.0);
    }

    #[test]
    fn greedy_empty_when_budget_zero() {
        let obj = toy_coverage();
        assert!(greedy(&obj, 0.0).is_empty());
        assert!(cost_benefit_greedy(&obj, 0.5).is_empty());
    }

    /// Figure 5: two overlapping rectangles on a path graph produce three
    /// atoms — `Q1−Q3`, `Q2−Q3` and `Q3 = Q1 ∩ Q2`.
    #[test]
    fn atoms_of_overlapping_queries() {
        // Path of 10 junctions: 0-1-...-9.
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let q1: Vec<usize> = (0..6).collect(); // junctions 0..5
        let q2: Vec<usize> = (4..10).collect(); // junctions 4..9
        let atoms = partition_atoms(&[q1, q2], &edges, 10);
        assert_eq!(atoms.len(), 3);
        let mut sizes: Vec<usize> = atoms.iter().map(|a| a.junctions.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4, 4]); // {4,5}, {0..3}, {6..9}
                                          // The intersection atom belongs to both queries.
        let inter = atoms.iter().find(|a| a.junctions == vec![4, 5]).unwrap();
        assert_eq!(inter.queries, vec![0, 1]);
        // Its boundary: edges (3,4) and (5,6).
        assert_eq!(inter.boundary.len(), 2);
    }

    #[test]
    fn disconnected_same_signature_splits() {
        // One query covering junctions {0,1} and {5,6} of a path: two atoms.
        let edges: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 1)).collect();
        let q: Vec<usize> = vec![0, 1, 5, 6];
        let atoms = partition_atoms(&[q], &edges, 8);
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn atom_objective_shares_boundary_cost() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let q1: Vec<usize> = (0..6).collect();
        let q2: Vec<usize> = (4..10).collect();
        let atoms = partition_atoms(&[q1.clone(), q2.clone()], &edges, 10);
        let obj = AtomObjective::new(atoms, vec![q1.len(), q2.len()]);
        // Select everything; shared boundary edges must be paid once.
        let all: Vec<usize> = (0..obj.len()).collect();
        let mut spent = 0.0;
        let mut sel = Vec::new();
        for &a in &all {
            spent += obj.cost(&sel, a);
            sel.push(a);
        }
        let union_edges = obj.selected_edges(&all);
        assert_eq!(spent as usize, union_edges.len());
        // Full coverage utility = 1.0 per query.
        assert!((total_gain(&obj, &all) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn banned_edges_exclude_dependent_atoms() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let q1: Vec<usize> = (0..6).collect();
        let q2: Vec<usize> = (4..10).collect();
        let atoms = partition_atoms(&[q1.clone(), q2.clone()], &edges, 10);
        let obj = AtomObjective::new(atoms.clone(), vec![q1.len(), q2.len()]);
        // The intersection atom {4,5} is bounded by edges (3,4)=3 and (5,6)=5.
        let inter = atoms.iter().position(|a| a.junctions == vec![4, 5]).unwrap();
        let dead = atoms[inter].boundary[0];
        let banned = AtomObjective::new(atoms, vec![q1.len(), q2.len()]).with_banned_edges(&[dead]);
        assert!(banned.is_banned(inter));
        assert_eq!(banned.gain(&[], inter), 0.0);
        assert!(obj.gain(&[], inter) > 0.0, "unbanned objective unaffected");
        // Failover re-selection with warm-started priors from the healthy
        // objective: the dead edge never appears in the monitored set.
        let prior = initial_scores(&obj, false);
        let (sel, _) = lazy_greedy_seeded(&banned, 10.0, false, &prior);
        assert!(!sel.contains(&inter));
        assert!(!banned.selected_edges(&sel).contains(&dead));
        assert!(!sel.is_empty(), "unaffected atoms still selected");
    }

    #[test]
    fn atom_selection_exploits_shared_boundaries() {
        // The Fig. 5 insight, sharpened by marginal-cost sharing: on a path,
        // monitoring just 2 edges — the boundary of the intersection atom —
        // makes both flanking atoms free, so an edge budget of 2 yields FULL
        // coverage of both historical queries.
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let q1: Vec<usize> = (0..6).collect();
        let q2: Vec<usize> = (4..10).collect();
        let atoms = partition_atoms(&[q1.clone(), q2.clone()], &edges, 10);
        let obj = AtomObjective::new(atoms, vec![q1.len(), q2.len()]);
        let sel = cost_benefit_greedy(&obj, 2.0);
        assert_eq!(sel.len(), 3, "all atoms affordable thanks to edge sharing");
        assert!(obj.selected_edges(&sel).len() <= 2);
        assert!((total_gain(&obj, &sel) - 2.0).abs() < 1e-12, "both queries fully covered");
    }
}
