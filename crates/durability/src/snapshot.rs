//! Compact shard snapshots: the full per-edge timestamp state serialized
//! bit-exactly, installed with a write-temp-then-rename so a crash never
//! leaves a half-written snapshot in place.
//!
//! ## Format
//!
//! ```text
//! [magic: u64]["STQSNAP1"]          file identification
//! [shard: u64][covered_seq: u64]    which shard, which WAL seq it covers
//! [num_edges: u64]
//! per edge (ascending edge id):
//!   [edge: u64][fwd_len: u64][bwd_len: u64]
//!   [fwd time bits: u64] * fwd_len
//!   [bwd time bits: u64] * bwd_len
//! [crc32 of everything above: u32]
//! ```
//!
//! Timestamps are raw `f64` bit patterns: a load reproduces the captured
//! state byte-for-byte, which is what lets recovery tests assert digest
//! equality against an uninterrupted run.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use stq_forms::TrackingForm;

use crate::crc::crc32;

const MAGIC: &[u8; 8] = b"STQSNAP1";

/// A point-in-time capture of one shard's tracking-form state.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSnapshot {
    /// Shard id the state belongs to.
    pub shard: usize,
    /// Highest WAL sequence number already folded into this state; replay
    /// resumes at `covered_seq + 1`.
    pub covered_seq: u64,
    /// Per-edge `(edge, forward times, backward times)`, ascending by edge.
    pub edges: Vec<(usize, Vec<f64>, Vec<f64>)>,
}

impl ShardSnapshot {
    /// Captures `forms` (edge id → form) in deterministic ascending-edge
    /// order.
    pub fn capture(shard: usize, covered_seq: u64, forms: &HashMap<usize, TrackingForm>) -> Self {
        let mut keys: Vec<usize> = forms.keys().copied().collect();
        keys.sort_unstable();
        let edges = keys
            .into_iter()
            .map(|e| {
                let f = &forms[&e];
                (e, f.timestamps(true).to_vec(), f.timestamps(false).to_vec())
            })
            .collect();
        ShardSnapshot { shard, covered_seq, edges }
    }

    /// Rebuilds the edge → form map this snapshot captured.
    pub fn restore(&self) -> HashMap<usize, TrackingForm> {
        self.edges
            .iter()
            .map(|(e, fwd, bwd)| (*e, TrackingForm::from_sequences(fwd.clone(), bwd.clone())))
            .collect()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.edges.len() * 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.shard as u64).to_le_bytes());
        out.extend_from_slice(&self.covered_seq.to_le_bytes());
        out.extend_from_slice(&(self.edges.len() as u64).to_le_bytes());
        for (edge, fwd, bwd) in &self.edges {
            out.extend_from_slice(&(*edge as u64).to_le_bytes());
            out.extend_from_slice(&(fwd.len() as u64).to_le_bytes());
            out.extend_from_slice(&(bwd.len() as u64).to_le_bytes());
            for t in fwd.iter().chain(bwd.iter()) {
                out.extend_from_slice(&t.to_bits().to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < MAGIC.len() + 8 * 3 + 4 || &bytes[..8] != MAGIC {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return None;
        }
        let mut off = 8;
        let u64_at = |o: &mut usize| -> Option<u64> {
            let v = body.get(*o..*o + 8)?;
            *o += 8;
            Some(u64::from_le_bytes(v.try_into().unwrap()))
        };
        let shard = u64_at(&mut off)? as usize;
        let covered_seq = u64_at(&mut off)?;
        let num_edges = u64_at(&mut off)?;
        let mut edges = Vec::with_capacity(num_edges.min(1 << 20) as usize);
        for _ in 0..num_edges {
            let edge = u64_at(&mut off)? as usize;
            let fwd_len = u64_at(&mut off)? as usize;
            let bwd_len = u64_at(&mut off)? as usize;
            let read_times = |n: usize, o: &mut usize| -> Option<Vec<f64>> {
                let mut v = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let raw = body.get(*o..*o + 8)?;
                    *o += 8;
                    let t = f64::from_bits(u64::from_le_bytes(raw.try_into().unwrap()));
                    if !t.is_finite() {
                        return None;
                    }
                    v.push(t);
                }
                Some(v)
            };
            let fwd = read_times(fwd_len, &mut off)?;
            let bwd = read_times(bwd_len, &mut off)?;
            edges.push((edge, fwd, bwd));
        }
        if off != body.len() {
            return None; // trailing bytes protected by the CRC but unexplained
        }
        Some(ShardSnapshot { shard, covered_seq, edges })
    }
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

/// Writes `snap` to `dir/snapshot.bin` via a temp file and atomic rename: a
/// crash during installation leaves either the old snapshot or the new one,
/// never a torn hybrid.
pub fn install_snapshot(dir: &Path, snap: &ShardSnapshot) -> std::io::Result<()> {
    let tmp = dir.join("snapshot.bin.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&snap.encode())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir))
}

/// Loads `dir/snapshot.bin`. `Ok(None)` when no snapshot exists; a present
/// but corrupt file is an [`std::io::ErrorKind::InvalidData`] error —
/// rename-install means that can only come from outside interference, not a
/// crash, so it is surfaced loudly rather than silently ignored.
pub fn load_snapshot(dir: &Path) -> std::io::Result<Option<ShardSnapshot>> {
    let mut bytes = Vec::new();
    match File::open(snapshot_path(dir)) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    ShardSnapshot::decode(&bytes).map(Some).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("corrupt snapshot at {}", snapshot_path(dir).display()),
        )
    })
}

/// An order-insensitive digest of a shard's state: FNV-1a over ascending
/// `(edge, direction lengths, raw time bits)`. Two states digest equal iff
/// every edge's timestamp sequences are bit-identical — the equality crash
/// recovery is required to restore.
pub fn state_digest(forms: &HashMap<usize, TrackingForm>) -> u64 {
    let mut keys: Vec<usize> = forms.keys().copied().collect();
    keys.sort_unstable();
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let eat = |h: &mut u64, word: u64| {
        for b in word.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for e in keys {
        let f = &forms[&e];
        eat(&mut h, e as u64);
        for forward in [true, false] {
            let ts = f.timestamps(forward);
            eat(&mut h, ts.len() as u64);
            for t in ts {
                eat(&mut h, t.to_bits());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_forms() -> HashMap<usize, TrackingForm> {
        let mut m = HashMap::new();
        m.insert(3, TrackingForm::from_sequences(vec![0.5, 1.25, 7.0], vec![2.0]));
        m.insert(11, TrackingForm::from_sequences(vec![], vec![0.125, 0.125, 9.5]));
        m.insert(4, TrackingForm::from_sequences(vec![1e-12], vec![]));
        m
    }

    #[test]
    fn install_then_load_roundtrips_bit_exactly() {
        let dir = tmpdir("roundtrip");
        let forms = sample_forms();
        let snap = ShardSnapshot::capture(2, 41, &forms);
        install_snapshot(&dir, &snap).unwrap();
        let loaded = load_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded, snap);
        assert_eq!(state_digest(&loaded.restore()), state_digest(&forms));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = tmpdir("missing");
        assert!(load_snapshot(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_invalid_data() {
        let dir = tmpdir("corrupt");
        install_snapshot(&dir, &ShardSnapshot::capture(0, 7, &sample_forms())).unwrap();
        let path = dir.join("snapshot.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reinstall_replaces_atomically() {
        let dir = tmpdir("reinstall");
        install_snapshot(&dir, &ShardSnapshot::capture(1, 5, &sample_forms())).unwrap();
        let mut forms = sample_forms();
        forms.get_mut(&3).unwrap().record(true, 9.75);
        let newer = ShardSnapshot::capture(1, 6, &forms);
        install_snapshot(&dir, &newer).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap(), newer);
        assert!(!dir.join("snapshot.bin.tmp").exists(), "temp file must not linger");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_detects_any_single_timestamp_change() {
        let forms = sample_forms();
        let base = state_digest(&forms);
        let mut tweaked = sample_forms();
        let f = tweaked.get_mut(&11).unwrap();
        let mut bwd = f.timestamps(false).to_vec();
        bwd[1] += 1e-9;
        *f = TrackingForm::from_sequences(f.timestamps(true).to_vec(), bwd);
        assert_ne!(state_digest(&tweaked), base);
        let mut empty_vs_missing = sample_forms();
        empty_vs_missing.insert(99, TrackingForm::from_sequences(vec![], vec![]));
        assert_ne!(state_digest(&empty_vs_missing), base, "empty edge still changes the digest");
    }
}
