//! # stq-durability
//!
//! Crash-consistent durability for sharded tracking-form state: a per-shard
//! append-only **write-ahead log** of boundary-crossing events, periodic
//! **compact snapshots** with atomic rename-install, and **recovery** that
//! replays snapshot + WAL back to a byte-identical state.
//!
//! The paper's constant-size edge summaries (§5) make shard state cheap to
//! checkpoint: a shard's entire durable footprint is its per-edge timestamp
//! sequences, which the snapshot serializes verbatim (bit-exact `f64`
//! encodings) and the WAL extends one crossing at a time. The formats are
//! deliberately boring:
//!
//! - **WAL record** — `[len: u32][crc32: u32][payload]` with
//!   `payload = [seq: u64][edge: u64][flags: u8][time bits: u64]`. The CRC
//!   covers the payload; `seq` is a per-shard contiguous counter, so replay
//!   can both detect torn tails (checksum or framing failure → truncate at
//!   the last valid record) and prove it lost nothing in the middle.
//! - **Snapshot** — magic + shard id + the WAL sequence number it covers +
//!   every edge's forward/backward sequences, CRC-trailed, written to a
//!   temp file and atomically `rename`d into place. After a successful
//!   snapshot the WAL is truncated: recovery cost is bounded by the
//!   snapshot interval, not the shard's lifetime.
//!
//! Fault injection (fsync loss, torn mid-record writes) lives in
//! `stq_net::DurabilityFaultPlan`; this crate only provides the mechanics
//! (`WalWriter::kill_cut`) to apply a planned cut, in the same seeded,
//! replayable style as the rest of the chaos machinery.

pub mod crc;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use recovery::{apply_crossing, recover_shard, RecoveredShard, RecoveryReport};
pub use snapshot::{install_snapshot, load_snapshot, state_digest, ShardSnapshot};
pub use wal::{replay_wal, ShardDurability, WalReplay, WalWriter};
